"""Tests for the all-Vegas world experiment and RTT-sample tracing."""

from repro.experiments.allvegas import run_world
from repro.trace import series as S
from repro.trace.tracer import ConnectionTracer

from helpers import make_pair, run_transfer


class TestRunWorld:
    def test_world_runs_and_aggregates(self):
        result = run_world("vegas", buffers=10, seed=0, duration=40.0)
        assert result.cc_name == "vegas"
        assert result.conversations > 20
        assert result.goodput_kbps > 0
        assert result.telnet_mean_response > 0

    def test_worlds_differ_by_protocol(self):
        reno = run_world("reno", buffers=10, seed=0, duration=40.0)
        vegas = run_world("vegas", buffers=10, seed=0, duration=40.0)
        assert vegas.retransmit_kb < reno.retransmit_kb


class TestRttSeries:
    def test_samples_recorded_and_extracted(self):
        pair = make_pair()
        tracer = ConnectionTracer("rtt")
        run_transfer(pair, 64 * 1024, tracer=tracer)
        series = S.rtt_series(tracer)
        assert len(series) > 10
        # All samples at least the base RTT (~100 ms) and below the
        # worst case (base + full queue + timer slop).
        assert all(0.09 < rtt < 1.0 for _, rtt in series)

    def test_vegas_keeps_rtt_lower_than_reno(self):
        """The latency story: Reno rides the queue up before every
        loss; Vegas holds only alpha..beta extra segments."""
        from repro.core.vegas import VegasCC

        def p95(cc):
            pair = make_pair()
            tracer = ConnectionTracer("t")
            run_transfer(pair, 512 * 1024, cc=cc, tracer=tracer)
            samples = sorted(v for _, v in S.rtt_series(tracer))
            return samples[int(0.95 * len(samples))]

        assert p95(VegasCC()) < p95(None)  # None -> default Reno
