"""Tests for supervised execution and the liveness watchdog.

Covers the resilience contracts: a hanging cell is killed and
quarantined as ``timeout``, a raising cell as ``crash``, a stalled
flap topology as ``divergence`` — each retried with deterministic
backoff, none of them stopping sibling cells, none of them poisoning
the result cache, and all of them surfacing through the artifact's
``failures`` manifest with distinct exit codes end to end.
"""

import json
import os
import time

import pytest

from repro import cli
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    SimulationStalled,
)
from repro.harness import (
    Cell,
    ResultCache,
    build_document,
    load_document,
    register_experiment,
    retry_backoff,
    run_cells,
    unregister_experiment,
    write_document,
)
from repro.harness import check
from repro.harness.runner import storage_key
from repro.harness.supervisor import FAILURE_KINDS, classify_error
from repro.sim import LivenessWatchdog, Simulator, watching
from repro.sim import watchdog as watchdog_runtime

#: A sub-second real cell that must keep completing next to failures.
CHEAP = Cell.make("sendbuf", cc="reno", size_kb=5, seed=0)
CHEAP2 = Cell.make("sendbuf", cc="vegas", size_kb=5, seed=0)


# ----------------------------------------------------------------------
# Pathological experiments (registered per-test; workers see them via
# the fork start method, which the supervisor prefers on POSIX).
# ----------------------------------------------------------------------

def _hang_cell(seed: int):
    while True:  # pragma: no cover - killed by the supervisor
        time.sleep(0.02)


def _crash_cell(seed: int):
    raise RuntimeError("deliberate crash for the supervisor suite")


def _violate_cell(seed: int):
    raise InvariantViolation("packet-conservation", 1.25, subject="q0",
                             detail="synthetic")


def _stall_cell(seed: int):
    # A flap schedule that never comes up: TCP retransmits into the
    # void while its timers tick simulated time forward — the liveness
    # watchdog must turn this into SimulationStalled, not a spin.
    from repro.experiments.transfers import run_solo_transfer
    from repro.faults import runtime as faults_runtime
    from repro.units import kb

    with faults_runtime.injecting("flap-period=5,flap-down=5"):
        result = run_solo_transfer("reno", size=kb(64), seed=seed)
    return {"throughput_kbps": result.throughput_kbps}


@pytest.fixture
def pathological_registry():
    names = ("hangx", "crashx", "stallx", "violatex")
    register_experiment("hangx", _hang_cell)
    register_experiment("crashx", _crash_cell)
    register_experiment("stallx", _stall_cell)
    register_experiment("violatex", _violate_cell,
                        grid=lambda quick: [Cell.make("violatex", seed=0)])
    yield
    for name in names:
        unregister_experiment(name)


fork_only = pytest.mark.skipif(
    os.name != "posix", reason="supervised workers need the fork method")


# ----------------------------------------------------------------------
# Taxonomy and backoff
# ----------------------------------------------------------------------

class TestTaxonomy:
    def test_invariant_violation_is_check_violation(self):
        exc = InvariantViolation("positive-cwnd", 2.5, subject="conn",
                                 detail="cwnd=-1")
        kind, message, detail = classify_error(exc)
        assert kind == "check-violation"
        assert detail["invariant"] == "positive-cwnd"
        assert detail["sim_time"] == 2.5
        assert "positive-cwnd" in message

    def test_stall_is_divergence(self):
        exc = SimulationStalled("no-progress", 42.0, stalled_for=30.0,
                                snapshot=[{"flow": "a->b"}])
        kind, message, detail = classify_error(exc)
        assert kind == "divergence"
        assert detail["reason"] == "no-progress"
        assert detail["snapshot"] == [{"flow": "a->b"}]

    def test_everything_else_is_crash(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            kind, message, detail = classify_error(exc)
        assert kind == "crash"
        assert detail["exception"] == "ValueError"
        assert "boom" in detail["traceback"]

    def test_taxonomy_is_closed(self):
        assert set(FAILURE_KINDS) == {
            "timeout", "crash", "divergence", "check-violation",
            "worker-lost"}


class TestBackoff:
    def test_deterministic(self):
        assert retry_backoff("k", 1) == retry_backoff("k", 1)
        assert retry_backoff("k", 1) != retry_backoff("other", 1)

    def test_exponential_envelope_with_jitter(self):
        base = 0.1
        for attempt in (1, 2, 3):
            value = retry_backoff("cell/seed=0", attempt, base)
            lo = base * 2 ** (attempt - 1) * 0.5
            hi = base * 2 ** (attempt - 1) * 1.5
            assert lo <= value < hi


# ----------------------------------------------------------------------
# The liveness watchdog
# ----------------------------------------------------------------------

class _FakeConn:
    """Minimal object satisfying the watchdog's liveness protocol."""

    def __init__(self, unfinished=True):
        self.progress = 0
        self.unfinished = unfinished

    def liveness_progress(self):
        return self.progress

    def has_unfinished_work(self):
        return self.unfinished

    def liveness_snapshot(self):
        return {"flow": "fake", "unfinished": self.unfinished,
                "progress": self.progress}


class TestWatchdog:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            LivenessWatchdog(stall_after=0.0)

    def test_no_progress_raises_with_snapshot(self):
        with watching(stall_after=5.0) as guard:
            sim = Simulator()
            guard.register_connection(_FakeConn(unfinished=True))

            def tick():
                sim.schedule(0.01, tick)

            tick()
            with pytest.raises(SimulationStalled) as info:
                sim.run(until=100.0)
        exc = info.value
        assert exc.reason == "no-progress"
        assert exc.stalled_for >= 5.0
        assert exc.snapshot and exc.snapshot[0]["flow"] == "fake"

    def test_progress_resets_the_window(self):
        with watching(stall_after=5.0) as guard:
            sim = Simulator()
            conn = _FakeConn(unfinished=True)
            guard.register_connection(conn)

            def tick():
                conn.progress += 1          # every event is progress
                sim.schedule(0.01, tick)

            tick()
            sim.run(until=20.0)             # no stall despite unfinished
            conn.unfinished = False
            sim.run(until=20.0)

    def test_queue_drained_raises(self):
        with watching(stall_after=60.0) as guard:
            sim = Simulator()
            guard.register_connection(_FakeConn(unfinished=True))
            sim.schedule(0.5, lambda: None)
            with pytest.raises(SimulationStalled) as info:
                sim.run(until=100.0)
        assert info.value.reason == "queue-drained"

    def test_finished_work_never_stalls(self):
        with watching(stall_after=1.0) as guard:
            sim = Simulator()
            guard.register_connection(_FakeConn(unfinished=False))
            sim.schedule(0.5, lambda: None)
            sim.run(until=100.0)            # drains quietly: nothing owed

    def test_stalled_flap_transfer_raises_typed_error(self):
        with watching(stall_after=10.0):
            with pytest.raises(SimulationStalled) as info:
                _stall_cell(seed=0)
        exc = info.value
        assert exc.reason == "no-progress"
        snap = exc.snapshot
        assert snap, "stall must snapshot per-connection state"
        entry = snap[0]
        for field in ("flow", "state", "snd_una", "snd_nxt", "outstanding",
                      "rexmt_timer_ticks", "consecutive_timeouts"):
            assert field in entry
        assert entry["unfinished"]

    def test_clean_run_bit_identical_with_watchdog_on(self):
        from repro.experiments.transfers import run_solo_transfer
        from repro.sim import engine
        from repro.units import kb

        plain = run_solo_transfer("vegas", size=kb(128), seed=0)
        plain_events = engine.last_simulator().events_processed
        with watching(stall_after=5.0):
            guarded = run_solo_transfer("vegas", size=kb(128), seed=0)
        guarded_events = engine.last_simulator().events_processed
        assert plain.throughput_kbps == guarded.throughput_kbps
        assert plain_events == guarded_events

    def test_activation_is_exclusive_and_idempotent(self):
        with watching(stall_after=1.0):
            with pytest.raises(RuntimeError):
                watchdog_runtime.activate(LivenessWatchdog())
        assert watchdog_runtime.active() is None
        watchdog_runtime.deactivate()       # idempotent when inactive


# ----------------------------------------------------------------------
# Supervised execution
# ----------------------------------------------------------------------

@fork_only
class TestSupervisedExecution:
    def _sweep(self, cells, **kwargs):
        kwargs.setdefault("jobs", 3)
        kwargs.setdefault("timeout_s", 5.0)
        kwargs.setdefault("retries", 1)
        kwargs.setdefault("backoff_base", 0.01)
        return run_cells(cells, **kwargs)

    def test_hang_crash_stall_quarantined_siblings_complete(
            self, pathological_registry):
        cells = [CHEAP, Cell.make("hangx", seed=0),
                 Cell.make("crashx", seed=0), Cell.make("stallx", seed=0),
                 CHEAP2]
        report = self._sweep(cells, timeout_s=2.0, watchdog=5.0)

        assert sorted(r.key for r in report.results) == sorted(
            [CHEAP.key, CHEAP2.key])
        kinds = {f.key: f.kind for f in report.failures}
        assert kinds == {"hangx/seed=0": "timeout",
                         "crashx/seed=0": "crash",
                         "stallx/seed=0": "divergence"}
        assert not report.ok
        for failure in report.failures:
            assert failure.attempts == 2          # initial + one retry
            assert len(failure.attempt_log) == 2
            assert failure.attempt_log[0]["backoff_s"] > 0

    def test_supervised_results_match_unsupervised(self):
        supervised = self._sweep([CHEAP, CHEAP2])
        plain = run_cells([CHEAP, CHEAP2], jobs=1)
        assert [r.metrics for r in supervised.results] == \
            [r.metrics for r in plain.results]
        assert supervised.ok and plain.ok

    def test_check_violation_kind(self, pathological_registry):
        report = self._sweep([Cell.make("violatex", seed=0)], retries=0)
        (failure,) = report.failures
        assert failure.kind == "check-violation"
        assert failure.detail["invariant"] == "packet-conservation"

    def test_crash_detail_carries_traceback(self, pathological_registry):
        report = self._sweep([Cell.make("crashx", seed=0)], retries=0)
        (failure,) = report.failures
        assert failure.kind == "crash"
        assert "deliberate crash" in failure.message
        assert "RuntimeError" in failure.detail["traceback"]

    def test_failures_never_poison_the_cache(self, pathological_registry,
                                             tmp_path):
        cache = ResultCache(tmp_path, "deadbeef" * 8)
        crash = Cell.make("crashx", seed=0)
        report = self._sweep([CHEAP, crash], retries=0, cache=cache)
        assert [f.key for f in report.failures] == [crash.key]
        assert cache.get(storage_key(crash.key)) is None
        assert cache.get(storage_key(CHEAP.key)) is not None

        # A later sweep serves the good cell from cache and re-attempts
        # the quarantined one rather than replaying its failure.
        again = self._sweep([CHEAP, crash], retries=0, cache=cache)
        assert again.cache_hits == 1
        assert [f.key for f in again.failures] == [crash.key]

    def test_timeout_kills_promptly(self, pathological_registry):
        started = time.perf_counter()
        report = self._sweep([Cell.make("hangx", seed=0)],
                             timeout_s=0.5, retries=0, jobs=1)
        elapsed = time.perf_counter() - started
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert failure.detail["timeout_s"] == 0.5
        assert elapsed < 10.0, "termination must not wait out the hang"

    def test_bad_supervision_parameters(self):
        with pytest.raises(ValueError):
            run_cells([CHEAP], jobs=1, timeout_s=-1.0)
        with pytest.raises(ValueError):
            run_cells([CHEAP], jobs=1, timeout_s=1.0, retries=-1)


# ----------------------------------------------------------------------
# Artifact failures section and the regression checker's exit codes
# ----------------------------------------------------------------------

def _failure_doc(base_doc, key="sendbuf/cc=reno/seed=0/size_kb=5",
                 kind="timeout"):
    doc = json.loads(json.dumps(base_doc))
    doc["schema_version"] = "repro-harness/v2"
    doc["cells"] = [c for c in doc["cells"] if c["key"] != key]
    doc["failures"] = [{
        "key": key, "experiment": key.split("/")[0], "kind": kind,
        "message": "synthetic failure", "attempts": 2, "wall_clock_s": 1.0,
        "detail": {}, "attempt_log": [],
    }]
    doc["run"]["failed"] = 1
    return doc


def _base_doc(metric=100.0):
    return {
        "schema_version": "repro-harness/v2",
        "mode": "quick",
        "src_hash": "x",
        "run": {"jobs": 1, "cache_hits": 0, "cache_misses": 1, "cells": 1,
                "failed": 0, "elapsed_s": 0.0, "cell_wall_clock_s": 0.0},
        "cells": [{
            "key": "sendbuf/cc=reno/seed=0/size_kb=5",
            "experiment": "sendbuf",
            "params": {"cc": "reno", "seed": 0, "size_kb": 5},
            "metrics": {"throughput_kbps": metric},
            "wall_clock_s": 0.1,
            "cached": False,
        }],
        "failures": [],
    }


class TestFailureManifest:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    @fork_only
    def test_document_carries_sorted_failures(self, pathological_registry):
        cells = [Cell.make("crashx", seed=0), CHEAP]
        report = run_cells(cells, jobs=2, timeout_s=5.0, retries=0,
                           backoff_base=0.01)
        doc = build_document(report, mode="quick", src_hash="abc")
        assert doc["run"]["failed"] == 1
        (failure,) = doc["failures"]
        assert failure["key"] == "crashx/seed=0"
        assert failure["kind"] == "crash"
        assert failure["attempts"] == 1

    def test_v1_documents_still_load(self, tmp_path):
        doc = _base_doc()
        doc["schema_version"] = "repro-harness/v1"
        del doc["failures"]
        path = self._write(tmp_path, "v1.json", doc)
        assert load_document(path)["cells"]

    def test_roundtrip_with_failures(self, tmp_path):
        doc = _failure_doc(_base_doc())
        path = str(tmp_path / "doc.json")
        write_document(path, doc)
        assert load_document(path) == doc

    def test_check_exit_3_on_failed_baseline_cell(self, tmp_path, capsys):
        results = self._write(tmp_path, "r.json", _failure_doc(_base_doc()))
        expected = self._write(tmp_path, "e.json", _base_doc())
        assert check.main([results, expected]) == 3
        out = capsys.readouterr().out
        assert "failed cell" in out and "[timeout]" in out
        # Quarantined cells are reported once, not again as missing.
        assert "missing cell" not in out

    def test_check_exit_1_on_plain_drift(self, tmp_path):
        results = self._write(tmp_path, "r.json", _base_doc(metric=200.0))
        expected = self._write(tmp_path, "e.json", _base_doc(metric=100.0))
        assert check.main([results, expected, "--tolerance", "0.15"]) == 1

    def test_check_failures_dominate_drift(self, tmp_path):
        results_doc = _failure_doc(_base_doc())
        results_doc["cells"] = _base_doc(metric=500.0)["cells"]
        results_doc["cells"][0]["key"] = "other/seed=0"
        expected_doc = _base_doc(metric=100.0)
        expected_doc["cells"].append(
            dict(expected_doc["cells"][0], key="other/seed=0"))
        results = self._write(tmp_path, "r.json", results_doc)
        expected = self._write(tmp_path, "e.json", expected_doc)
        assert check.main([results, expected]) == 3

    def test_non_baseline_failures_do_not_gate(self, tmp_path):
        # A quarantined cell outside the baseline (new experiment) is
        # reported by run-all but must not fail the baseline check.
        results_doc = _base_doc()
        results_doc["failures"] = _failure_doc(
            _base_doc(), key="newexp/seed=0")["failures"]
        results = self._write(tmp_path, "r.json", results_doc)
        expected = self._write(tmp_path, "e.json", _base_doc())
        assert check.main([results, expected]) == 0


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

@fork_only
class TestCli:
    def test_run_all_exit_3_and_manifest(self, pathological_registry,
                                         tmp_path, capsys):
        path = str(tmp_path / "results.json")
        code = cli.main(["run-all", "--experiments", "violatex",
                         "--timeout", "10", "--retries", "0",
                         "--no-cache", "--jobs", "1", "--json", path])
        assert code == 3
        out = capsys.readouterr().out
        assert "quarantined" in out and "--no-timeout" in out
        doc = load_document(path)
        assert doc["run"]["failed"] == 1
        assert doc["failures"][0]["kind"] == "check-violation"

    def test_only_selects_one_cell(self, tmp_path, capsys):
        path = str(tmp_path / "one.json")
        code = cli.main(["run-all", "--only", CHEAP.key, "--no-timeout",
                         "--no-cache", "--jobs", "1", "--json", path])
        assert code == 0
        doc = load_document(path)
        assert [c["key"] for c in doc["cells"]] == [CHEAP.key]

    def test_only_rejects_unknown_key(self, capsys):
        assert cli.main(["run-all", "--only", "nosuch/seed=9",
                         "--no-cache"]) == 2
        assert "matches no cell" in capsys.readouterr().err

    def test_no_timeout_propagates_raw_errors(self, pathological_registry):
        # Reproducing a quarantined cell: without supervision the raw
        # exception surfaces in-process, debugger-ready.
        with pytest.raises(InvariantViolation):
            run_cells([Cell.make("violatex", seed=0)], jobs=1)

    def test_bad_flags_exit_2(self, capsys):
        assert cli.main(["run-all", "--timeout", "0", "--no-cache"]) == 2
        assert cli.main(["run-all", "--retries", "-1", "--no-cache"]) == 2


# ----------------------------------------------------------------------
# Timing discipline (satellite): no drift-sensitive time.time() in src
# ----------------------------------------------------------------------

def test_no_wall_drift_timing_in_src():
    import repro

    root = os.path.dirname(repro.__file__)
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            with open(path) as handle:
                if "time.time()" in handle.read():
                    offenders.append(os.path.relpath(path, root))
    assert not offenders, (
        f"wall-clock timing must use time.perf_counter(), found "
        f"time.time() in: {offenders}")


class TestFaultSpecValidation:
    def test_unknown_key_names_the_token(self):
        with pytest.raises(ValueError, match="frobnicate"):
            from repro.faults.plan import FaultPlan
            FaultPlan.parse("frobnicate=0.5")

    def test_out_of_range_probability_names_the_token(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(ValueError, match="dup=5"):
            FaultPlan.parse("dup=5")
        with pytest.raises(ValueError, match=r"probability.*\[0, 1\]"):
            FaultPlan.parse("drop=1.5")

    def test_negative_duration_names_the_token(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(ValueError, match="jitter-max=-1"):
            FaultPlan.parse("jitter-max=-1")

    def test_errors_are_both_valueerror_and_configurationerror(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(ConfigurationError):
            FaultPlan.parse("drop=2")
        with pytest.raises(ValueError):
            FaultPlan.parse("drop=2")
