"""End-to-end checks of the paper's headline claims.

These are the "does the reproduction reproduce" tests: each asserts a
*qualitative* result from the paper (who wins, in which direction, by
a conservative margin), not an absolute number.  The benchmarks print
the full quantitative comparison.
"""

import pytest

from repro.experiments.background import run_with_background
from repro.experiments.fairness_exp import run_competing_connections
from repro.experiments.internet import run_internet_transfer
from repro.experiments.one_on_one import run_one_on_one
from repro.experiments.traces import figure6, figure7
from repro.trace import series as S
from repro.units import kb


class TestFigure6And7:
    """Reno needs losses to find the bandwidth; Vegas does not (§3.2)."""

    def test_reno_alone_loses_segments(self):
        graph, result = figure6()
        assert result.done
        assert graph.losses() > 10  # periodic self-induced losses
        # The congestion window shows Reno's sawtooth.
        assert S.sawtooth_count(graph.windows.congestion_window) >= 2

    def test_vegas_alone_nearly_lossless(self):
        graph, result = figure7()
        assert result.done
        assert result.retransmitted_kb <= 2.0
        assert result.coarse_timeouts == 0

    def test_vegas_alone_beats_reno_alone(self):
        _, reno = figure6()
        _, vegas = figure7()
        # Paper: 169 vs 105 KB/s (1.61x).  Conservative margin: 1.3x.
        assert vegas.throughput_kbps > 1.3 * reno.throughput_kbps

    def test_vegas_window_stabilises(self):
        graph, _ = figure7()
        cwnd = graph.windows.congestion_window
        t_end = cwnd[-1][0]
        _, spread = S.steady_state_stats(cwnd, t_start=t_end * 0.6,
                                         t_end=t_end)
        # The window converges at +-1 MSS/RTT, so over the tail of a
        # 1 MB transfer it wanders by a few segments — far below
        # Reno's sawtooth, which spans half the window (~15 KB here).
        assert spread <= 8 * 1024

    def test_vegas_cam_panel_tracks_expected(self):
        graph, _ = figure7()
        assert graph.cam is not None
        # Actual stays at or below Expected at every decision.
        for (_, expected), (_, actual) in zip(graph.cam.expected,
                                              graph.cam.actual):
            assert actual <= expected * 1.01


class TestTable1Claims:
    """Vegas does not steal bandwidth from Reno (§4.1)."""

    def test_reno_large_unhurt_by_vegas_small(self):
        base = run_one_on_one("reno", "reno", delay=1.0, buffers=15, seed=0)
        mixed = run_one_on_one("vegas", "reno", delay=1.0, buffers=15, seed=0)
        # Reno's 1MB throughput stays within 25% when the competitor
        # becomes Vegas (paper ratio: 1.09).
        assert mixed.large.throughput_kbps > 0.75 * base.large.throughput_kbps

    def test_vegas_vegas_retransmits_near_zero(self):
        result = run_one_on_one("vegas", "vegas", delay=1.0, buffers=15,
                                seed=0)
        combined = (result.small.retransmitted_kb
                    + result.large.retransmitted_kb)
        assert combined <= 3.0  # paper: < 1 KB on average

    def test_combined_losses_drop_with_vegas(self):
        # Averaged over several runs, as the paper does (its Table 1
        # averages 12): combined reno/reno retransmits 52 KB vs 19 KB
        # for vegas/reno.
        delays = (0.5, 1.5, 2.5)
        base_total = mixed_total = 0.0
        for i, delay in enumerate(delays):
            base = run_one_on_one("reno", "reno", delay=delay, buffers=15,
                                  seed=i)
            mixed = run_one_on_one("vegas", "reno", delay=delay, buffers=15,
                                   seed=i)
            base_total += (base.small.retransmitted_kb
                           + base.large.retransmitted_kb)
            mixed_total += (mixed.small.retransmitted_kb
                            + mixed.large.retransmitted_kb)
        assert mixed_total < base_total


@pytest.mark.slow
class TestTable2Claims:
    """With background traffic Vegas wins on every metric (§4.2)."""

    @pytest.fixture(scope="class")
    def runs(self):
        # Average across seeds x buffer counts, as the paper's 57-run
        # table does; single runs are noisy (one unlucky timeout moves
        # a 1 MB transfer's throughput by 20%).
        grid = [(s, b) for s in range(4) for b in (10, 15)]
        reno = [run_with_background("reno", seed=s, buffers=b)
                for s, b in grid]
        vegas = [run_with_background("vegas-1,3", seed=s, buffers=b)
                 for s, b in grid]
        return reno, vegas

    def test_throughput_advantage(self, runs):
        reno, vegas = runs
        reno_mean = sum(r.transfer.throughput_kbps for r in reno) / len(reno)
        vegas_mean = sum(r.transfer.throughput_kbps for r in vegas) / len(vegas)
        # Paper: 1.53x; conservative: 1.2x.
        assert vegas_mean > 1.2 * reno_mean

    def test_fewer_retransmissions(self, runs):
        reno, vegas = runs
        reno_retx = sum(r.transfer.retransmitted_kb for r in reno)
        vegas_retx = sum(r.transfer.retransmitted_kb for r in vegas)
        assert vegas_retx < 0.7 * reno_retx  # paper ratio: 0.49

    def test_fewer_coarse_timeouts(self, runs):
        reno, vegas = runs
        assert (sum(r.transfer.coarse_timeouts for r in vegas)
                <= sum(r.transfer.coarse_timeouts for r in reno))


class TestTable4Claims:
    """On the (emulated) Internet path Vegas still wins (§5)."""

    @pytest.fixture(scope="class")
    def runs(self):
        seeds = range(3)
        reno = [run_internet_transfer("reno", size=kb(512), seed=s)
                for s in seeds]
        vegas = [run_internet_transfer("vegas-1,3", size=kb(512), seed=s)
                 for s in seeds]
        return reno, vegas

    def test_throughput_advantage(self, runs):
        reno, vegas = runs
        reno_mean = sum(r.throughput_kbps for r in reno) / len(reno)
        vegas_mean = sum(r.throughput_kbps for r in vegas) / len(vegas)
        assert vegas_mean > 1.15 * reno_mean  # paper: 1.38x at 512 KB

    def test_retransmission_advantage(self, runs):
        reno, vegas = runs
        assert (sum(r.retransmitted_kb for r in vegas)
                < sum(r.retransmitted_kb for r in reno))


class TestTable5Claims:
    """Reno's retransmissions flatten toward the slow-start floor as
    transfers shrink; Vegas' scale roughly linearly (§5)."""

    def test_reno_slow_start_floor(self):
        seeds = range(3)
        retx_1024 = sum(run_internet_transfer("reno", kb(1024), s)
                        .retransmitted_kb for s in seeds) / 3
        retx_128 = sum(run_internet_transfer("reno", kb(128), s)
                       .retransmitted_kb for s in seeds) / 3
        # An 8x smaller transfer loses far more than 1/8 as much: the
        # slow-start floor dominates.
        assert retx_128 > retx_1024 / 8

    def test_vegas_avoids_slow_start_losses(self):
        seeds = range(3)
        vegas_128 = sum(run_internet_transfer("vegas-1,3", kb(128), s)
                        .retransmitted_kb for s in seeds) / 3
        reno_128 = sum(run_internet_transfer("reno", kb(128), s)
                       .retransmitted_kb for s in seeds) / 3
        assert vegas_128 < 0.5 * reno_128  # paper ratio: 0.17


class TestFairnessClaims:
    """§4.3: Vegas is at least as fair as Reno; stable at 16 conns."""

    def test_vegas_fair_at_16_connections(self):
        result = run_competing_connections("vegas", 16,
                                           transfer_bytes=kb(512),
                                           buffers=20, seed=0)
        assert result.all_done  # "no stability problems"
        assert result.fairness_index > 0.75

    def test_vegas_at_least_as_fair_with_mixed_delays(self):
        reno = run_competing_connections("reno", 4, transfer_bytes=kb(1024),
                                         mixed_delays=True, seed=0)
        vegas = run_competing_connections("vegas", 4, transfer_bytes=kb(1024),
                                          mixed_delays=True, seed=0)
        assert vegas.fairness_index >= reno.fairness_index - 0.05


class TestSendBufferClaims:
    """§4.3: Reno improves then degrades as sndbuf shrinks; Vegas is
    flat from 50 KB down to 20 KB and always at least matches Reno."""

    def test_vegas_flat_20_to_50(self):
        from repro.experiments.sendbuf import sendbuf_sweep

        sweep = sendbuf_sweep("vegas", sizes_kb=(20, 50))
        ratio = sweep[20].throughput_kbps / sweep[50].throughput_kbps
        assert 0.9 < ratio < 1.1

    def test_reno_peaks_below_50(self):
        from repro.experiments.sendbuf import sendbuf_sweep

        sweep = sendbuf_sweep("reno", sizes_kb=(5, 20, 50))
        assert sweep[20].throughput_kbps > sweep[50].throughput_kbps
        assert sweep[5].throughput_kbps < sweep[20].throughput_kbps
