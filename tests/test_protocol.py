"""Tests for the per-host TCP protocol: demux, listeners, timers."""

import pytest

from repro.core.reno import RenoCC
from repro.core.vegas import VegasCC
from repro.errors import ConfigurationError

from helpers import make_pair, run_transfer


class TestConnect:
    def test_ephemeral_ports_distinct(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conns = [pair.proto_a.connect("B", 9000) for _ in range(5)]
        ports = [c.flow.local_port for c in conns]
        assert len(set(ports)) == 5

    def test_cc_instance_used_directly(self):
        pair = make_pair()
        cc = VegasCC()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000, cc=cc)
        assert conn.cc is cc

    def test_cc_factory_instantiated(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000, cc=VegasCC)
        assert isinstance(conn.cc, VegasCC)

    def test_default_cc_is_reno(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        assert isinstance(conn.cc, RenoCC)

    def test_bad_cc_rejected(self):
        pair = make_pair()
        with pytest.raises(ConfigurationError):
            pair.proto_a.connect("B", 9000, cc=42)


class TestListen:
    def test_duplicate_listen_rejected(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        with pytest.raises(ConfigurationError):
            pair.proto_b.listen(9000)

    def test_listener_instance_cc_rejected(self):
        pair = make_pair()
        with pytest.raises(ConfigurationError):
            pair.proto_b.listen(9000, cc=VegasCC())

    def test_each_accept_gets_fresh_cc(self):
        pair = make_pair()
        accepted = []
        pair.proto_b.listen(9000, cc=VegasCC, on_accept=accepted.append)
        pair.proto_a.connect("B", 9000)
        pair.proto_a.connect("B", 9000)
        pair.sim.run(until=3.0)
        assert len(accepted) == 2
        assert accepted[0].cc is not accepted[1].cc

    def test_listener_counts_accepts(self):
        pair = make_pair()
        listener = pair.proto_b.listen(9000)
        pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        assert listener.accepted == 1


class TestDemux:
    def test_concurrent_connections_stay_separate(self):
        pair = make_pair(queue_capacity=30)
        from repro.apps.bulk import BulkSink, BulkTransfer

        BulkSink(pair.proto_b, 9000)
        BulkSink(pair.proto_b, 9001)
        t1 = BulkTransfer(pair.proto_a, "B", 9000, 50 * 1024)
        t2 = BulkTransfer(pair.proto_a, "B", 9001, 30 * 1024)
        pair.sim.run(until=60.0)
        assert t1.done and t2.done
        assert t1.conn.stats.app_bytes_acked == 50 * 1024
        assert t2.conn.stats.app_bytes_acked == 30 * 1024

    def test_non_tcp_payload_dropped(self):
        from repro.net.packet import Packet

        pair = make_pair()
        pair.b.receive(Packet("A", "B", payload="garbage", size=100))
        assert pair.proto_b.segments_dropped == 1


class TestTimerLifecycle:
    def test_timers_idle_before_first_connection(self):
        pair = make_pair()
        assert pair.sim.pending_events == 0

    def test_timers_stop_after_all_connections_close(self):
        pair = make_pair()
        run_transfer(pair, 4096, until=60.0)
        assert pair.sim.pending_events == 0

    def test_timers_keep_running_with_open_connection(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        pair.proto_a.connect("B", 9000)
        pair.sim.run(until=5.0)
        assert pair.sim.pending_events > 0  # slow/fast timers live
