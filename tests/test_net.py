"""Tests for the network substrate: queues, links, nodes, routing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, RoutingError
from repro.net.addresses import FlowId
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.units import kbps, mbps, ms


def pkt(src="A", dst="B", size=1000):
    return Packet(src, dst, None, size)


class TestFlowId:
    def test_reversed(self):
        flow = FlowId("A", 1, "B", 2)
        assert flow.reversed() == FlowId("B", 2, "A", 1)
        assert flow.reversed().reversed() == flow

    def test_str(self):
        assert str(FlowId("A", 1, "B", 2)) == "A:1->B:2"


class TestPacket:
    def test_uids_unique(self):
        assert pkt().uid != pkt().uid

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Packet("A", "B", None, 0)


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=3)
        packets = [pkt(size=i + 1) for i in range(3)]
        for p in packets:
            assert q.offer(p, 0.0)
        assert [q.poll(0.0) for _ in range(3)] == packets

    def test_drops_when_full(self):
        q = DropTailQueue(capacity=2)
        assert q.offer(pkt(), 0.0)
        assert q.offer(pkt(), 0.0)
        assert not q.offer(pkt(size=77), 1.5)
        assert q.dropped == 1
        assert q.dropped_bytes == 77
        assert q.drops == [(1.5, 77)]

    def test_unbounded_never_drops(self):
        q = DropTailQueue(capacity=None)
        for _ in range(1000):
            assert q.offer(pkt(), 0.0)
        assert q.dropped == 0

    def test_poll_empty_returns_none(self):
        assert DropTailQueue(capacity=1).poll(0.0) is None

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(capacity=0)

    def test_monitor_callback(self):
        events = []
        q = DropTailQueue(capacity=1,
                          monitor=lambda t, e, p, d: events.append((e, d)))
        q.offer(pkt(), 0.0)
        q.offer(pkt(), 0.0)  # drop
        q.poll(0.0)
        assert events == [("enq", 1), ("drop", 1), ("deq", 0)]

    def test_max_depth_tracked(self):
        q = DropTailQueue(capacity=10)
        for _ in range(7):
            q.offer(pkt(), 0.0)
        q.poll(0.0)
        assert q.max_depth == 7

    @given(st.lists(st.sampled_from(["enq", "deq"]), max_size=200),
           st.integers(min_value=1, max_value=20))
    def test_depth_never_exceeds_capacity(self, ops, capacity):
        q = DropTailQueue(capacity=capacity)
        for op in ops:
            if op == "enq":
                q.offer(pkt(), 0.0)
            else:
                q.poll(0.0)
            assert len(q) <= capacity
        assert q.enqueued + q.dropped == ops.count("enq")


class TestChannel:
    def _one_link(self, bandwidth=kbps(100), delay=ms(10), capacity=5):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        b = topo.add_host("B")
        link = topo.add_link(a, b, bandwidth=bandwidth, delay=delay,
                             queue_capacity=capacity)
        topo.build_routes()
        return sim, topo, a, b, link

    def test_delivery_latency_is_tx_plus_prop(self):
        sim, topo, a, b, link = self._one_link()
        arrivals = []
        b.protocol_handler = lambda p: arrivals.append(sim.now)
        a.send_packet(Packet("A", "B", None, 1024))
        sim.run()
        # 1024 B at 100 KB/s = 10 ms tx, + 10 ms propagation.
        assert arrivals[0] == pytest.approx(0.02)

    def test_back_to_back_packets_serialize(self):
        sim, topo, a, b, link = self._one_link()
        arrivals = []
        b.protocol_handler = lambda p: arrivals.append(sim.now)
        for _ in range(3):
            a.send_packet(Packet("A", "B", None, 1024))
        sim.run()
        gaps = [t1 - t0 for t0, t1 in zip(arrivals, arrivals[1:])]
        assert all(g == pytest.approx(0.01) for g in gaps)

    def test_queue_overflow_drops(self):
        sim, topo, a, b, link = self._one_link(capacity=2)
        count = []
        b.protocol_handler = lambda p: count.append(p.uid)
        for _ in range(10):
            a.send_packet(Packet("A", "B", None, 1024))
        sim.run()
        # 1 in flight + 2 queued accepted; rest dropped.
        assert len(count) == 3
        assert link.channel_from(a).queue.dropped == 7

    def test_channel_from_rejects_non_endpoint(self):
        sim, topo, a, b, link = self._one_link()
        outsider = topo.add_host("C")
        with pytest.raises(ConfigurationError):
            link.channel_from(outsider)


class TestEthernetLan:
    def test_lan_delivers_to_addressed_node_only(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b, c = (topo.add_host(n) for n in "ABC")
        topo.add_lan([a, b, c])
        topo.build_routes()
        got_b, got_c = [], []
        b.protocol_handler = lambda p: got_b.append(p.uid)
        c.protocol_handler = lambda p: got_c.append(p.uid)
        a.send_packet(Packet("A", "B", None, 500))
        sim.run()
        assert len(got_b) == 1 and got_c == []

    def test_lan_requires_two_nodes(self):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        with pytest.raises(ConfigurationError):
            topo.add_lan([a])

    def test_lan_serializes_at_bandwidth(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("A"), topo.add_host("B")
        topo.add_lan([a, b], bandwidth=mbps(10), latency=ms(0.1))
        topo.build_routes()
        arrivals = []
        b.protocol_handler = lambda p: arrivals.append(sim.now)
        for _ in range(2):
            a.send_packet(Packet("A", "B", None, 1250))
        sim.run()
        # 1250 B at 1.25 MB/s = 1 ms tx each; arrivals 1 ms apart.
        assert arrivals[1] - arrivals[0] == pytest.approx(0.001)

    def test_double_attach_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("A"), topo.add_host("B")
        lan = topo.add_lan([a, b])
        with pytest.raises(ConfigurationError):
            lan.attach(a)


class TestRoutingAndNodes:
    def test_multi_hop_forwarding(self):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        routers = [topo.add_router(f"R{i}") for i in range(3)]
        b = topo.add_host("B")
        chain = [a] + routers + [b]
        for x, y in zip(chain, chain[1:]):
            topo.add_link(x, y, bandwidth=mbps(10), delay=ms(1))
        topo.build_routes()
        got = []
        b.protocol_handler = lambda p: got.append(sim.now)
        a.send_packet(Packet("A", "B", None, 1000))
        sim.run()
        assert len(got) == 1
        for router in routers:
            assert router.packets_forwarded == 1

    def test_no_route_raises_at_host(self):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        b = topo.add_host("B")
        topo.add_link(a, b, bandwidth=mbps(1), delay=ms(1))
        topo.build_routes()
        with pytest.raises(RoutingError):
            a.send_packet(Packet("A", "Nowhere", None, 100))

    def test_router_counts_no_route_drops(self):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        r = topo.add_router("R")
        b = topo.add_host("B")
        topo.add_link(a, r, bandwidth=mbps(1), delay=ms(1))
        topo.add_link(r, b, bandwidth=mbps(1), delay=ms(1))
        topo.build_routes()
        # Remove the route and see the router account the drop.
        del r.forwarding["B"]
        a.send_packet(Packet("A", "B", None, 100))
        sim.run()
        assert r.no_route_drops == 1

    def test_host_loopback(self):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        b = topo.add_host("B")
        topo.add_link(a, b, bandwidth=mbps(1), delay=ms(1))
        topo.build_routes()
        got = []
        a.protocol_handler = lambda p: got.append(p.uid)
        a.send_packet(Packet("A", "A", None, 64))
        sim.run()
        assert len(got) == 1

    def test_misaddressed_packet_counted(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("A"), topo.add_host("B")
        topo.add_link(a, b, bandwidth=mbps(1), delay=ms(1))
        topo.build_routes()
        b.receive(Packet("A", "C", None, 100))
        assert b.misdelivered == 1

    def test_duplicate_node_name_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_host("A")
        with pytest.raises(ConfigurationError):
            topo.add_router("A")

    def test_host_and_router_lookup(self):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        r = topo.add_router("R")
        assert topo.host("A") is a
        assert topo.router("R") is r
        with pytest.raises(ConfigurationError):
            topo.host("R")
        with pytest.raises(ConfigurationError):
            topo.router("A")

    def test_routes_prefer_fewest_hops(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("A"), topo.add_host("B")
        r1, r2 = topo.add_router("R1"), topo.add_router("R2")
        # Short path A-R1-B; long path A-R1-R2-B should not be used.
        topo.add_link(a, r1, bandwidth=mbps(10), delay=ms(1))
        topo.add_link(r1, b, bandwidth=mbps(10), delay=ms(1))
        topo.add_link(r1, r2, bandwidth=mbps(10), delay=ms(1))
        topo.add_link(r2, b, bandwidth=mbps(10), delay=ms(1))
        topo.build_routes()
        a.send_packet(Packet("A", "B", None, 100))
        sim.run()
        assert r2.packets_forwarded == 0
