"""Tests for the application layer: bulk transfers and cross traffic."""

import random

import pytest

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.apps.crosstraffic import CrossTrafficSource
from repro.errors import ConfigurationError
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.units import kbps, ms

from helpers import make_pair


class TestBulkTransfer:
    def test_completes_and_reports(self):
        pair = make_pair()
        sink = BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 20 * 1024)
        pair.sim.run(until=30.0)
        assert transfer.done
        assert transfer.finish_time is not None
        assert sink.bytes_received == 20 * 1024
        assert transfer.throughput_kbps > 0
        assert transfer.coarse_timeouts == 0

    def test_on_done_callback(self):
        pair = make_pair()
        BulkSink(pair.proto_b, 9000)
        done = []
        BulkTransfer(pair.proto_a, "B", 9000, 4096, on_done=done.append)
        pair.sim.run(until=10.0)
        assert len(done) == 1

    def test_zero_bytes_rejected(self):
        pair = make_pair()
        with pytest.raises(ValueError):
            BulkTransfer(pair.proto_a, "B", 9000, 0)

    def test_transfer_larger_than_sockbuf(self):
        pair = make_pair()
        BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 200 * 1024,
                                sndbuf=16 * 1024, rcvbuf=16 * 1024)
        pair.sim.run(until=120.0)
        assert transfer.done

    def test_keep_open_when_requested(self):
        pair = make_pair()
        BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 4096,
                                close_when_done=False)
        pair.sim.run(until=10.0)
        assert transfer.done
        assert not transfer.conn.fin_sent

    def test_delayed_start_via_scheduler(self):
        pair = make_pair()
        BulkSink(pair.proto_b, 9000)
        holder = []
        pair.sim.schedule(2.0, lambda: holder.append(
            BulkTransfer(pair.proto_a, "B", 9000, 4096)))
        pair.sim.run(until=30.0)
        assert holder[0].done
        assert holder[0].conn.stats.open_time >= 2.0


class TestCrossTraffic:
    def _wire(self):
        sim = Simulator()
        topo = Topology(sim)
        src = topo.add_host("S")
        dst = topo.add_host("D")
        topo.add_link(src, dst, bandwidth=kbps(100), delay=ms(5),
                      queue_capacity=50)
        topo.build_routes()
        return sim, src, dst

    def test_steady_source_rate(self):
        sim, src, dst = self._wire()
        source = CrossTrafficSource(src, "D", random.Random(1),
                                    burst_rate=kbps(50), packet_size=500,
                                    steady=True)
        source.start()
        sim.run(until=60.0)
        source.stop()
        rate = source.bytes_sent / 60.0
        assert rate == pytest.approx(kbps(50), rel=0.15)
        assert source.average_rate == kbps(50)

    def test_onoff_duty_cycle(self):
        sim, src, dst = self._wire()
        source = CrossTrafficSource(src, "D", random.Random(2),
                                    burst_rate=kbps(80), packet_size=500,
                                    on_mean=0.5, off_mean=1.5)
        source.start()
        sim.run(until=120.0)
        source.stop()
        rate = source.bytes_sent / 120.0
        # Long-run average: burst_rate * 0.25 duty.
        assert rate == pytest.approx(source.average_rate, rel=0.35)

    def test_stop_halts_emission(self):
        sim, src, dst = self._wire()
        source = CrossTrafficSource(src, "D", random.Random(3),
                                    burst_rate=kbps(50), steady=True)
        source.start()
        sim.run(until=5.0)
        source.stop()
        sent = source.packets_sent
        sim.run(until=10.0)
        assert source.packets_sent == sent

    def test_parameter_validation(self):
        sim, src, dst = self._wire()
        with pytest.raises(ConfigurationError):
            CrossTrafficSource(src, "D", random.Random(4), burst_rate=0)
        with pytest.raises(ConfigurationError):
            CrossTrafficSource(src, "D", random.Random(4), burst_rate=1,
                               packet_size=0)

    def test_packets_reach_destination(self):
        sim, src, dst = self._wire()
        got = []
        dst.protocol_handler = lambda p: got.append(p.uid)
        source = CrossTrafficSource(src, "D", random.Random(5),
                                    burst_rate=kbps(20), steady=True)
        source.start()
        sim.run(until=10.0)
        source.stop()
        assert len(got) > 0
