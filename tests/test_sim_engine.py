"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_before_now_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_args_are_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(0.0, lambda x, y: got.append((x, y)), 1, "two")
        sim.run()
        assert got == [(1, "two")]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_via_simulator_accepts_none(self):
        sim = Simulator()
        sim.cancel(None)  # no-op, no exception

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"))
        drop = sim.schedule(1.0, lambda: fired.append("drop"))
        sim.cancel(drop)
        sim.run()
        assert fired == ["keep"]
        assert keep.time == 1.0


class TestRunBounds:
    def test_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("edge"))
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1
        assert sim.now == 5.0  # clock advanced to the horizon

    def test_resume_after_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run(until=15.0)
        assert fired == [10]

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        processed = sim.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_run_returns_processed_count(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 4
        assert sim.events_processed == 4

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.0, reenter)
        sim.run()


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_execution_times_are_sorted(self, delays):
        """Whatever the schedule order, execution is time-sorted."""
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1000,
                                        allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=100))
    def test_cancelled_subset_never_fires(self, items):
        sim = Simulator()
        fired = []
        events = []
        for i, (delay, cancel) in enumerate(items):
            events.append((sim.schedule(delay, fired.append, i), cancel))
        for event, cancel in events:
            if cancel:
                event.cancel()
        sim.run()
        expected = {i for i, (_, cancel) in enumerate(items) if not cancel}
        assert set(fired) == expected
