"""Property-based invariant tests (Hypothesis).

Rather than hand-picking scenarios, these tests generate random
operation sequences, topologies and workloads, then assert the same
invariants the runtime checker audits: conservation, ordering,
sequence-space sanity.  Each end-to-end case runs with the checker in
``raise`` mode, so a failure carries the violated invariant's name and
simulated time in the error message.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checks import checking
from repro.core.registry import make_cc
from repro.faults import FaultPlan, injecting
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.tcp.sack import SackScoreboard
from repro.units import kb, kbps, ms

from helpers import make_pair, run_transfer

#: Shared profile: simulation-backed cases are slow per example, so
#: keep example counts small and disable the per-example deadline.
SIM_SETTINGS = settings(max_examples=10, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


class TestScoreboardModel:
    """The scoreboard must agree with a naive set-of-bytes model."""

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40)),
                    max_size=12),
           st.integers(0, 250))
    @settings(max_examples=200, deadline=None)
    def test_matches_byte_set_model(self, blocks, advance):
        board = SackScoreboard()
        model = set()
        for start, length in blocks:
            board.add(start, start + length)
            model.update(range(start, start + length))
        board.advance_to(advance)
        model = {b for b in model if b >= advance}
        assert board.sacked_bytes() == len(model)
        for probe in range(0, 251, 7):
            assert board.is_sacked(probe) == (probe in model)

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40)),
                    max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_blocks_stay_disjoint_and_sorted(self, blocks):
        board = SackScoreboard()
        for start, length in blocks:
            board.add(start, start + length)
        result = board.blocks()
        assert result == sorted(result)
        for (s1, e1), (s2, e2) in zip(result, result[1:]):
            assert e1 < s2  # disjoint with a genuine gap (else merged)
        for s, e in result:
            assert s < e

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40)),
                    min_size=1, max_size=12),
           st.integers(0, 220), st.integers(1, 16))
    @settings(max_examples=200, deadline=None)
    def test_next_hole_is_really_a_hole(self, blocks, from_seq, mss):
        board = SackScoreboard()
        for start, length in blocks:
            board.add(start, start + length)
        hole = board.next_hole(from_seq, mss)
        if hole is None:
            return
        seq, length = hole
        assert seq >= from_seq
        assert 0 < length <= mss
        for probe in range(seq, seq + length):
            assert not board.is_sacked(probe)
        top = board.highest_sacked()
        assert top is not None and seq < top


class TestQueueModel:
    """DropTailQueue against a plain FIFO-list model."""

    class _P:
        def __init__(self, tag):
            self.tag = tag
            self.size = 100

    @given(st.lists(st.one_of(st.just("poll"), st.integers(0, 1 << 20)),
                    max_size=60),
           st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_fifo_and_conservation(self, ops, capacity):
        queue = DropTailQueue(capacity, name="q")
        model = []
        for i, op in enumerate(ops):
            now = 0.001 * i
            if op == "poll":
                got = queue.poll(now)
                want = model.pop(0) if model else None
                assert (got.tag if got else None) == \
                    (want.tag if want else None)
            else:
                packet = self._P(op)
                accepted = queue.offer(packet, now)
                assert accepted == (len(model) < capacity)
                if accepted:
                    model.append(packet)
        assert len(queue) == len(model)
        assert queue.enqueued == queue.dequeued + len(queue)
        assert queue.dropped == len(queue.drops)
        assert queue.max_depth <= capacity


class TestFaultPlanRoundtrip:
    _plans = st.builds(
        FaultPlan,
        drop=st.floats(0, 1), duplicate=st.floats(0, 1),
        reorder=st.floats(0, 1), jitter=st.floats(0, 1),
        reorder_hold=st.floats(0, 2), jitter_max=st.floats(0, 2),
        seed=st.integers(0, 1 << 16))

    @given(_plans)
    @settings(max_examples=200, deadline=None)
    def test_describe_parse_roundtrip(self, plan):
        assert FaultPlan.parse(plan.describe()) == plan


class TestEngineOrdering:
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                    max_size=40),
           st.sets(st.integers(0, 39)))
    @settings(max_examples=200, deadline=None)
    def test_events_fire_in_time_order_with_cancels(self, delays, cancels):
        sim = Simulator()
        fired = []
        events = [sim.schedule(delay, fired.append, i)
                  for i, delay in enumerate(delays)]
        cancelled = {i for i in cancels if i < len(events)}
        for i in cancelled:
            sim.cancel(events[i])
        sim.run()
        assert set(fired) == set(range(len(delays))) - cancelled
        times = [delays[i] for i in fired]
        assert times == sorted(times)
        assert sim.pending_events == 0


class TestEndToEndInvariants:
    @given(cc=st.sampled_from(["reno", "tahoe", "newreno", "vegas",
                               "vegas-sack", "reno-sack"]),
           size_kb=st.integers(4, 96),
           buffers=st.integers(3, 20),
           bandwidth_kbps=st.integers(50, 400),
           delay_ms=st.integers(1, 120))
    @SIM_SETTINGS
    def test_random_scenarios_hold_all_invariants(self, cc, size_kb, buffers,
                                                  bandwidth_kbps, delay_ms):
        # Raise mode: any invariant violation aborts with a structured
        # error naming the invariant, the time, and the flow.
        with checking() as chk:
            pair = make_pair(bandwidth=kbps(bandwidth_kbps),
                             delay=ms(delay_ms), queue_capacity=buffers)
            transfer = run_transfer(pair, kb(size_kb), cc=make_cc(cc))
        assert transfer.done
        assert chk.violations == []
        assert chk.audits > 0

    @given(cc=st.sampled_from(["reno", "vegas"]),
           drop=st.floats(0, 0.05),
           duplicate=st.floats(0, 0.03),
           reorder=st.floats(0, 0.05),
           jitter=st.floats(0, 0.1),
           seed=st.integers(0, 1 << 16))
    @SIM_SETTINGS
    def test_random_faults_never_break_invariants(self, cc, drop, duplicate,
                                                  reorder, jitter, seed):
        plan = FaultPlan(drop=drop, duplicate=duplicate, reorder=reorder,
                         jitter=jitter, jitter_max=0.02, seed=seed)
        with checking() as chk:
            with injecting(plan) as session:
                pair = make_pair()
                transfer = run_transfer(pair, kb(32), cc=make_cc(cc))
        assert transfer.done
        assert chk.violations == []
        # Conservation closes exactly: everything dequeued was either
        # delivered, duplicated into existence, or absorbed by a fault.
        for injector in session.injectors:
            channel = injector.channel
            assert channel.queue.dequeued == (
                channel.in_transit + channel.packets_delivered
                - injector.extra + injector.absorbed)
            assert injector.held == 0  # nothing parked after drain


class TestSendTimeIndexModel:
    """``_send_times``/``_ends_heap`` must agree with a naive dict model.

    The connection keeps a min-heap over exactly the send-time dict's
    keys so the cumulative-ACK purge and the Vegas fine-RTO lookup are
    O(log n) instead of scanning the whole window.  This drives the
    index through random send/retransmit/ack/query interleavings and
    checks it against the obvious full-scan model after every step.
    """

    @staticmethod
    def _bare_connection():
        from repro.tcp.connection import TCPConnection
        from repro.tcp.flatstate import ConnStateStore

        conn = TCPConnection.__new__(TCPConnection)
        conn._st = ConnStateStore()
        conn._slot = conn._st.alloc()
        conn.snd_una = 0
        return conn

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 8)),
                    max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_model(self, ops):
        conn = self._bare_connection()
        model = {}
        now = 0.0
        snd_max = 0

        for code, arg in ops:
            now += 1.0
            if code == 0:
                # New data: end_seq strictly beyond everything sent.
                end_seq = snd_max + arg
                snd_max = end_seq
                conn._note_send_time(end_seq, now)
                model[end_seq] = now
            elif code == 1:
                # Retransmission: refresh an outstanding end_seq's clock.
                if not model:
                    continue
                key = sorted(model)[arg % len(model)]
                conn._note_send_time(key, now)
                conn._ambiguous.add(key)
                model[key] = now
            elif code == 2:
                # Cumulative ACK through the purge path.
                ack = min(snd_max, conn.snd_una + arg)
                conn.snd_una = ack
                conn._purge_send_times(ack)
                for key in [k for k in model if k <= ack]:
                    del model[key]
            else:
                # Direct snd_una move (no purge): the lookup's lazy
                # sweep must repair the index on its own.
                ack = min(snd_max, conn.snd_una + arg)
                conn.snd_una = ack
                for key in [k for k in model if k <= ack]:
                    del model[key]

            expected = model[min(model)] if model else None
            assert conn.first_unacked_send_time() == expected

            # Heap and dict hold exactly the same key set, which is
            # exactly the naive model's outstanding set; the ambiguity
            # and probe marks never outlive their entries.
            assert conn._send_times == model
            assert sorted(conn._ends_heap) == sorted(model)
            assert conn._ambiguous <= set(model)
            assert conn._probe_ends <= set(model)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
