"""Cross-cutting invariants and miscellaneous coverage."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.registry import make_cc
from repro.core.reno import RenoCC
from repro.trace.records import Kind
from repro.trace.tracer import ConnectionTracer
from repro.trafficgen import TrafficServer
from repro.trafficgen.conversations import TelnetConversation

from helpers import make_pair


class TestWindowInvariants:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        cc_name=st.sampled_from(("reno", "vegas", "newreno")),
        drops=st.sets(st.integers(min_value=1, max_value=60), max_size=10),
    )
    def test_cwnd_never_below_one_segment(self, cc_name, drops):
        pair = make_pair(queue_capacity=20)
        tracer = ConnectionTracer("w")
        BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 48 * 1024,
                                cc=make_cc(cc_name), tracer=tracer)
        queue = pair.forward_queue
        original = queue.offer
        state = {"n": 0}

        def lossy(packet, now):
            if packet.size > 500:
                state["n"] += 1
                if state["n"] in drops:
                    return False
            return original(packet, now)

        queue.offer = lossy
        pair.sim.run(until=600.0)
        assert transfer.done
        mss = transfer.conn.mss
        for record in tracer.of_kind(Kind.CWND):
            assert record.a >= mss
        for record in tracer.of_kind(Kind.SSTHRESH):
            assert record.a >= 2 * mss

    def test_flight_never_negative_or_beyond_sndbuf(self):
        pair = make_pair(queue_capacity=5)
        tracer = ConnectionTracer("f")
        BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 200 * 1024,
                                sndbuf=20 * 1024, rcvbuf=20 * 1024,
                                tracer=tracer)
        pair.sim.run(until=120.0)
        assert transfer.done
        for record in tracer.of_kind(Kind.FLIGHT):
            assert 0 <= record.a <= 20 * 1024 + 2  # (+FIN/SYN slack)


class TestTrafficRobustness:
    def test_telnet_conversation_survives_loss(self):
        pair = make_pair(queue_capacity=30)
        rng = random.Random(3)
        TrafficServer(pair.proto_b, rng, RenoCC)
        conv = TelnetConversation(pair.proto_a, "B", rng, RenoCC)
        conv.start()
        # Randomly drop 5% of everything in both directions.
        loss_rng = random.Random(17)
        for node in ("R1", "R2"):
            queue = pair.bottleneck.channel_from(
                pair.topology.router(node)).queue
            original = queue.offer

            def lossy(packet, now, original=original):
                if loss_rng.random() < 0.05:
                    return False
                return original(packet, now)

            queue.offer = lossy
        pair.sim.run(until=3000.0)
        assert conv.finished
        assert conv.sent == conv.params.keystrokes

    def test_generator_survives_mid_run_loss(self):
        from repro.trafficgen import TrafficGenerator

        pair = make_pair(queue_capacity=8)
        rng = random.Random(4)
        TrafficServer(pair.proto_b, rng, RenoCC)
        generator = TrafficGenerator(pair.proto_a, "B", rng, RenoCC,
                                     arrival_mean=0.4)
        generator.start(0.0)
        pair.sim.run(until=40.0)
        generator.stop()
        # Under a congested 8-buffer bottleneck conversations still
        # finish (nothing deadlocks).
        assert generator.finished_count() > 10


class TestProtocolMisc:
    def test_port_allocation_skips_listeners(self):
        pair = make_pair()
        pair.proto_a.listen(1024)
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        assert conn.flow.local_port != 1024

    def test_internet_path_load_profile_deterministic(self):
        from repro.experiments.internet import build_internet_path

        a = build_internet_path(seed=7)
        b = build_internet_path(seed=7)
        assert a.load_profile == b.load_profile
        c = build_internet_path(seed=8)
        assert a.load_profile != c.load_profile

    def test_cross_traffic_average_rate_matches_profile(self):
        from repro.experiments.internet import build_internet_path

        path = build_internet_path(seed=1)
        assert path.cross_sources
        for source in path.cross_sources:
            assert source.average_rate > 0
