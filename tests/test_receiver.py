"""Tests for receiver-side ACK policy."""

from repro.tcp.receiver import AckAction, ReceiverHalf
from repro.tcp.segment import FLAG_ACK, TCPSegment


def data_seg(seq, length):
    return TCPSegment(1, 2, seq=seq, length=length, flags=FLAG_ACK)


class TestDelayedAcks:
    def test_first_segment_delays(self):
        recv = ReceiverHalf(50 * 1024)
        delivered, action = recv.process_data(data_seg(0, 1024))
        assert delivered == 1024
        assert action == AckAction.DELAY
        assert recv.delack_pending

    def test_second_segment_acks_now(self):
        recv = ReceiverHalf(50 * 1024)
        recv.process_data(data_seg(0, 1024))
        delivered, action = recv.process_data(data_seg(1024, 1024))
        assert action == AckAction.NOW

    def test_ack_sent_clears_pending(self):
        recv = ReceiverHalf(50 * 1024)
        recv.process_data(data_seg(0, 1024))
        recv.ack_sent()
        assert not recv.delack_pending
        _, action = recv.process_data(data_seg(1024, 1024))
        assert action == AckAction.DELAY

    def test_delayed_acks_disabled_acks_every_segment(self):
        recv = ReceiverHalf(50 * 1024, delayed_acks=False)
        _, action = recv.process_data(data_seg(0, 1024))
        assert action == AckAction.NOW


class TestDuplicateAcks:
    def test_out_of_order_acks_immediately(self):
        recv = ReceiverHalf(50 * 1024)
        _, action = recv.process_data(data_seg(2048, 1024))
        assert action == AckAction.NOW
        assert recv.rcv_nxt == 0
        assert recv.out_of_order_segments == 1

    def test_old_duplicate_reacked(self):
        recv = ReceiverHalf(50 * 1024)
        recv.process_data(data_seg(0, 1024))
        _, action = recv.process_data(data_seg(0, 1024))
        assert action == AckAction.NOW
        assert recv.duplicate_segments == 1

    def test_hole_fill_acks_immediately(self):
        recv = ReceiverHalf(50 * 1024)
        recv.process_data(data_seg(1024, 1024))  # hole at 0
        delivered, action = recv.process_data(data_seg(0, 1024))
        assert delivered == 2048
        assert action == AckAction.NOW

    def test_pure_ack_needs_no_response(self):
        recv = ReceiverHalf(50 * 1024)
        seg = TCPSegment(1, 2, seq=0, length=0, ack=10, flags=FLAG_ACK)
        delivered, action = recv.process_data(seg)
        assert delivered == 0
        assert action == AckAction.NONE


class TestAdvertisedWindow:
    def test_window_is_buffer_size(self):
        recv = ReceiverHalf(50 * 1024)
        assert recv.rcv_wnd == 50 * 1024

    def test_window_constant_under_out_of_order_data(self):
        """BSD behaviour: the reassembly queue is not charged, so dup
        ACKs carry an unchanged window (required for fast retransmit)."""
        recv = ReceiverHalf(50 * 1024)
        before = recv.rcv_wnd
        recv.process_data(data_seg(8192, 1024))
        assert recv.rcv_wnd == before

    def test_bytes_delivered_accumulates(self):
        recv = ReceiverHalf(50 * 1024)
        recv.process_data(data_seg(0, 1000))
        recv.process_data(data_seg(1000, 500))
        assert recv.bytes_delivered == 1500
