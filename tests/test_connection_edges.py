"""Edge-case tests for the connection state machine."""

from repro.tcp.connection import State
from repro.tcp.segment import FLAG_ACK, FLAG_SYN, TCPSegment

from helpers import make_pair


def drop_nth(queue, indices, predicate=lambda p: True):
    original = queue.offer
    state = {"n": 0}

    def offer(packet, now):
        if predicate(packet):
            state["n"] += 1
            if state["n"] in indices:
                return False
        return original(packet, now)

    queue.offer = offer


class TestHandshakeEdges:
    def test_lost_synack_recovered_by_syn_retransmit(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        # Drop the first reverse-direction packet (the SYN-ACK).
        reverse = pair.bottleneck.channel_from(pair.topology.router("R2")).queue
        drop_nth(reverse, {1})
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=60.0)
        assert conn.state == State.ESTABLISHED
        server = pair.proto_b.connection_list()[0]
        assert server.state == State.ESTABLISHED

    def test_duplicate_syn_does_not_create_second_connection(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        # Replay the SYN (e.g. a duplicate in the network).
        syn = TCPSegment(conn.flow.local_port, 9000, seq=0, length=0,
                         flags=FLAG_SYN, wnd=50 * 1024)
        from repro.net.packet import Packet

        pair.b.receive(Packet("A", "B", syn, syn.wire_size))
        pair.sim.run(until=4.0)
        assert len(pair.proto_b.connection_list()) == 1

    def test_lost_third_ack_recovered_by_data(self):
        """If the handshake's final ACK is lost, the first data segment
        carries the same acknowledgement and completes the accept."""
        pair = make_pair()
        pair.proto_b.listen(9000)
        forward = pair.forward_queue
        # Packet 1 = SYN (keep), packet 2 = the third ACK (drop).
        drop_nth(forward, {2})
        conn = pair.proto_a.connect("B", 9000)
        conn.on_established = lambda c: c.app_send(2048)
        pair.sim.run(until=30.0)
        server = pair.proto_b.connection_list()[0]
        assert server.state == State.ESTABLISHED
        assert server.recv.bytes_delivered == 2048


class TestCloseEdges:
    def test_lost_fin_is_retransmitted(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        conn.app_send(1024)
        pair.sim.run(until=3.0)
        # Drop the next forward packet (the FIN).
        drop_nth(pair.forward_queue, {1})
        conn.close()
        pair.sim.run(until=60.0)
        assert conn.is_closed
        assert all(c.is_closed for c in pair.proto_b.connection_list())

    def test_segment_to_closed_connection_reacked(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        conn.close()
        pair.sim.run(until=10.0)
        assert conn.is_closed
        # A stray retransmitted data segment arrives after close.
        stray = TCPSegment(conn.flow.remote_port, conn.flow.local_port,
                           seq=1, length=100, ack=conn.snd_nxt,
                           flags=FLAG_ACK, wnd=1000)
        before = pair.a.packets_sent
        conn.handle_segment(stray)
        assert pair.a.packets_sent == before + 1  # a re-ACK went out

    def test_close_is_idempotent(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        conn.close()
        conn.close()  # second close is a no-op
        pair.sim.run(until=10.0)
        assert conn.is_closed


class TestStats:
    def test_transfer_timestamps_ordered(self):
        from helpers import run_transfer

        pair = make_pair()
        transfer = run_transfer(pair, 16 * 1024)
        stats = transfer.conn.stats
        assert stats.open_time <= stats.established_time
        assert stats.established_time <= stats.first_send_time
        assert stats.first_send_time <= stats.last_ack_time
        assert stats.last_ack_time <= stats.close_time

    def test_bytes_accounting_consistent(self):
        from helpers import run_transfer

        pair = make_pair()
        transfer = run_transfer(pair, 32 * 1024)
        stats = transfer.conn.stats
        assert stats.app_bytes_queued == 32 * 1024
        assert stats.app_bytes_acked == 32 * 1024
        assert stats.bytes_sent_total >= 32 * 1024
        assert (stats.bytes_sent_total - 32 * 1024
                == stats.retransmitted_bytes)
