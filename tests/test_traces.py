"""Trace-driven link tests.

Three layers, matching the feature's risk profile:

* **Property battery** (Hypothesis) over :mod:`repro.net.traces`:
  rate-integral conservation (``time_to_send`` is the exact inverse of
  ``bytes_between``), monotone delivery times (FIFO: starting later or
  sending more never finishes earlier), stochastic-generator
  determinism under a fixed seed, and the mahimahi file-format
  round-trip (save → load → save is byte-identical).

* **Constant-trace differential**: a :class:`VariableRateChannel`
  driven by a flat trace must be *bit-identical* — every metric,
  including ``events_processed`` — to the closed-form static
  :class:`Channel` on the paper's figure6/figure7 cells, and both must
  match the committed ``baselines/expected.json``.  This is the gate
  that lets the trace path coexist with the frozen baselines.

* **Link-layer unit tests**: trace-driven drain across rate steps and
  outages, seeded stochastic loss (counted, deterministic, and visible
  to the conservation audit), and the uniform
  ``validate_link_params`` errors for zero/negative bandwidth/delay
  across Channel, PointToPointLink and EthernetLan.
"""

import json
import math
import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checks import checking
from repro.core.registry import make_cc
from repro.errors import ConfigurationError
from repro.harness.registry import Cell, run_cell
from repro.net.link import Channel, EthernetLan, validate_link_params
from repro.net.queue import DropTailQueue
from repro.net.topology import Topology
from repro.net.traces import (
    BIN_S,
    MTU,
    BandwidthTrace,
    TraceSpec,
    cellular_trace,
    constant_trace,
    load_mahimahi,
    outage_trace,
    random_walk_trace,
    save_mahimahi,
    stepped_trace,
)
from repro.sim.engine import Simulator
from repro.units import kb, kbps, ms

from helpers import make_pair, run_transfer

BASELINES = os.path.join(os.path.dirname(__file__), os.pardir,
                         "baselines", "expected.json")

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: (duration, rate) steps: durations keep cycles short, rates include
#: genuine zero-rate outage segments.
_steps = st.lists(
    st.tuples(st.floats(0.01, 3.0, allow_nan=False),
              st.one_of(st.just(0.0), st.floats(1e3, 5e5,
                                                allow_nan=False))),
    min_size=1, max_size=8)


def _cyclic_trace(steps):
    """Build a cyclic stepped trace, forcing one positive segment."""
    if all(rate == 0.0 for _, rate in steps):
        steps = steps + [(1.0, 1e4)]
    return stepped_trace(steps, cyclic=True)


# ----------------------------------------------------------------------
# Property battery
# ----------------------------------------------------------------------

class TestConservation:
    """bytes_between / time_to_send are exact mutual inverses."""

    @given(_steps, st.floats(0, 20, allow_nan=False),
           st.floats(1.0, 1e6, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_time_to_send_inverts_bytes_between(self, steps, start, nbytes):
        trace = _cyclic_trace(steps)
        took = trace.time_to_send(nbytes, start)
        delivered = trace.bytes_between(start, start + took)
        # Saturation equality: a saturated sender moves exactly the
        # integral of the rate, so the inverse lands on the integral.
        assert delivered == pytest.approx(nbytes, rel=1e-6, abs=1e-3)

    @given(_steps, st.floats(0, 20, allow_nan=False),
           st.floats(0, 10, allow_nan=False),
           st.floats(0, 10, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_opportunity_bounds_any_interval(self, steps, t0, d1, d2):
        trace = _cyclic_trace(steps)
        lo, hi = sorted((t0 + d1, t0 + d2))
        got = trace.bytes_between(lo, hi)
        # Bounded by the extreme rates; additive over a split point.
        assert -1e-6 <= got <= trace.max_rate * (hi - lo) + 1e-6
        mid = (lo + hi) / 2
        assert got == pytest.approx(
            trace.bytes_between(lo, mid) + trace.bytes_between(mid, hi),
            rel=1e-9, abs=1e-6)

    @given(_steps, st.floats(1.0, 1e5, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_cycle_mean_matches_integral(self, steps, span_scale):
        trace = _cyclic_trace(steps)
        n_cycles = 3
        got = trace.bytes_between(0.0, n_cycles * trace.period)
        assert got == pytest.approx(
            trace.mean_rate * n_cycles * trace.period, rel=1e-9)


class TestMonotoneDelivery:
    @given(_steps, st.floats(0, 20, allow_nan=False),
           st.floats(1.0, 1e5, allow_nan=False),
           st.floats(0, 1e5, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_more_bytes_never_finish_earlier(self, steps, start, n1, extra):
        trace = _cyclic_trace(steps)
        assert trace.time_to_send(n1, start) <= \
            trace.time_to_send(n1 + extra, start) + 1e-9

    @given(_steps, st.floats(0, 10, allow_nan=False),
           st.floats(0, 10, allow_nan=False),
           st.floats(1.0, 1e5, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_later_start_never_finishes_earlier(self, steps, t0, gap, nbytes):
        # FIFO sanity: the completion *instant* is monotone in the
        # start instant, so back-to-back transmissions can't reorder.
        trace = _cyclic_trace(steps)
        t1 = t0 + gap
        done0 = t0 + trace.time_to_send(nbytes, t0)
        done1 = t1 + trace.time_to_send(nbytes, t1)
        assert done0 <= done1 + 1e-9


class TestSeedDeterminism:
    @given(st.integers(0, 1 << 16))
    @settings(max_examples=50, deadline=None)
    def test_random_walk_is_seed_deterministic(self, seed):
        one = random_walk_trace(kbps(500), kbps(50), random.Random(seed))
        two = random_walk_trace(kbps(500), kbps(50), random.Random(seed))
        assert one.rates == two.rates and one.times == two.times

    @given(st.integers(0, 1 << 16))
    @settings(max_examples=50, deadline=None)
    def test_cellular_is_seed_deterministic(self, seed):
        one = cellular_trace(kbps(1000), kbps(100), random.Random(seed))
        two = cellular_trace(kbps(1000), kbps(100), random.Random(seed))
        assert one.rates == two.rates
        three = cellular_trace(kbps(1000), kbps(100),
                               random.Random(seed + 1))
        # Not a hard guarantee for every seed pair, but for these
        # 80-sample profiles a collision means the rng isn't wired in.
        assert one.rates != three.rates or seed > (1 << 16) - 2

    def test_spec_build_is_deterministic(self):
        spec = TraceSpec.make("random-walk", mean=kbps(500), step=kbps(60))
        one = spec.build(random.Random(7))
        two = spec.build(random.Random(7))
        assert one.rates == two.rates and one.period == two.period


class TestMahimahiRoundTrip:
    @given(steps=_steps, salt=st.integers(0, 1 << 10))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    def test_save_load_save_is_byte_identical(self, tmp_path, steps, salt):
        trace = _cyclic_trace(steps)
        p1 = tmp_path / f"a{salt}.trace"
        p2 = tmp_path / f"b{salt}.trace"
        written = save_mahimahi(trace, str(p1))
        if written == 0:
            return  # degenerate: cycle shorter than one opportunity
        loaded = load_mahimahi(str(p1))
        save_mahimahi(loaded, str(p2))
        assert p1.read_bytes() == p2.read_bytes()

    @given(steps=_steps)
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    def test_quantisation_conserves_bytes(self, tmp_path, steps):
        trace = _cyclic_trace(steps)
        path = tmp_path / "t.trace"
        written = save_mahimahi(trace, str(path))
        # The quantiser rounds the cycle to whole 1 ms bins, so the
        # conservation window is nbins * BIN_S, not the raw period
        # (they differ by up to half a bin of bytes).  Over that
        # window the remainder carry keeps the total within one
        # packet, up to float rounding relative to the integral.
        nbins = int(round(trace.period / BIN_S))
        window_bytes = trace.bytes_between(0.0, nbins * BIN_S)
        assert (abs(written * MTU - window_bytes)
                < MTU + 1e-6 * abs(window_bytes))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("12\nnope\n")
        with pytest.raises(ConfigurationError):
            load_mahimahi(str(path))
        path.write_text("-3\n")
        with pytest.raises(ConfigurationError):
            load_mahimahi(str(path))
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_mahimahi(str(path))

    def test_known_file_rates(self, tmp_path):
        # 2 opportunities at ms 0, none at ms 1: 3000 B/ms then silence,
        # repeating every 2 ms.
        path = tmp_path / "k.trace"
        path.write_text("0\n0\n")
        trace = load_mahimahi(str(path))
        assert trace.period == pytest.approx(0.001)
        assert trace.rate_at(0.0) == pytest.approx(2 * MTU * 1000.0)
        path.write_text("0\n0\n1\n3\n")
        trace = load_mahimahi(str(path))
        assert trace.period == pytest.approx(0.004)
        assert trace.rate_at(0.0021) == 0.0
        assert trace.mean_rate == pytest.approx(4 * MTU / 0.004)


# ----------------------------------------------------------------------
# Trace construction and the generators
# ----------------------------------------------------------------------

class TestTraceValidation:
    def test_rejects_malformed_profiles(self):
        with pytest.raises(ConfigurationError):
            BandwidthTrace((), ())
        with pytest.raises(ConfigurationError):
            BandwidthTrace((1.0,), (5.0,))          # must start at 0
        with pytest.raises(ConfigurationError):
            BandwidthTrace((0.0, 0.0), (1.0, 2.0))  # not increasing
        with pytest.raises(ConfigurationError):
            BandwidthTrace((0.0,), (-1.0,))         # negative rate
        with pytest.raises(ConfigurationError):
            BandwidthTrace((0.0,), (math.inf,))
        with pytest.raises(ConfigurationError):
            BandwidthTrace((0.0, 1.0), (1.0, 2.0), period=1.0)
        with pytest.raises(ConfigurationError):
            BandwidthTrace((0.0,), (0.0,), period=5.0)  # all-dark cycle
        with pytest.raises(ConfigurationError):
            BandwidthTrace((0.0,), (0.0,))          # zero tail forever

    def test_generator_validation(self):
        with pytest.raises(ConfigurationError):
            constant_trace(0.0)
        with pytest.raises(ConfigurationError):
            stepped_trace([])
        with pytest.raises(ConfigurationError):
            stepped_trace([(0.0, 100.0)])
        with pytest.raises(ConfigurationError):
            random_walk_trace(0.0, 10.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            cellular_trace(100.0, 200.0, random.Random(0))  # trough > peak
        with pytest.raises(ConfigurationError):
            outage_trace(100.0, period=5.0, down=5.0)

    def test_constant_flag_and_rate_at(self):
        flat = BandwidthTrace((0.0, 1.0), (100.0, 100.0), period=2.0)
        assert flat.is_constant  # flat however segmented
        varying = stepped_trace([(1.0, 100.0), (1.0, 50.0)])
        assert not varying.is_constant
        assert varying.rate_at(0.5) == 100.0
        assert varying.rate_at(1.5) == 50.0
        assert varying.rate_at(2.5) == 100.0  # wraps
        with pytest.raises(ValueError):
            varying.rate_at(-1.0)

    def test_outage_straddling_send(self):
        trace = outage_trace(1000.0, period=10.0, down=5.0)
        # 6000 bytes from t=0: 5 s drains 5000, outage 5 s, 1 more s.
        assert trace.time_to_send(6000.0, 0.0) == pytest.approx(11.0)

    def test_non_cyclic_tail_extends_forever(self):
        trace = stepped_trace([(1.0, 100.0), (1.0, 50.0)], cyclic=False)
        assert trace.rate_at(100.0) == 50.0
        # 1 s drains the first 100 bytes; the remaining 5400 drain at
        # the 50 B/s tail: 109 s total.
        assert trace.time_to_send(100.0 + 50.0 * 98.0 + 500.0, 0.0) == \
            pytest.approx(1.0 + 108.0)


class TestTraceSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSpec.make("wormhole")

    def test_stochastic_kinds_require_rng(self):
        spec = TraceSpec.make("cellular", peak=kbps(1000),
                              trough=kbps(100))
        with pytest.raises(ConfigurationError):
            spec.build(None)

    def test_specs_are_hashable_and_buildable(self):
        specs = {
            TraceSpec.make("constant", rate=kbps(200)),
            TraceSpec.make("steps", steps=((1.0, 1e5), (1.0, 5e4))),
            TraceSpec.make("outage", rate=kbps(250), period=15.0,
                           down=2.0),
        }
        for spec in specs:
            trace = spec.build(None)
            assert trace.mean_rate > 0
            assert spec.kind in spec.describe()

    def test_file_kind_builds_from_mahimahi(self, tmp_path):
        path = tmp_path / "f.trace"
        save_mahimahi(stepped_trace([(1.0, 64 * MTU)]), str(path))
        trace = TraceSpec.make("file", path=str(path)).build(None)
        assert trace.mean_rate == pytest.approx(64 * MTU, rel=0.02)


# ----------------------------------------------------------------------
# VariableRateChannel behaviour
# ----------------------------------------------------------------------

class TestVariableRateChannel:
    def test_transfer_tracks_trace_capacity(self):
        # A square wave averaging 150 KB/s: the transfer must take at
        # least the trace-integral lower bound and actually finish.
        trace = stepped_trace([(2.0, kbps(200)), (2.0, kbps(100))])
        with checking() as chk:
            pair = make_pair(bandwidth=trace.mean_rate, trace=trace,
                             queue_capacity=20)
            transfer = run_transfer(pair, kb(256), cc=make_cc("vegas"))
        assert transfer.done
        assert chk.violations == []
        floor = trace.time_to_send(kb(256), 0.0)
        assert pair.sim.now >= floor

    def test_transfer_survives_outage(self):
        trace = outage_trace(kbps(200), period=6.0, down=1.5)
        with checking() as chk:
            pair = make_pair(bandwidth=kbps(200), trace=trace,
                             queue_capacity=20)
            transfer = run_transfer(pair, kb(128), cc=make_cc("reno"),
                                    until=600.0)
        assert transfer.done
        assert chk.violations == []

    def test_stochastic_loss_is_counted_and_audited(self):
        with checking() as chk:
            pair = make_pair(loss=0.02, loss_rng=random.Random(42),
                             queue_capacity=20)
            transfer = run_transfer(pair, kb(128), cc=make_cc("reno"),
                                    until=600.0)
        assert transfer.done
        assert chk.violations == []  # losses join the conservation audit
        losses = sum(ch.stochastic_losses
                     for ch in (pair.bottleneck.ab, pair.bottleneck.ba))
        assert losses > 0

    def test_stochastic_loss_is_seed_deterministic(self):
        def run(seed):
            pair = make_pair(loss=0.02, loss_rng=random.Random(seed),
                             queue_capacity=20)
            run_transfer(pair, kb(64), cc=make_cc("reno"), until=600.0)
            return (pair.sim.now, pair.bottleneck.ab.stochastic_losses)

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_loss_requires_rng_and_valid_rate(self):
        sim = Simulator()
        trace = constant_trace(kbps(100))
        queue = DropTailQueue(10, name="q")
        from repro.net.link import VariableRateChannel

        with pytest.raises(ConfigurationError):
            VariableRateChannel(sim, trace, ms(10), queue, loss=0.5)
        with pytest.raises(ConfigurationError):
            VariableRateChannel(sim, trace, ms(10), queue, loss=1.0,
                                loss_rng=random.Random(0))
        with pytest.raises(ConfigurationError):
            VariableRateChannel(sim, trace, ms(10), queue, loss=-0.1,
                                loss_rng=random.Random(0))


# ----------------------------------------------------------------------
# Constant-trace differential: bit-identity with the static Channel
# ----------------------------------------------------------------------

def _constant_trace_everywhere(monkeypatch):
    """Patch Topology.add_link to route every link through a
    VariableRateChannel driven by a flat trace at the same bandwidth."""
    orig = Topology.add_link

    def traced(self, a, b, bandwidth, delay, **kwargs):
        kwargs.setdefault("trace", constant_trace(bandwidth))
        return orig(self, a, b, bandwidth, delay, **kwargs)

    monkeypatch.setattr(Topology, "add_link", traced)


@pytest.mark.slow
class TestConstantTraceDifferential:
    """The gate protecting ``baselines/expected.json``: a flat trace
    must not move a single bit of any figure cell's metrics."""

    @pytest.mark.parametrize("experiment", ["figure6", "figure7"])
    def test_figure_cells_bit_identical(self, experiment, monkeypatch):
        cell = Cell.make(experiment, seed=0)
        static = run_cell(cell)
        _constant_trace_everywhere(monkeypatch)
        traced = run_cell(cell)
        # Full dict equality: throughput, retransmits, timeouts AND
        # events_processed — same event sequence, not just same totals.
        assert traced == static

    @pytest.mark.parametrize("experiment", ["figure6", "figure7"])
    def test_figure_cells_match_committed_baseline(self, experiment,
                                                   monkeypatch):
        _constant_trace_everywhere(monkeypatch)
        metrics = run_cell(Cell.make(experiment, seed=0))
        with open(BASELINES) as handle:
            cells = json.load(handle)["cells"]
        expected, = [c["metrics"] for c in cells
                     if c["key"] == f"{experiment}/seed=0"]
        assert metrics == expected

    def test_smoke_cohort_bit_identical(self, monkeypatch):
        from repro.arena.cells import run_cohort

        static = run_cohort(["vegas", "reno"], "smoke", seed=1)
        _constant_trace_everywhere(monkeypatch)
        traced = run_cohort(["vegas", "reno"], "smoke", seed=1)
        assert [(f.throughput_kbps, f.rtt_mean_ms, f.retransmit_kb)
                for f in static] == \
            [(f.throughput_kbps, f.rtt_mean_ms, f.retransmit_kb)
             for f in traced]


# ----------------------------------------------------------------------
# Uniform link-parameter validation
# ----------------------------------------------------------------------

class TestLinkValidation:
    """One validator, one message shape, all three link layers."""

    def test_validator_message_shape(self):
        with pytest.raises(ConfigurationError,
                           match=r"^link: bandwidth must be positive"):
            validate_link_params(0.0, ms(10))
        with pytest.raises(ConfigurationError,
                           match=r"^link: delay must be non-negative"):
            validate_link_params(kbps(100), -ms(1))
        validate_link_params(kbps(100), 0.0)  # zero delay is legal

    @pytest.mark.parametrize("bandwidth,delay", [
        (0.0, ms(10)), (-1.0, ms(10)), (kbps(100), -ms(1))])
    def test_channel_rejects(self, bandwidth, delay):
        sim = Simulator()
        queue = DropTailQueue(10, name="q")
        with pytest.raises(ConfigurationError, match=r"^channel "):
            Channel(sim, bandwidth, delay, queue)

    @pytest.mark.parametrize("bandwidth,delay", [
        (0.0, ms(10)), (-1.0, ms(10)), (kbps(100), -ms(1))])
    def test_point_to_point_rejects(self, bandwidth, delay):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        b = topo.add_host("B")
        with pytest.raises(ConfigurationError, match=r"^link "):
            topo.add_link(a, b, bandwidth=bandwidth, delay=delay)

    @pytest.mark.parametrize("bandwidth,latency", [
        (0.0, ms(1)), (-1.0, ms(1)), (kbps(100), -ms(1))])
    def test_lan_rejects(self, bandwidth, latency):
        sim = Simulator()
        with pytest.raises(ConfigurationError, match=r"^LAN "):
            EthernetLan(sim, bandwidth, latency)

    def test_traced_link_validates_mean_rate(self):
        # An all-but-dark trace still has positive mean: accepted; the
        # nominal bandwidth argument is then ignored entirely.
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("A")
        b = topo.add_host("B")
        trace = outage_trace(kbps(100), period=10.0, down=9.0)
        link = topo.add_link(a, b, bandwidth=kbps(999), delay=ms(1),
                             trace=trace)
        assert link.ab.trace is trace


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestTracesCLI:
    def test_list_names_time_varying_scenarios(self, capsys):
        from repro.cli import main

        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        for name in ("lte", "wifi", "steps", "outage"):
            assert name in out
        assert "classic" not in out

    def test_show_and_export_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "steps.trace"
        assert main(["traces", "--scenario", "steps",
                     "--export", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mean 200.0 KB/s" in out
        assert main(["traces", "--load", str(path)]) == 0
        assert "mean 200.0 KB/s" in capsys.readouterr().out

    def test_static_scenario_exits_2(self, capsys):
        from repro.cli import main

        assert main(["traces", "--scenario", "classic"]) == 2
