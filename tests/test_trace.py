"""Tests for the trace facility: records, tracers, series, graphs."""

import pytest

from repro.net.queue import DropTailQueue
from repro.trace import series as S
from repro.trace.ascii_plot import (
    AsciiPlot,
    render_cam_panel,
    render_rate_panel,
    render_windows_panel,
)
from repro.trace.graphs import build_trace_graph
from repro.trace.records import Kind, Record
from repro.trace.tracer import ConnectionTracer, RouterTracer

from helpers import make_pair, run_transfer


class TestTracer:
    def test_records_appended_in_order(self):
        tracer = ConnectionTracer("t")
        tracer.record(1.0, Kind.SEND, 0, 100)
        tracer.record(2.0, Kind.ACK_RX, 100)
        assert len(tracer) == 2
        assert tracer.records[0] == Record(1.0, int(Kind.SEND), 0, 100)

    def test_of_kind_and_count(self):
        tracer = ConnectionTracer("t")
        for i in range(3):
            tracer.record(float(i), Kind.SEND, i)
        tracer.record(5.0, Kind.RETX, 9)
        assert tracer.count(Kind.SEND) == 3
        assert [r.a for r in tracer.of_kind(Kind.SEND)] == [0, 1, 2]

    def test_disabled_tracer_is_free(self):
        tracer = ConnectionTracer("t", enabled=False)
        tracer.record(1.0, Kind.SEND)
        assert len(tracer) == 0

    def test_clear(self):
        tracer = ConnectionTracer("t")
        tracer.record(1.0, Kind.SEND)
        tracer.clear()
        assert len(tracer) == 0


class TestRouterTracer:
    def test_depth_and_drop_series(self):
        queue = DropTailQueue(capacity=2)
        tracer = RouterTracer(queue, "bottleneck")

        class P:
            size = 100

        queue.offer(P(), 0.0)
        queue.offer(P(), 1.0)
        queue.offer(P(), 2.0)  # drop
        queue.poll(3.0)
        assert tracer.drops == 1
        assert tracer.max_depth() == 2
        assert tracer.drop_series == [(2.0, 100)]

    def test_mean_depth_time_weighted(self):
        queue = DropTailQueue(capacity=10)
        tracer = RouterTracer(queue)

        class P:
            size = 1

        queue.offer(P(), 0.0)   # depth 1 from t=0
        queue.offer(P(), 10.0)  # depth 2 from t=10
        mean = tracer.mean_depth(0.0, 20.0)
        assert mean == pytest.approx(1.5)


class TestSeriesExtraction:
    def _traced_transfer(self, nbytes=80 * 1024, queue_capacity=10):
        pair = make_pair(queue_capacity=queue_capacity)
        tracer = ConnectionTracer("t")
        transfer = run_transfer(pair, nbytes, tracer=tracer)
        assert transfer.done
        return tracer, transfer

    def test_send_and_ack_marks(self):
        tracer, transfer = self._traced_transfer()
        sends = S.send_marks(tracer)
        acks = S.ack_marks(tracer)
        assert len(sends) >= 80
        assert len(acks) >= 20
        assert sends == sorted(sends)

    def test_kilobyte_marks_monotone(self):
        tracer, _ = self._traced_transfer()
        marks = S.kilobyte_marks(tracer, every_kb=10)
        values = [kb for _, kb in marks]
        assert values == sorted(values)
        assert values[0] == 10
        assert values[-1] >= 70

    def test_loss_lines_precede_retransmissions(self):
        tracer, transfer = self._traced_transfer(nbytes=400 * 1024,
                                                 queue_capacity=5)
        assert transfer.conn.stats.retransmit_segments > 0
        lines = S.loss_lines(tracer)
        assert len(lines) == tracer.count(Kind.RETX)
        retx_times = [r.time for r in tracer.of_kind(Kind.RETX)]
        assert all(line <= t for line, t in zip(sorted(lines),
                                                sorted(retx_times)))

    def test_sending_rate_series_reasonable(self):
        tracer, _ = self._traced_transfer()
        rates = S.sending_rate_series(tracer, window_segments=12)
        assert rates
        # Rates are positive and below 10x the bottleneck (bursts from
        # the 10 Mb/s access LAN can exceed 200 KB/s briefly).
        assert all(0 < r for _, r in rates)

    def test_value_at_step_semantics(self):
        series = [(1.0, 10.0), (2.0, 20.0)]
        assert S.value_at(series, 0.5) is None
        assert S.value_at(series, 1.0) == 10.0
        assert S.value_at(series, 1.5) == 10.0
        assert S.value_at(series, 3.0) == 20.0

    def test_sawtooth_count(self):
        flat = [(t, 100.0) for t in range(10)]
        assert S.sawtooth_count(flat) == 0
        saw = [(0, 10), (1, 20), (2, 30), (3, 10), (4, 20), (5, 30), (6, 10)]
        assert S.sawtooth_count(saw) == 2

    def test_steady_state_stats(self):
        series = [(0.0, 5.0), (1.0, 10.0), (2.0, 20.0)]
        mean, spread = S.steady_state_stats(series, t_start=1.0)
        assert mean == 15.0 and spread == 10.0


class TestTraceGraph:
    def test_reno_graph_has_all_panels(self):
        pair = make_pair(queue_capacity=5)
        tracer = ConnectionTracer("reno")
        transfer = run_transfer(pair, 300 * 1024, tracer=tracer)
        graph = build_trace_graph(tracer, name="reno")
        assert graph.common.send_marks
        assert graph.common.ack_marks
        assert graph.common.timer_diamonds  # coarse timer checks
        assert graph.windows.congestion_window
        assert graph.windows.bytes_in_transit
        assert graph.sending_rate
        assert graph.cam is None  # not a Vegas trace
        assert graph.losses() == transfer.conn.stats.retransmit_segments
        assert graph.duration > 0

    def test_vegas_graph_has_cam_panel(self):
        from repro.core.vegas import VegasCC

        pair = make_pair(queue_capacity=10)
        tracer = ConnectionTracer("vegas")
        transfer = run_transfer(pair, 300 * 1024, cc=VegasCC(), tracer=tracer)
        graph = build_trace_graph(tracer, name="vegas", alpha_buffers=2,
                                  beta_buffers=4)
        assert graph.cam is not None
        assert graph.cam.alpha == 2 and graph.cam.beta == 4
        assert len(graph.cam.expected) == len(graph.cam.actual)
        assert graph.cam.decision_times == sorted(graph.cam.decision_times)


class TestAsciiPlot:
    def test_render_produces_grid(self):
        plot = AsciiPlot(width=40, height=8, title="test")
        plot.add_series([(0.0, 0.0), (1.0, 10.0), (2.0, 5.0)], "*")
        plot.add_top_marks([0.5, 1.5], "o")
        text = plot.render()
        lines = text.splitlines()
        assert lines[0] == "test"
        assert "*" in text and "o" in text
        assert "time (s)" in text

    def test_empty_plot_renders(self):
        assert AsciiPlot(width=20, height=4).render()

    def test_panel_renderers(self):
        from repro.core.vegas import VegasCC

        pair = make_pair()
        tracer = ConnectionTracer("v")
        run_transfer(pair, 100 * 1024, cc=VegasCC(), tracer=tracer)
        graph = build_trace_graph(tracer, name="v")
        assert "windows" in render_windows_panel(graph)
        assert "KB/s" in render_rate_panel(graph)
        assert "CAM" in render_cam_panel(graph)

    def test_cam_panel_without_cam_data(self):
        pair = make_pair()
        tracer = ConnectionTracer("r")
        run_transfer(pair, 20 * 1024, tracer=tracer)  # Reno
        graph = build_trace_graph(tracer, name="r")
        assert "no CAM data" in render_cam_panel(graph)
