"""Tests for flow statistics, fairness, and table aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.fairness import jain_fairness_index, worst_to_best_ratio
from repro.metrics.flowstats import FlowStats
from repro.metrics.tables import MetricTable, RunAggregate, format_table


class TestFlowStats:
    def test_throughput_definition(self):
        stats = FlowStats()
        stats.open_time = 1.0
        stats.last_ack_time = 11.0
        stats.app_bytes_acked = 100 * 1024
        assert stats.throughput_kbps() == pytest.approx(10.0)

    def test_throughput_zero_before_completion(self):
        assert FlowStats().throughput_kbps() == 0.0

    def test_retransmitted_kb(self):
        stats = FlowStats()
        stats.retransmitted_bytes = 3 * 1024
        assert stats.retransmitted_kb() == 3.0

    def test_rtt_tracking(self):
        stats = FlowStats()
        for sample in (0.1, 0.3, 0.2):
            stats.note_rtt(sample)
        assert stats.rtt_min == pytest.approx(0.1)
        assert stats.rtt_max == pytest.approx(0.3)
        assert stats.rtt_mean == pytest.approx(0.2)
        assert stats.rtt_samples == 3

    def test_rtt_mean_empty(self):
        assert FlowStats().rtt_mean is None

    def test_summary_string(self):
        stats = FlowStats()
        stats.open_time, stats.last_ack_time = 0.0, 10.0
        stats.app_bytes_acked = 10240
        text = stats.summary()
        assert "KB/s" in text and "timeouts" in text


class TestFairness:
    def test_equal_allocations_are_fair(self):
        assert jain_fairness_index([10, 10, 10]) == pytest.approx(1.0)

    def test_single_hog(self):
        # One of n getting everything -> index = 1/n.
        assert jain_fairness_index([30, 0, 0]) == pytest.approx(1 / 3)

    def test_known_value(self):
        # Jain's example: (1,2,3) -> 36/(3*14).
        assert jain_fairness_index([1, 2, 3]) == pytest.approx(36 / 42)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([1, -1])

    def test_all_zero_is_fair(self):
        assert jain_fairness_index([0, 0]) == 1.0

    def test_worst_to_best(self):
        assert worst_to_best_ratio([5, 10]) == pytest.approx(0.5)
        assert worst_to_best_ratio([0, 0]) == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_index_bounds(self, xs):
        index = jain_fairness_index(xs)
        assert 1.0 / len(xs) - 1e-9 <= index <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=1e-3, max_value=1e3))
    def test_scale_invariance(self, xs, k):
        assert jain_fairness_index(xs) == pytest.approx(
            jain_fairness_index([x * k for x in xs]), rel=1e-6)


class TestRunAggregate:
    def test_mean_and_stdev(self):
        agg = RunAggregate()
        for v in (1.0, 2.0, 3.0):
            agg.add(v)
        assert agg.mean == 2.0
        assert agg.stdev == pytest.approx(1.0)
        assert agg.count == 3

    def test_empty_mean_zero(self):
        assert RunAggregate().mean == 0.0
        assert RunAggregate().stdev == 0.0


class TestMetricTable:
    def _table(self):
        table = MetricTable(["reno", "vegas"])
        for v in (50.0, 60.0):
            table.add_sample("Throughput (KB/s)", "reno", v)
        for v in (80.0, 90.0):
            table.add_sample("Throughput (KB/s)", "vegas", v)
        return table

    def test_means(self):
        table = self._table()
        assert table.mean("Throughput (KB/s)", "reno") == 55.0
        assert table.mean("Throughput (KB/s)", "vegas") == 85.0

    def test_ratio_row(self):
        table = self._table()
        ratios = table.ratio_row("Throughput (KB/s)", "reno")
        assert ratios["reno"] == pytest.approx(1.0)
        assert ratios["vegas"] == pytest.approx(85 / 55)

    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            self._table().add_sample("x", "tahoe", 1.0)

    def test_rows_preserve_insertion_order(self):
        table = MetricTable(["a"])
        table.add_sample("second?", "a", 1)
        table.add_sample("first?", "a", 1)
        assert table.rows() == ["second?", "first?"]

    def test_format_includes_ratios_and_paper(self):
        table = self._table()
        text = format_table(
            "Table X", table,
            ratios_for={"Throughput (KB/s)": "reno"},
            paper={"Throughput (KB/s)": {"reno": 58.3, "vegas": 89.4}})
        assert "Table X" in text
        assert "ratio" in text
        assert "(paper)" in text
        assert "58.30" in text
