"""Unit tests for Reno and Tahoe congestion-control policy."""

from repro.core.base import CongestionControl
from repro.core.reno import RenoCC
from repro.core.tahoe import TahoeCC
from repro.tcp import constants as C

from fakes import FakeConnection


def attached(cc_cls, **kwargs):
    conn = FakeConnection()
    cc = cc_cls(**kwargs) if isinstance(cc_cls, type) else cc_cls
    cc.attach(conn)
    return conn, cc


class TestBaseCC:
    def test_fixed_window_never_moves(self):
        conn, cc = attached(CongestionControl)
        start = cc.cwnd
        conn.send(cc)
        conn.ack(cc)
        cc.on_dup_ack(3, 0.0)
        cc.on_coarse_timeout(0.0)
        assert cc.cwnd == start

    def test_initial_window_parameter(self):
        conn = FakeConnection()
        cc = CongestionControl(initial_cwnd_segments=4)
        cc.attach(conn)
        assert cc.cwnd == 4 * conn.mss

    def test_half_window_floors_at_two_segments(self):
        conn, cc = attached(RenoCC)
        cc.cwnd = conn.mss  # tiny window
        assert cc.half_window() == 2 * conn.mss

    def test_half_window_uses_min_of_cwnd_and_peer(self):
        conn, cc = attached(RenoCC)
        cc.cwnd = 40 * conn.mss
        conn.peer_wnd = 10 * conn.mss
        assert cc.half_window() == 5 * conn.mss


class TestRenoSlowStart:
    def test_exponential_per_ack_growth(self):
        conn, cc = attached(RenoCC)
        assert cc.cwnd == conn.mss
        for _ in range(4):
            conn.send(cc)
            conn.ack(cc)
        assert cc.cwnd == 5 * conn.mss

    def test_congestion_avoidance_growth_is_per_window(self):
        conn, cc = attached(RenoCC)
        cc.ssthresh = 4 * conn.mss
        cc.cwnd = 4 * conn.mss
        # Four ACKs (one window) should add roughly one segment total.
        for _ in range(4):
            conn.send(cc)
            conn.ack(cc)
        assert 4 * conn.mss < cc.cwnd <= 5 * conn.mss + 4


class TestRenoFastRecovery:
    def _enter_recovery(self, conn, cc):
        for _ in range(10):
            conn.send(cc)
        cc.cwnd = 10 * conn.mss
        conn.first_unacked_ts = 0.0
        for count in (1, 2, 3):
            cc.on_dup_ack(count, 1.0)

    def test_third_dupack_triggers_retransmit(self):
        conn, cc = attached(RenoCC)
        self._enter_recovery(conn, cc)
        assert conn.retransmissions == ["fast"]
        assert cc.in_recovery

    def test_window_halves_plus_inflation(self):
        conn, cc = attached(RenoCC)
        self._enter_recovery(conn, cc)
        assert cc.ssthresh == 5 * conn.mss
        assert cc.cwnd == 5 * conn.mss + 3 * conn.mss

    def test_further_dupacks_inflate(self):
        conn, cc = attached(RenoCC)
        self._enter_recovery(conn, cc)
        cc.on_dup_ack(4, 1.1)
        cc.on_dup_ack(5, 1.2)
        assert cc.cwnd == 5 * conn.mss + 5 * conn.mss

    def test_recovery_ack_deflates_to_ssthresh(self):
        conn, cc = attached(RenoCC)
        self._enter_recovery(conn, cc)
        conn.ack(cc, 10 * conn.mss)
        assert not cc.in_recovery
        assert cc.cwnd == cc.ssthresh

    def test_only_one_retransmit_per_event(self):
        conn, cc = attached(RenoCC)
        self._enter_recovery(conn, cc)
        cc.on_dup_ack(4, 1.1)
        assert conn.retransmissions == ["fast"]


class TestRenoTimeout:
    def test_timeout_resets_to_one_segment(self):
        conn, cc = attached(RenoCC)
        cc.cwnd = 20 * conn.mss
        conn.snd_nxt = 20 * conn.mss
        cc.on_coarse_timeout(5.0)
        assert cc.cwnd == conn.mss
        assert cc.ssthresh == 10 * conn.mss
        assert not cc.in_recovery


class TestTahoe:
    def test_no_fast_recovery(self):
        conn, cc = attached(TahoeCC)
        cc.cwnd = 10 * conn.mss
        conn.snd_nxt = 10 * conn.mss
        conn.first_unacked_ts = 0.0
        for count in (1, 2, 3):
            cc.on_dup_ack(count, 1.0)
        assert conn.retransmissions == ["fast"]
        assert cc.cwnd == conn.mss  # back to slow start, no inflation
        assert cc.ssthresh == 5 * conn.mss

    def test_slow_start_growth(self):
        conn, cc = attached(TahoeCC)
        for _ in range(3):
            conn.send(cc)
            conn.ack(cc)
        assert cc.cwnd == 4 * conn.mss

    def test_timeout_same_as_reno(self):
        conn, cc = attached(TahoeCC)
        cc.cwnd = 8 * conn.mss
        conn.snd_nxt = 8 * conn.mss
        cc.on_coarse_timeout(1.0)
        assert cc.cwnd == conn.mss
        assert cc.ssthresh == 4 * conn.mss

    def test_cwnd_capped(self):
        conn, cc = attached(TahoeCC)
        cc.cwnd = C.MAX_CWND
        conn.send(cc)
        conn.ack(cc)
        assert cc.cwnd <= C.MAX_CWND
