"""Tests for TCP primitives: segments, buffers, RTT estimators."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.tcp import constants as C
from repro.tcp.buffers import ReassemblyBuffer, SendBuffer
from repro.tcp.rtt import CoarseRttEstimator, FineRttEstimator
from repro.tcp.segment import FLAG_ACK, FLAG_FIN, FLAG_SYN, TCPSegment


class TestSegment:
    def test_plain_data_segment(self):
        seg = TCPSegment(1, 2, seq=100, length=512, ack=50, flags=FLAG_ACK,
                         wnd=1000)
        assert seg.end_seq == 612
        assert seg.seq_consumed == 512
        assert seg.wire_size == 512 + C.HEADER_BYTES
        assert seg.has_ack and not seg.syn and not seg.fin

    def test_syn_consumes_one(self):
        seg = TCPSegment(1, 2, seq=0, length=0, flags=FLAG_SYN)
        assert seg.seq_consumed == 1
        assert seg.end_seq == 1
        assert seg.wire_size == C.HEADER_BYTES

    def test_fin_consumes_one(self):
        seg = TCPSegment(1, 2, seq=10, length=5, flags=FLAG_FIN | FLAG_ACK)
        assert seg.end_seq == 16

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            TCPSegment(1, 2, seq=0, length=-1)

    def test_flag_names(self):
        seg = TCPSegment(1, 2, 0, 0, flags=FLAG_SYN | FLAG_ACK)
        assert seg.flag_names() == "SYN|ACK"
        assert TCPSegment(1, 2, 0, 0).flag_names() == "-"


class TestSendBuffer:
    def test_write_within_capacity(self):
        buf = SendBuffer(100, start_seq=1)
        assert buf.write(60) == 60
        assert buf.write(60) == 40  # clipped
        assert buf.space == 0
        assert buf.in_buffer == 100

    def test_ack_frees_space(self):
        buf = SendBuffer(100, start_seq=1)
        buf.write(100)
        assert buf.ack_to(51) == 50
        assert buf.space == 50
        assert buf.una == 51

    def test_ack_below_una_is_noop(self):
        buf = SendBuffer(100, start_seq=1)
        buf.write(50)
        buf.ack_to(31)
        assert buf.ack_to(11) == 0
        assert buf.una == 31

    def test_ack_beyond_queued_clamped(self):
        buf = SendBuffer(100, start_seq=1)
        buf.write(10)
        assert buf.ack_to(1000) == 10

    def test_negative_write_rejected(self):
        with pytest.raises(ValueError):
            SendBuffer(10).write(-1)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            SendBuffer(0)

    def test_rebase_requires_empty(self):
        buf = SendBuffer(10, start_seq=0)
        buf.write(5)
        with pytest.raises(ConfigurationError):
            buf.rebase(100)
        buf.ack_to(5)
        buf.rebase(100)
        assert buf.una == 100 and buf.queued_end == 100

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=50))
    def test_in_buffer_never_exceeds_capacity(self, writes):
        buf = SendBuffer(64)
        total = 0
        for w in writes:
            total += buf.write(w)
            assert 0 <= buf.in_buffer <= 64
        assert buf.in_buffer == total


class TestReassemblyBuffer:
    def test_in_order_delivery(self):
        buf = ReassemblyBuffer(0)
        assert buf.add(0, 10) == 10
        assert buf.add(10, 5) == 5
        assert buf.rcv_nxt == 15
        assert not buf.has_gaps

    def test_out_of_order_held_then_drained(self):
        buf = ReassemblyBuffer(0)
        assert buf.add(10, 10) == 0
        assert buf.has_gaps
        assert buf.buffered_bytes == 10
        assert buf.add(0, 10) == 20
        assert buf.rcv_nxt == 20
        assert buf.buffered_bytes == 0

    def test_duplicate_ignored(self):
        buf = ReassemblyBuffer(0)
        buf.add(0, 10)
        assert buf.add(0, 10) == 0
        assert buf.rcv_nxt == 10

    def test_partial_overlap_trimmed(self):
        buf = ReassemblyBuffer(0)
        buf.add(0, 10)
        assert buf.add(5, 10) == 5
        assert buf.rcv_nxt == 15

    def test_interval_merging(self):
        buf = ReassemblyBuffer(0)
        buf.add(10, 5)
        buf.add(20, 5)
        buf.add(15, 5)  # bridges the two
        assert buf.intervals() == [(10, 25)]
        assert buf.add(0, 10) == 25

    def test_zero_length_ok(self):
        buf = ReassemblyBuffer(0)
        assert buf.add(0, 0) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ReassemblyBuffer(0).add(0, -1)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 8)),
                    min_size=1, max_size=60))
    def test_matches_set_oracle(self, segments):
        """Whatever the arrival order/overlap, delivery matches a
        byte-set oracle and rcv_nxt is the first missing byte."""
        buf = ReassemblyBuffer(0)
        received = set()
        delivered_total = 0
        for seq, length in segments:
            delivered_total += buf.add(seq, length)
            received |= set(range(seq, seq + length))
            expected_nxt = 0
            while expected_nxt in received:
                expected_nxt += 1
            assert buf.rcv_nxt == expected_nxt
            assert delivered_total == expected_nxt
        # Buffered bytes are exactly the received bytes above rcv_nxt.
        assert buf.buffered_bytes == sum(1 for b in received if b >= buf.rcv_nxt)


class TestCoarseRtt:
    def test_initial_rto_is_bsd_default(self):
        est = CoarseRttEstimator()
        assert est.rto_ticks == C.INITIAL_RTO_TICKS

    def test_first_sample_initialises(self):
        est = CoarseRttEstimator()
        est.update(4)
        assert est.srtt == 4
        assert est.rttvar == 2
        assert est.rto_ticks >= C.MIN_RTO_TICKS

    def test_min_rto_clamp(self):
        est = CoarseRttEstimator()
        for _ in range(50):
            est.update(0)  # sub-tick RTT
        assert est.rto_ticks == C.MIN_RTO_TICKS

    def test_max_rto_clamp(self):
        est = CoarseRttEstimator()
        est.update(1000)
        assert est.rto_ticks == C.MAX_RTO_TICKS

    def test_variance_raises_rto(self):
        stable = CoarseRttEstimator()
        jittery = CoarseRttEstimator()
        for i in range(40):
            stable.update(4)
            jittery.update(2 if i % 2 else 10)
        assert jittery.rto_ticks > stable.rto_ticks

    def test_backoff_doubles_and_clamps(self):
        est = CoarseRttEstimator()
        est.update(2)
        base = est.rto_ticks
        assert est.backed_off_rto(1) == min(C.MAX_RTO_TICKS, base * 2)
        assert est.backed_off_rto(12) == C.MAX_RTO_TICKS

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            CoarseRttEstimator().update(-1)


class TestFineRtt:
    def test_base_rtt_is_minimum(self):
        est = FineRttEstimator()
        for sample in (0.2, 0.15, 0.3, 0.18):
            est.update(sample)
        assert est.base_rtt == pytest.approx(0.15)

    def test_update_base_false_excludes(self):
        est = FineRttEstimator()
        est.update(0.01, update_base=False)
        assert est.base_rtt is None
        est.update(0.2)
        assert est.base_rtt == pytest.approx(0.2)
        assert est.samples == 2

    def test_rto_tracks_srtt_plus_var(self):
        est = FineRttEstimator()
        for _ in range(100):
            est.update(0.1)
        assert est.rto == pytest.approx(max(C.MIN_FINE_RTO, 0.1), rel=0.2)

    def test_set_base_rtt_override(self):
        est = FineRttEstimator()
        est.update(0.1)
        est.set_base_rtt(0.5)
        assert est.base_rtt == 0.5

    def test_fine_rto_floor(self):
        est = FineRttEstimator(min_rto=0.05)
        for _ in range(50):
            est.update(0.001)
        assert est.rto == 0.05

    @given(st.lists(st.floats(min_value=1e-4, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=100))
    def test_base_never_above_any_sample(self, samples):
        est = FineRttEstimator()
        for s in samples:
            est.update(s)
        assert est.base_rtt == pytest.approx(min(samples))
        assert est.rto >= est.min_rto
