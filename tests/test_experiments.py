"""Tests for the experiment drivers (one cheap run per family)."""

import pytest

from repro.experiments import defaults as DFLT
from repro.experiments.background import run_with_background
from repro.experiments.fairness_exp import run_competing_connections
from repro.experiments.figure5 import HOST_NAMES, build_figure5
from repro.experiments.internet import build_internet_path, run_internet_transfer
from repro.experiments.one_on_one import run_one_on_one
from repro.experiments.sendbuf import sendbuf_sweep
from repro.experiments.telnet_response import run_telnet_response
from repro.experiments.transfers import run_solo_transfer
from repro.units import kb


class TestFigure5Network:
    def test_structure(self):
        net = build_figure5(buffers=15)
        assert set(net.hosts) == set(HOST_NAMES)
        assert net.forward_queue.capacity == 15
        assert net.reverse_queue.capacity == 15
        assert set(net.protocols) == set(HOST_NAMES)

    def test_cross_topology_reachability(self):
        net = build_figure5()
        from repro.net.packet import Packet

        got = []
        net.hosts["Host3b"].protocol_handler = lambda p: got.append(p.uid)
        net.hosts["Host2a"].send_packet(Packet("Host2a", "Host3b", None, 100))
        net.sim.run(until=1.0)
        assert len(got) == 1

    def test_seed_changes_timer_phases(self):
        a = build_figure5(seed=1)
        b = build_figure5(seed=2)
        assert a.rng.stream("x").random() != b.rng.stream("x").random()


class TestSoloTransfers:
    def test_reno_solo_result_fields(self):
        result = run_solo_transfer("reno", size=kb(200))
        assert result.done
        assert result.cc_name == "reno"
        assert result.throughput_kbps > 0
        assert result.duration > 0

    def test_custom_factory_accepted(self):
        from repro.core.vegas import VegasCC

        result = run_solo_transfer(lambda: VegasCC(alpha=1, beta=3),
                                   size=kb(100))
        assert result.done


class TestOneOnOne:
    def test_single_run_produces_pair(self):
        result = run_one_on_one("vegas", "vegas", delay=1.0, buffers=15,
                                seed=0)
        assert result.small.done and result.large.done
        assert result.combo == "vegas/vegas"
        assert result.small.size_bytes == DFLT.SMALL_TRANSFER
        assert result.large.size_bytes == DFLT.LARGE_TRANSFER

    def test_background_variant_runs(self):
        result = run_one_on_one("reno", "vegas", delay=0.5, buffers=15,
                                seed=1, with_background=True)
        assert result.small.done and result.large.done


class TestBackgroundRuns:
    def test_background_statistics_collected(self):
        run = run_with_background("vegas", seed=3)
        assert run.transfer.done
        assert run.background_conversations > 0
        assert run.background_throughput_kbps > 0

    @pytest.mark.slow
    def test_two_way_variant_runs(self):
        run = run_with_background("reno", seed=3, two_way=True)
        assert run.transfer.done


class TestInternet:
    def test_path_structure(self):
        path = build_internet_path(seed=0)
        # 17 hops = 16 routers; load profile covers interior links.
        routers = [n for n in path.topology.nodes.values()
                   if type(n).__name__ == "Router"]
        assert len(routers) == 16
        assert len(path.load_profile) == 15
        assert any(load > 0 for load in path.load_profile)

    def test_transfer_completes_and_is_reproducible(self):
        a = run_internet_transfer("vegas-1,3", size=kb(128), seed=5)
        b = run_internet_transfer("vegas-1,3", size=kb(128), seed=5)
        assert a.done and b.done
        assert a.throughput_kbps == pytest.approx(b.throughput_kbps)
        assert a.retransmitted_kb == b.retransmitted_kb

    def test_different_seeds_differ(self):
        a = run_internet_transfer("reno", size=kb(128), seed=1)
        b = run_internet_transfer("reno", size=kb(128), seed=2)
        assert a.throughput_kbps != pytest.approx(b.throughput_kbps)


class TestSendbufSweep:
    def test_sweep_returns_each_size(self):
        out = sendbuf_sweep("vegas", sizes_kb=(5, 50))
        assert set(out) == {5, 50}
        assert all(r.done for r in out.values())

    def test_tiny_buffer_limits_throughput(self):
        out = sendbuf_sweep("vegas", sizes_kb=(5, 50))
        # 5 KB buffer cannot fill a 20 KB pipe.
        assert out[5].throughput_kbps < out[50].throughput_kbps


class TestFairnessRuns:
    def test_two_connections_share(self):
        result = run_competing_connections("vegas", 2,
                                           transfer_bytes=kb(512), seed=0)
        assert result.all_done
        assert len(result.throughputs_kbps) == 2
        assert result.fairness_index > 0.8

    def test_mixed_delays_supported(self):
        result = run_competing_connections("reno", 2,
                                           transfer_bytes=kb(512),
                                           mixed_delays=True, seed=0)
        assert result.all_done


class TestTelnetResponse:
    def test_samples_collected(self):
        result = run_telnet_response("reno", seed=0, duration=40.0)
        assert result.cc_name == "reno"
        assert len(result.samples) > 5
        assert result.mean > 0
        assert result.p95 >= result.median
