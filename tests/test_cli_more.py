"""Additional CLI command coverage (fast variants of the slow paths)."""

import pytest

from repro.cli import main


class TestMoreCommands:
    def test_table4_single_seed(self, capsys):
        assert main(["table4", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "UA->NIH" in out and "vegas-2,4" in out

    def test_table5_single_seed(self, capsys):
        assert main(["table5", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "128 KB transfers" in out
        assert "1024 KB transfers" in out

    @pytest.mark.slow
    def test_twoway_single_seed(self, capsys):
        assert main(["twoway", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "two-way" in out

    def test_figure9(self, capsys):
        assert main(["figure9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "CAM" in out

    @pytest.mark.slow
    def test_table3_single_seed(self, capsys):
        assert main(["table3", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "background CC" in out
