"""A fake connection exposing the sender-services surface that
CongestionControl implementations use, for policy unit tests."""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.flowstats import FlowStats
from repro.tcp.rtt import FineRttEstimator
from repro.trace.tracer import ConnectionTracer


class FakeConnection:
    """Scriptable stand-in for TCPConnection (CC-facing surface only)."""

    def __init__(self, mss: int = 1024, peer_wnd: int = 50 * 1024):
        self.mss = mss
        self.peer_wnd = peer_wnd
        self.snd_una = 0
        self.snd_nxt = 0
        self.now = 0.0
        self.tracer = ConnectionTracer("fake")
        self.stats = FlowStats()
        self.fine_rtt = FineRttEstimator()
        self.retransmissions: List[str] = []
        self.first_unacked_ts: Optional[float] = None

    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def retransmit_first_unacked(self, reason: str = "fast") -> int:
        self.retransmissions.append(reason)
        if reason.startswith("fine"):
            self.stats.fine_retransmits += 1
        else:
            self.stats.fast_retransmits += 1
        # A retransmission refreshes the segment's clock.
        self.first_unacked_ts = self.now
        return self.snd_una

    def first_unacked_send_time(self) -> Optional[float]:
        return self.first_unacked_ts

    # --- test scripting helpers ---------------------------------------
    def send(self, cc, length: int = None, is_retx: bool = False) -> None:
        """Simulate sending one segment and informing the CC."""
        length = length if length is not None else self.mss
        seq = self.snd_una if is_retx else self.snd_nxt
        end = seq + length
        if not is_retx:
            self.snd_nxt = end
            if self.first_unacked_ts is None:
                self.first_unacked_ts = self.now
        self.stats.bytes_sent_total += length
        self.stats.segments_sent += 1
        cc.on_segment_sent(seq, length, end, is_retx, self.now)

    def ack(self, cc, nbytes: int = None, rtt: Optional[float] = None) -> None:
        """Simulate a new cumulative ACK for *nbytes*."""
        nbytes = nbytes if nbytes is not None else self.mss
        self.snd_una += nbytes
        self.stats.app_bytes_acked += nbytes
        if rtt is not None:
            self.fine_rtt.update(rtt)
        if self.snd_una >= self.snd_nxt:
            self.first_unacked_ts = None
        cc.on_new_ack(nbytes, self.now, rtt)
