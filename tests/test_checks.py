"""Tests for the runtime invariant checker.

Two angles: clean simulations must pass every audit silently, and a
deliberately corrupted component (tampered counters, regressed
sequence numbers, out-of-policy window moves) must be caught and
reported with structured context.
"""

import pytest

from repro.checks import InvariantChecker, activate, active, checking, deactivate
from repro.core.registry import make_cc
from repro.errors import InvariantViolation, ReproError, SimulationError
from repro.net.addresses import FlowId
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.units import kb

from fakes import FakeConnection
from helpers import make_pair, run_transfer


class _Packet:
    size = 1000


class _StubBuffers:
    def __init__(self, queued_end=1 << 30, in_buffer=0, capacity=50 * 1024):
        self.queued_end = queued_end
        self.in_buffer = in_buffer
        self.capacity = capacity


class _StubReceiver:
    def __init__(self):
        self.rcv_nxt = 0
        self.rcvbuf = 50 * 1024

        class _Reasm:
            buffered_bytes = 0

        self.reasm = _Reasm()


class _StubConnection:
    """Bare sequence-space surface the checker's TCP hooks consume."""

    def __init__(self, name="A"):
        self.now = 0.0
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0
        self.flow = FlowId(name, 1, "B", 2)
        self.sendbuf = _StubBuffers()
        self.recv = _StubReceiver()
        self.cc = make_cc("reno")


class TestInvariantViolation:
    def test_structured_fields(self):
        v = InvariantViolation("queue-conservation", 1.25,
                               subject="bottleneck", detail="off by one")
        assert v.invariant == "queue-conservation"
        assert v.sim_time == 1.25
        assert "t=1.250000" in str(v)
        assert "queue-conservation" in str(v)
        assert "bottleneck" in str(v)
        assert "off by one" in str(v)

    def test_flow_context(self):
        flow = FlowId("A", 9000, "B", 9001)
        v = InvariantViolation("ack-regression", 2.0, flow=flow)
        assert v.flow == flow
        assert "A:9000->B:9001" in str(v)

    def test_is_a_simulation_error(self):
        v = InvariantViolation("x", 0.0)
        assert isinstance(v, SimulationError)
        assert isinstance(v, ReproError)


class TestRuntimeActivation:
    def test_activate_deactivate(self):
        chk = InvariantChecker()
        assert active() is None
        activate(chk)
        try:
            assert active() is chk
        finally:
            deactivate()
        assert active() is None

    def test_double_activate_rejected(self):
        with checking():
            with pytest.raises(RuntimeError):
                activate(InvariantChecker())

    def test_checking_deactivates_on_error(self):
        with pytest.raises(ValueError):
            with checking():
                raise ValueError("boom")
        assert active() is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(mode="warn")


class TestCleanRuns:
    @pytest.mark.parametrize("cc", ["reno", "tahoe", "newreno", "vegas",
                                    "vegas-1,3"])
    def test_clean_transfer_has_no_violations(self, cc):
        with checking() as chk:
            pair = make_pair()
            transfer = run_transfer(pair, kb(64), cc=make_cc(cc))
        assert transfer.done
        assert chk.violations == []
        assert chk.audits > 0

    def test_components_register_while_active(self):
        with checking() as chk:
            pair = make_pair()
            run_transfer(pair, kb(16), cc=make_cc("vegas"))
        assert pair.sim in chk._sims
        assert len(chk._channels) >= 2  # both bottleneck directions
        assert len(chk._connections) == 2

    def test_inactive_checker_costs_nothing(self):
        pair = make_pair()
        assert pair.sim.checker is None
        assert pair.forward_queue.checker is None


class TestClockMonotonicity:
    def test_backwards_clock_detected(self):
        chk = InvariantChecker(mode="collect", audit_interval=1 << 30)

        class _Sim:
            now = 5.0

        sim = _Sim()
        chk.on_event(sim)
        sim.now = 4.0
        chk.on_event(sim)
        assert [v.invariant for v in chk.violations] == ["clock-monotonicity"]

    def test_raise_mode_propagates_from_engine(self):
        # Corrupt a queue counter mid-run: the next piggybacked audit
        # must abort the simulation with the violation.
        with pytest.raises(InvariantViolation) as exc_info:
            with checking():
                pair = make_pair()

                def corrupt():
                    pair.forward_queue.enqueued += 7

                pair.sim.schedule(1.0, corrupt)
                run_transfer(pair, kb(64), cc=make_cc("reno"))
        assert exc_info.value.invariant == "queue-conservation"
        assert exc_info.value.sim_time >= 1.0


class TestStructuralAudits:
    def _checker_with_queue(self):
        chk = InvariantChecker(mode="collect")
        queue = DropTailQueue(5, name="q")
        chk.register_queue(queue)
        return chk, queue

    def test_queue_conservation_tamper(self):
        chk, queue = self._checker_with_queue()
        queue.offer(_Packet(), 0.0)
        queue.enqueued += 1
        chk.audit(1.0)
        assert [v.invariant for v in chk.violations] == ["queue-conservation"]

    def test_queue_occupancy_tamper(self):
        chk, queue = self._checker_with_queue()
        for _ in range(5):
            queue.offer(_Packet(), 0.0)
        queue.capacity = 3
        chk.audit(1.0)
        names = [v.invariant for v in chk.violations]
        assert "queue-occupancy" in names

    def test_queue_drop_accounting_tamper(self):
        chk, queue = self._checker_with_queue()
        for _ in range(7):
            queue.offer(_Packet(), 0.0)
        assert queue.dropped == 2
        queue.drops.pop()
        chk.audit(1.0)
        assert "queue-drop-accounting" in [v.invariant for v in chk.violations]

    def test_link_conservation_tamper(self):
        with checking(InvariantChecker(mode="collect")) as chk:
            pair = make_pair()
            run_transfer(pair, kb(16), cc=make_cc("reno"))
        assert chk.violations == []
        channel = pair.bottleneck.channel_from(pair.topology.router("R1"))
        channel.in_transit += 1
        chk.audit(pair.sim.now)
        assert "link-conservation" in [v.invariant for v in chk.violations]

    def test_drained_heap_detects_vanished_packets(self):
        with checking(InvariantChecker(mode="collect")) as chk:
            pair = make_pair()
            run_transfer(pair, kb(16), cc=make_cc("reno"))
        assert chk.violations == []
        channel = pair.bottleneck.channel_from(pair.topology.router("R1"))
        channel.in_transit = 2
        channel.packets_delivered -= 2  # keep the running audit happy
        chk._audit_drained(pair.sim.now)
        assert "packets-vanished" in [v.invariant for v in chk.violations]

    def test_audits_never_schedule_events(self):
        # The audit piggybacks on the event hook, so the processed
        # event count must match an unchecked run exactly.
        def run_once():
            pair = make_pair()
            run_transfer(pair, kb(32), cc=make_cc("vegas"))
            return pair.sim.events_processed

        baseline = run_once()
        with checking():
            assert run_once() == baseline


class TestSequenceSpaceHooks:
    def _collect(self):
        return InvariantChecker(mode="collect")

    def test_send_below_una(self):
        chk, conn = self._collect(), _StubConnection()
        conn.snd_una = 2000
        conn.snd_nxt = conn.snd_max = 3000
        chk.note_sent(conn, 1000, 2000)
        assert "send-below-una" in [v.invariant for v in chk.violations]

    def test_send_unqueued_data(self):
        chk, conn = self._collect(), _StubConnection()
        conn.sendbuf.queued_end = 500
        conn.snd_nxt = conn.snd_max = 1000
        chk.note_sent(conn, 0, 1000)
        assert "send-unqueued-data" in [v.invariant for v in chk.violations]

    def test_control_segments_exempt_from_queue_check(self):
        chk, conn = self._collect(), _StubConnection()
        conn.sendbuf.queued_end = 0
        conn.snd_nxt = conn.snd_max = 1
        chk.note_sent(conn, 0, 1, is_data=False)  # SYN occupies no data
        assert chk.violations == []

    def test_ack_regression(self):
        chk, conn = self._collect(), _StubConnection()
        conn.snd_una = 3000
        conn.snd_nxt = conn.snd_max = 4000
        chk.on_ack(conn, 3000)
        conn.snd_una = 2000
        chk.on_ack(conn, 2000)
        assert "ack-regression" in [v.invariant for v in chk.violations]

    def test_ack_beyond_snd_max(self):
        chk, conn = self._collect(), _StubConnection()
        conn.snd_una = conn.snd_nxt = conn.snd_max = 1000
        chk.on_ack(conn, 5000)
        assert "ack-beyond-snd-max" in [v.invariant for v in chk.violations]

    def test_sequence_space_ordering(self):
        chk, conn = self._collect(), _StubConnection()
        conn.snd_una, conn.snd_nxt, conn.snd_max = 100, 50, 200
        chk.on_ack(conn, 100)
        assert "sequence-space" in [v.invariant for v in chk.violations]

    def test_rcv_nxt_regression(self):
        chk, conn = self._collect(), _StubConnection()
        conn.recv.rcv_nxt = 500
        chk.on_segment_processed(conn)
        conn.recv.rcv_nxt = 400
        chk.on_segment_processed(conn)
        assert "rcv-nxt-regression" in [v.invariant for v in chk.violations]

    def test_delivery_of_unsent_data(self):
        chk = self._collect()
        sender = _StubConnection("A")
        receiver = _StubConnection("B")
        receiver.flow = sender.flow.reversed()
        sender.snd_nxt = sender.snd_max = 1000
        chk.note_sent(sender, 0, 1000)
        receiver.recv.rcv_nxt = 1500  # beyond anything A ever sent
        chk.on_segment_processed(receiver)
        assert "delivery-of-unsent-data" in \
            [v.invariant for v in chk.violations]


class TestCongestionWindowHooks:
    def _cc(self, name):
        fake = FakeConnection()
        cc = make_cc(name)
        cc.attach(fake)
        return cc

    def test_cwnd_must_stay_positive(self):
        chk = InvariantChecker(mode="collect")
        cc = self._cc("reno")
        chk.on_cwnd(cc, cc.cwnd, 0, 1.0)
        assert "cwnd-positive" in [v.invariant for v in chk.violations]

    def test_cwnd_bounded(self):
        from repro.tcp import constants as C

        chk = InvariantChecker(mode="collect")
        cc = self._cc("reno")
        chk.on_cwnd(cc, cc.cwnd, C.MAX_CWND * 4, 1.0)
        assert "cwnd-bounded" in [v.invariant for v in chk.violations]

    def test_vegas_additive_growth(self):
        chk = InvariantChecker(mode="collect")
        cc = self._cc("vegas")
        mss = cc.conn.mss
        chk.on_cwnd(cc, 2 * mss, 3 * mss, 1.0)  # +1 MSS: fine
        assert chk.violations == []
        chk.on_cwnd(cc, 2 * mss, 5 * mss, 1.0)  # +3 MSS: never
        assert "vegas-additive-growth" in \
            [v.invariant for v in chk.violations]

    def test_reno_may_jump_in_slow_start(self):
        # The additive-growth rule is Vegas-specific; Reno's recovery
        # deflation/inflation legitimately moves in bigger steps.
        chk = InvariantChecker(mode="collect")
        cc = self._cc("reno")
        mss = cc.conn.mss
        chk.on_cwnd(cc, 2 * mss, 8 * mss, 1.0)
        assert chk.violations == []

    def test_reno_single_halving(self):
        chk = InvariantChecker(mode="collect")
        cc = self._cc("reno")
        cc.in_recovery = True
        chk.on_ssthresh(cc, 8192, 4096, 1.0)
        assert "reno-single-halving" in [v.invariant for v in chk.violations]

    def test_halving_outside_recovery_is_fine(self):
        chk = InvariantChecker(mode="collect")
        cc = self._cc("reno")
        cc.in_recovery = False
        chk.on_ssthresh(cc, 8192, 4096, 1.0)
        assert chk.violations == []

    def test_ssthresh_positive(self):
        chk = InvariantChecker(mode="collect")
        cc = self._cc("reno")
        chk.on_ssthresh(cc, 8192, 0, 1.0)
        assert "ssthresh-positive" in [v.invariant for v in chk.violations]

    def test_cam_decision_consistency(self):
        chk = InvariantChecker(mode="collect")
        cc = self._cc("vegas")
        alpha, beta = cc.alpha, cc.beta
        mid = (alpha + beta) / 2.0
        chk.on_cam_decision(cc, alpha - 0.5, 1, 1.0)   # increase: ok
        chk.on_cam_decision(cc, beta + 0.5, -1, 1.0)   # decrease: ok
        chk.on_cam_decision(cc, mid, 0, 1.0)           # hold: ok
        assert chk.violations == []
        chk.on_cam_decision(cc, beta + 0.5, 1, 1.0)    # grow over beta
        chk.on_cam_decision(cc, alpha - 0.5, -1, 1.0)  # shrink under alpha
        chk.on_cam_decision(cc, beta + 0.5, 0, 1.0)    # hold out of band
        chk.on_cam_decision(cc, -0.25, 0, 1.0)         # negative Diff
        names = [v.invariant for v in chk.violations]
        assert "vegas-cam-alpha" in names
        assert "vegas-cam-beta" in names
        assert "vegas-cam-hold" in names
        assert "vegas-diff-nonnegative" in names


class TestCollectModeAndReport:
    def test_collect_mode_accumulates(self):
        chk = InvariantChecker(mode="collect")

        class _Sim:
            now = 5.0

        sim = _Sim()
        chk.on_event(sim)
        sim.now = 4.0
        chk.on_event(sim)
        sim.now = 3.0
        chk.on_event(sim)
        assert len(chk.violations) == 2  # no raise, both recorded

    def test_report_is_json_serialisable(self):
        import json

        chk = InvariantChecker(mode="collect")
        conn = _StubConnection()
        conn.snd_una = conn.snd_nxt = conn.snd_max = 1000
        chk.on_ack(conn, 5000)
        records = chk.report()
        assert len(records) == 1
        record = json.loads(json.dumps(records))[0]
        assert record["invariant"] == "ack-beyond-snd-max"
        assert record["flow"] == "A:1->B:2"
        assert record["sim_time"] == 0.0

    def test_engine_run_end_triggers_final_audit(self):
        with checking() as chk:
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run()
        assert chk.audits >= 1
