"""Tests for the rate sampler and the convergence experiments."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.convergence import run_join_scenario, run_leave_scenario
from repro.metrics.sampler import RateSampler
from repro.sim.engine import Simulator


class TestRateSampler:
    def test_constant_rate_measured(self):
        sim = Simulator()
        state = {"bytes": 0.0}

        def feed():
            state["bytes"] += 100.0
            if sim.now < 10.0:
                sim.schedule(0.1, feed)

        sampler = RateSampler(sim, lambda: state["bytes"], interval=0.1)
        sampler.start()
        sim.schedule(0.0, feed)
        sim.run(until=5.0)
        sampler.stop()
        assert sampler.mean_rate(1.0) == pytest.approx(1000.0, rel=0.05)

    def test_no_samples_before_two_ticks(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: 0.0, interval=1.0)
        sampler.start()
        sim.run(until=0.5)
        assert sampler.samples == []

    def test_running_average_smooths(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: 0.0)
        sampler.samples = [(0.1, 0.0), (0.2, 300.0), (0.3, 0.0)]
        smooth = sampler.running_average(window=3)
        assert smooth[-1][1] == pytest.approx(100.0)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: sim.now * 100, interval=0.1)
        sampler.start()
        sim.run(until=1.0)
        count = len(sampler.samples)
        sampler.stop()
        sim.run(until=2.0)
        assert len(sampler.samples) == count

    def test_restart_does_not_fork_tick_chains(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: sim.now * 1000.0, interval=0.1)
        sampler.start()
        sim.run(until=1.0)
        sampler.stop()
        sampler.start()
        sim.run(until=3.0)
        sampler.stop()
        # One tick chain: consecutive samples land exactly one interval
        # apart.  stop() used to leave the pending tick scheduled, so a
        # stop()/start() cycle ran two interleaved chains and the series
        # double-sampled forever after.
        times = [t for t, _ in sampler.samples if t > 1.0]
        assert len(times) >= 10
        for earlier, later in zip(times, times[1:]):
            assert later - earlier == pytest.approx(sampler.interval)

    def test_restart_resets_rate_baseline(self):
        sim = Simulator()
        state = {"bytes": 0.0}
        sampler = RateSampler(sim, lambda: state["bytes"], interval=0.1)
        sampler.start()
        sim.run(until=0.55)
        sampler.stop()
        state["bytes"] += 1e9  # burst while the sampler is off
        sampler.start()
        sim.run(until=1.0)
        # The off-period burst must not appear as a rate spike: the
        # restart re-baselines _last_value before its first sample.
        assert all(rate == 0.0 for t, rate in sampler.samples if t > 0.55)

    def test_repeated_stop_start_is_idempotent(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: sim.now, interval=0.1)
        sampler.stop()           # stop before start: no-op
        sampler.start()
        sampler.start()          # double start: no second chain
        sim.run(until=1.0)
        sampler.stop()
        sampler.stop()           # double stop: no error
        count = len(sampler.samples)
        sim.run(until=2.0)
        assert len(sampler.samples) == count

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            RateSampler(sim, lambda: 0.0, interval=0.0)
        with pytest.raises(ConfigurationError):
            RateSampler(sim, lambda: 0.0).running_average(0)

    def test_mean_rate_empty_window(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: 0.0)
        assert sampler.mean_rate(5.0, 6.0) == 0.0


class TestConvergence:
    def test_vegas_shares_more_equally_on_join(self):
        reno = run_join_scenario("reno", seed=0)
        vegas = run_join_scenario("vegas", seed=0)
        assert vegas.share_balance > reno.share_balance
        # Both flows make real progress while sharing.
        assert vegas.shared_rate_a > 30 and vegas.shared_rate_b > 30

    def test_vegas_absorbs_freed_bandwidth_quickly(self):
        vegas = run_leave_scenario("vegas", seed=0)
        # Within 3 s of the leaver finishing, the survivor has ramped
        # well past its shared rate...
        assert vegas.takeover_rate > 1.3 * vegas.shared_rate
        # ...and settles near the full link.
        assert vegas.settled_rate > 150.0

    def test_vegas_takeover_beats_reno(self):
        reno = run_leave_scenario("reno", seed=0)
        vegas = run_leave_scenario("vegas", seed=0)
        assert vegas.takeover_rate > reno.takeover_rate
