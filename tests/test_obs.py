"""Tests for the telemetry subsystem (repro.obs).

The two load-bearing contracts:

* **bit-identity** — arming the gauge sampler changes nothing about a
  run: ``events_processed`` and every metric are identical with
  telemetry on and off, because the sampler only reads state from the
  engine loop and never schedules an event;
* **robustness** — the JSONL sink never raises into instrumented code,
  and the report CLI turns malformed telemetry into exit code 2 (the
  CI smoke gate).
"""

import json

import pytest

from repro.errors import ReproError
from repro.harness import Cell
from repro.harness.registry import run_cell
from repro.harness.runner import run_cells
from repro.obs import (
    TELEMETRY_SCHEMA,
    GaugeSampler,
    TelemetrySink,
    load_events,
    observing,
    render_report,
)
from repro.obs import runtime as obs_runtime
from repro.obs import report as report_mod

from helpers import make_pair, run_transfer

#: A sub-second real cell for harness-level telemetry tests.
CHEAP = Cell.make("sendbuf", cc="reno", size_kb=5, seed=0)


class TestTelemetrySink:
    def test_writes_jsonl_with_schema_on_first_event(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetrySink(path, run_id="r1") as sink:
            sink.emit("alpha", value=1)
            sink.emit("beta", value=2)
        events = load_events(path)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["schema"] == TELEMETRY_SCHEMA
        assert "schema" not in events[1]
        assert all(e["run_id"] == "r1" for e in events)
        assert all("ts" in e for e in events)

    def test_span_emits_paired_events_with_duration(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetrySink(path) as sink:
            with sink.span("cell", cell="k"):
                pass
        start, end = load_events(path)
        assert start["event"] == "cell.start"
        assert end["event"] == "cell.end"
        assert start["span_id"] == end["span_id"]
        assert end["ok"] is True
        assert end["duration_s"] >= 0.0

    def test_span_marks_failure_and_reraises(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetrySink(path) as sink:
            with pytest.raises(ValueError):
                with sink.span("cell", cell="k"):
                    raise ValueError("boom")
        _, end = load_events(path)
        assert end["ok"] is False

    def test_appends_across_sinks_like_forked_workers(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetrySink(path, run_id="parent") as sink:
            sink.emit("one")
        with TelemetrySink(path, run_id="worker") as sink:
            sink.emit("two")
        assert [e["run_id"] for e in load_events(path)] == ["parent", "worker"]

    def test_unwritable_path_disables_instead_of_raising(self, tmp_path):
        sink = TelemetrySink(str(tmp_path / "no" / "such" / "dir" / "t.jsonl"))
        assert not sink.enabled
        sink.emit("anything")          # must not raise
        assert sink.events_written == 0
        assert sink.last_error

    def test_load_events_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "ok", "ts": 1}\nnot json\n')
        with pytest.raises(ReproError, match="malformed"):
            load_events(str(path))

    def test_load_events_rejects_records_without_event(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1}\n')
        with pytest.raises(ReproError, match="no 'event' field"):
            load_events(str(path))

    def test_load_events_rejects_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_events(str(tmp_path / "absent.jsonl"))


class TestRuntime:
    def test_activate_is_exclusive(self):
        sampler = object()
        obs_runtime.activate(sampler)
        try:
            assert obs_runtime.active() is sampler
            with pytest.raises(RuntimeError):
                obs_runtime.activate(object())
        finally:
            obs_runtime.deactivate()
        assert obs_runtime.active() is None

    def test_observing_builds_and_closes_own_sink(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with observing(path=path) as sampler:
            assert obs_runtime.active() is sampler
            sampler.sink.emit("inside")
        assert obs_runtime.active() is None
        assert not sampler.sink.enabled   # closed on exit
        assert [e["event"] for e in load_events(path)] == ["inside"]

    def test_observing_requires_sampler_or_path(self):
        with pytest.raises(ValueError):
            with observing():
                pass  # pragma: no cover


class TestGauges:
    def _transfer(self, nbytes=30 * 1024):
        pair = make_pair()
        run_transfer(pair, nbytes)
        return pair.sim

    def test_gauges_emitted_with_connection_and_queue_state(self, tmp_path):
        path = str(tmp_path / "g.jsonl")
        with observing(path=path, sample_every=256) as sampler:
            self._transfer()
        assert sampler.samples_taken > 1
        gauges = [e for e in load_events(path) if e["event"] == "gauge"]
        assert gauges[-1]["final"] is True
        assert gauges[-1]["events_processed"] > 0
        flows = {c["flow"] for g in gauges for c in g["connections"]}
        assert flows                      # both endpoints registered
        names = {q["name"] for g in gauges for q in g["queues"]}
        assert any("bottleneck" in n or "lan" in n for n in names)
        for gauge in gauges:
            for conn in gauge["connections"]:
                assert conn["cwnd"] > 0
                assert conn["flight"] >= 0

    def test_events_processed_bit_identical_with_gauges_armed(self, tmp_path):
        baseline = self._transfer()
        with observing(path=str(tmp_path / "g.jsonl"), sample_every=64):
            armed = self._transfer()
        assert armed.events_processed == baseline.events_processed

    def test_cell_key_stamped_on_gauges(self, tmp_path):
        path = str(tmp_path / "g.jsonl")
        sink = TelemetrySink(path)
        sampler = GaugeSampler(sink, sample_every=512, cell="exp/x=1")
        obs_runtime.activate(sampler)
        try:
            self._transfer()
        finally:
            obs_runtime.deactivate()
            sink.close()
        gauges = [e for e in load_events(path) if e["event"] == "gauge"]
        assert gauges and all(g["cell"] == "exp/x=1" for g in gauges)


class TestHarnessTelemetry:
    def test_run_cell_metrics_identical_with_telemetry(self, tmp_path):
        plain = run_cell(CHEAP)
        traced = run_cell(CHEAP, telemetry=str(tmp_path / "t.jsonl"))
        assert traced == plain            # includes events_processed

    def test_run_cells_writes_sweep_cell_and_cache_events(self, tmp_path):
        from repro.harness import ResultCache

        path = str(tmp_path / "t.jsonl")
        cache = ResultCache(str(tmp_path / "cache"), "deadbeef" * 8)
        run_cells([CHEAP], jobs=1, cache=cache, telemetry=path)
        run_cells([CHEAP], jobs=1, cache=cache, telemetry=path)
        events = [e["event"] for e in load_events(path)]
        assert events.count("sweep.start") == 2
        assert events.count("sweep.end") == 2
        assert events.count("cell.start") == 1   # second sweep was cached
        assert events.count("cell.end") == 1
        assert events.count("cache.hit") == 1
        assert events.count("gauge") >= 1

    def test_supervised_run_appends_cell_span(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        report = run_cells([CHEAP], jobs=1, timeout_s=60.0, telemetry=path)
        assert report.ok
        events = [e["event"] for e in load_events(path)]
        assert "cell.start" in events and "cell.end" in events


class TestReport:
    def _doc(self):
        return {
            "schema_version": "repro-harness/v2",
            "mode": "quick",
            "src_hash": "f" * 64,
            "run": {"jobs": 2, "cache_hits": 1, "cache_misses": 1,
                    "cells": 2, "failed": 1, "elapsed_s": 3.0,
                    "cell_wall_clock_s": 2.5},
            "cells": [
                {"key": "table2/proto=reno/seed=0", "experiment": "table2",
                 "params": {"proto": "reno", "seed": 0},
                 "metrics": {"throughput_kbps": 60.0, "retransmit_kb": 40.0,
                             "events_processed": 1000},
                 "wall_clock_s": 1.5, "cached": False},
                {"key": "table2/proto=vegas-1,3/seed=0",
                 "experiment": "table2",
                 "params": {"proto": "vegas-1,3", "seed": 0},
                 "metrics": {"throughput_kbps": 90.0, "retransmit_kb": 10.0,
                             "events_processed": 900},
                 "wall_clock_s": 1.0, "cached": True},
            ],
            "failures": [
                {"key": "table4/proto=reno/seed=1", "experiment": "table4",
                 "kind": "timeout", "message": "exceeded 120s",
                 "attempts": 2, "wall_clock_s": 240.0},
            ],
        }

    def test_render_covers_headline_timings_and_failures(self):
        text = render_report(self._doc())
        assert "Per-experiment timings" in text
        assert "Vegas vs Reno" in text
        assert "throughput_kbps" in text
        assert "1.50x" in text            # 90 / 60
        assert "timeout: 1" in text
        assert "50% hit ratio" in text

    def test_zero_reference_headline_renders_na_not_infinity(self):
        # A 0.0 reno reference used to emit float("inf"), which
        # json.dumps writes as non-compliant `Infinity` in artifacts.
        doc = self._doc()
        doc["cells"][0]["metrics"]["throughput_kbps"] = 0.0
        text = render_report(doc)
        assert "n/a" in text
        assert "inf" not in text.lower()

    def test_render_includes_telemetry_sections(self):
        events = [
            {"event": "cell.start", "span_id": "a:1", "ts": 1.0},
            {"event": "cell.end", "span_id": "a:1", "ts": 2.0,
             "ok": True, "duration_s": 1.0},
            {"event": "gauge", "ts": 1.5, "events_per_sec": 100.0,
             "queues": [{"name": "q0", "depth": 3, "drops": 2,
                         "max_depth": 7}]},
        ]
        text = render_report(self._doc(), events=events)
        assert "Span durations" in text
        assert "peak depth 7" in text and "2 drops" in text

    def test_main_renders_real_artifact(self, tmp_path, capsys):
        from repro.harness.artifacts import write_document

        doc_path = str(tmp_path / "r.json")
        write_document(doc_path, self._doc())
        tel = tmp_path / "t.jsonl"
        tel.write_text(json.dumps({"event": "gauge", "ts": 1.0}) + "\n")
        assert report_mod.main([doc_path, "--telemetry", str(tel)]) == 0
        assert "# repro run report" in capsys.readouterr().out

    def test_main_exits_2_on_schema_errors(self, tmp_path, capsys):
        from repro.harness.artifacts import write_document

        doc_path = str(tmp_path / "r.json")
        write_document(doc_path, self._doc())
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert report_mod.main([doc_path, "--telemetry", str(bad)]) == 2
        assert report_mod.main([str(tmp_path / "absent.json")]) == 2

    def test_main_writes_out_file(self, tmp_path):
        from repro.harness.artifacts import write_document

        doc_path = str(tmp_path / "r.json")
        write_document(doc_path, self._doc())
        out = tmp_path / "report.md"
        assert report_mod.main([doc_path, "--out", str(out)]) == 0
        assert out.read_text().startswith("# repro run report")


class TestCliIntegration:
    def test_report_subcommand_via_cli(self, tmp_path, capsys):
        from repro import cli
        from repro.harness.artifacts import write_document

        doc_path = str(tmp_path / "r.json")
        write_document(doc_path, TestReport()._doc())
        assert cli.main(["report", doc_path, "--top", "2"]) == 0
        assert "repro run report" in capsys.readouterr().out

    def test_check_gate_event_with_telemetry(self, tmp_path, capsys):
        from repro.harness import check
        from repro.harness.artifacts import write_document

        doc = TestReport()._doc()
        doc["failures"] = []
        doc_path = str(tmp_path / "r.json")
        write_document(doc_path, doc)
        tel = str(tmp_path / "t.jsonl")
        code = check.main([doc_path, doc_path, "--telemetry", tel])
        assert code == 0
        gates = [e for e in load_events(tel) if e["event"] == "gate"]
        assert len(gates) == 1
        assert gates[0]["exit_code"] == 0
        assert gates[0]["quarantined"] == 0
