"""Tests for the §3.2 prior delay-based schemes: DUAL, CARD, Tri-S."""

import pytest

from repro.core.card import CardCC
from repro.core.dual import DualCC
from repro.core.registry import available, cc_factory, make_cc, register
from repro.core.reno import RenoCC
from repro.core.tris import TriSCC
from repro.errors import ConfigurationError

from fakes import FakeConnection
from helpers import make_pair, run_transfer


def attached(cc_cls, **kwargs):
    conn = FakeConnection()
    cc = cc_cls(**kwargs)
    cc.attach(conn)
    return conn, cc


def pump_rtt(conn, cc, rtt, rounds=1):
    """Drive one full window through: send cwnd worth, ack it back."""
    for _ in range(rounds):
        segments = max(1, cc.cwnd // conn.mss)
        for _ in range(segments):
            conn.send(cc)
        conn.now += rtt
        for _ in range(segments):
            conn.ack(cc, conn.mss, rtt=rtt)


class TestDual:
    def test_decreases_when_rtt_above_midpoint(self):
        conn, cc = attached(DualCC)
        cc.ssthresh = 4 * conn.mss  # skip slow start quickly
        # Establish min=0.1 and max=0.3; then samples above 0.2
        # (the midpoint) must trigger the 1/8 decrease every 2 RTTs.
        pump_rtt(conn, cc, 0.1, rounds=2)
        pump_rtt(conn, cc, 0.3, rounds=2)
        before = cc.cwnd
        pump_rtt(conn, cc, 0.29, rounds=4)
        assert cc.delay_decreases >= 1
        assert cc.cwnd < before + 4 * conn.mss  # growth was counteracted

    def test_no_decrease_below_midpoint(self):
        conn, cc = attached(DualCC)
        pump_rtt(conn, cc, 0.1, rounds=2)
        pump_rtt(conn, cc, 0.3, rounds=2)
        decreases = cc.delay_decreases
        pump_rtt(conn, cc, 0.11, rounds=4)
        assert cc.delay_decreases == decreases

    def test_inherits_reno_recovery(self):
        conn, cc = attached(DualCC)
        cc.cwnd = 10 * conn.mss
        for _ in range(10):
            conn.send(cc)
        conn.first_unacked_ts = 0.0
        for count in (1, 2, 3):
            cc.on_dup_ack(count, 1.0)
        assert conn.retransmissions == ["fast"]
        assert cc.in_recovery


class TestCard:
    def test_oscillates_around_operating_point(self):
        """CARD adjusts every 2 RTTs and never sits still (the paper:
        'it oscillates around its optimal point')."""
        conn, cc = attached(CardCC)
        cc.ssthresh = 2 * conn.mss
        cc.cwnd = 4 * conn.mss
        changes = []
        last = cc.cwnd
        for round_index in range(12):
            pump_rtt(conn, cc, 0.1 + 0.01 * (round_index % 3))
            if cc.cwnd != last:
                changes.append(cc.cwnd - last)
                last = cc.cwnd
        assert cc.gradient_increases + cc.gradient_decreases >= 3
        assert changes  # the window moved

    def test_positive_gradient_decreases(self):
        conn, cc = attached(CardCC)
        cc.ssthresh = 2 * conn.mss
        cc.cwnd = 8 * conn.mss
        # Window up + RTT up => decrease by 1/8.
        pump_rtt(conn, cc, 0.10, rounds=2)  # primes prev (W, rtt)
        grew = cc.cwnd + conn.mss
        cc.cwnd = grew
        pump_rtt(conn, cc, 0.20, rounds=2)
        assert cc.gradient_decreases >= 1

    def test_reno_growth_suppressed_in_avoidance(self):
        conn, cc = attached(CardCC)
        cc.ssthresh = 2 * conn.mss
        cc.cwnd = 4 * conn.mss
        conn.send(cc)
        conn.ack(cc, conn.mss, rtt=0.1)  # single ack, no epoch boundary
        assert cc.cwnd == 4 * conn.mss


class TestTriS:
    def test_flat_throughput_slope_decreases(self):
        conn, cc = attached(TriSCC)
        cc.ssthresh = 2 * conn.mss
        cc.cwnd = 6 * conn.mss
        # RTT grows proportionally to the window: throughput flat, so
        # the slope test must eventually shrink the window.
        for w in range(6, 14):
            pump_rtt(conn, cc, 0.02 * w)
        assert cc.slope_decreases >= 1

    def test_growing_throughput_increases(self):
        conn, cc = attached(TriSCC)
        cc.ssthresh = 2 * conn.mss
        cc.cwnd = 4 * conn.mss
        for _ in range(6):
            pump_rtt(conn, cc, 0.1)  # fixed RTT: more window, more rate
        assert cc.slope_increases >= 1
        assert cc.cwnd > 4 * conn.mss

    def test_base_throughput_recorded(self):
        conn, cc = attached(TriSCC)
        # The first epoch only arms the marker; the second completes it.
        pump_rtt(conn, cc, 0.1, rounds=3)
        assert cc.base_throughput is not None
        assert cc.base_throughput > 0


class TestSchemesEndToEnd:
    @pytest.mark.parametrize("cc_cls", [DualCC, CardCC, TriSCC])
    def test_completes_transfer_on_figure5_network(self, cc_cls):
        pair = make_pair()
        transfer = run_transfer(pair, 200 * 1024, cc=cc_cls())
        assert transfer.done
        assert transfer.conn.stats.app_bytes_acked == 200 * 1024


class TestRegistry:
    def test_all_schemes_registered(self):
        names = available()
        for expected in ("reno", "tahoe", "vegas", "vegas-1,3", "vegas-2,4",
                         "dual", "card", "tri-s", "fixed"):
            assert expected in names

    def test_make_cc_fresh_instances(self):
        assert make_cc("vegas") is not make_cc("vegas")

    def test_vegas_variants_configured(self):
        v13 = make_cc("vegas-1,3")
        v24 = make_cc("vegas-2,4")
        assert (v13.alpha, v13.beta) == (1.0, 3.0)
        assert (v24.alpha, v24.beta) == (2.0, 4.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            cc_factory("cubic")

    def test_register_custom(self):
        register("test-custom", lambda: RenoCC(initial_cwnd_segments=2))
        cc = make_cc("test-custom")
        assert isinstance(cc, RenoCC)
