"""Tests for selective acknowledgements: scoreboard, wire, recovery."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core.registry import make_cc
from repro.core.sack import SackVegasCC
from repro.tcp.sack import SackScoreboard
from repro.tcp.segment import FLAG_ACK, MAX_SACK_BLOCKS, TCPSegment

from helpers import make_pair


class TestScoreboard:
    def test_add_and_merge(self):
        board = SackScoreboard()
        board.add(10, 20)
        board.add(30, 40)
        board.add(20, 30)  # bridges
        assert board.blocks() == [(10, 40)]
        assert board.sacked_bytes() == 30

    def test_is_sacked(self):
        board = SackScoreboard()
        board.add(10, 20)
        assert board.is_sacked(10)
        assert board.is_sacked(19)
        assert not board.is_sacked(20)
        assert not board.is_sacked(5)

    def test_empty_add_ignored(self):
        board = SackScoreboard()
        board.add(5, 5)
        assert not board

    def test_advance_trims(self):
        board = SackScoreboard()
        board.add(10, 30)
        board.advance_to(20)
        assert board.blocks() == [(20, 30)]
        board.advance_to(30)
        assert not board

    def test_next_hole_basics(self):
        board = SackScoreboard()
        board.add(20, 30)
        board.add(40, 50)
        # Hole before the first block.
        assert board.next_hole(10, mss=10) == (10, 10)
        # Hole between blocks.
        assert board.next_hole(30, mss=10) == (30, 10)
        assert board.next_hole(25, mss=10) == (30, 10)
        # No hole above the highest SACKed byte.
        assert board.next_hole(50, mss=10) is None

    def test_next_hole_clamps_to_gap(self):
        board = SackScoreboard()
        board.add(12, 20)
        assert board.next_hole(10, mss=10) == (10, 2)


class TestScoreboardReordering:
    """Block coalescing must be insensitive to arrival order — exactly
    what a reordering path produces: SACK blocks for later segments
    reported before earlier ones, duplicates, and partial overlaps."""

    SEGMENTS = [(10, 20), (20, 30), (40, 50), (50, 60), (80, 90)]

    def _board_with(self, order):
        board = SackScoreboard()
        for start, end in order:
            board.add(start, end)
        return board

    def test_order_independent_canonical_form(self):
        expected = self._board_with(self.SEGMENTS).blocks()
        for perm in itertools.permutations(self.SEGMENTS):
            assert self._board_with(perm).blocks() == expected

    def test_touching_blocks_coalesce(self):
        board = self._board_with([(20, 30), (10, 20)])
        assert board.blocks() == [(10, 30)]
        assert board.sacked_bytes() == 20

    def test_duplicate_reports_idempotent(self):
        # A retransmitted SACK option re-reports old blocks verbatim.
        board = self._board_with(self.SEGMENTS + self.SEGMENTS)
        assert board.blocks() == self._board_with(self.SEGMENTS).blocks()

    def test_contained_block_absorbed(self):
        board = self._board_with([(10, 60), (20, 30)])
        assert board.blocks() == [(10, 60)]

    def test_partial_overlap_extends(self):
        board = self._board_with([(10, 30), (25, 45)])
        assert board.blocks() == [(10, 45)]

    def test_bridge_across_many_blocks(self):
        # One late block can stitch several earlier islands together.
        board = self._board_with([(10, 20), (30, 40), (50, 60), (15, 55)])
        assert board.blocks() == [(10, 60)]

    def test_next_hole_after_reordered_adds(self):
        board = self._board_with([(50, 60), (20, 30)])
        assert board.next_hole(10, mss=10) == (10, 10)
        assert board.next_hole(30, mss=100) == (30, 20)
        board.add(30, 50)  # the hole fills in late
        assert board.next_hole(10, mss=10) == (10, 10)
        assert board.next_hole(20, mss=10) is None

    def test_advance_then_late_block(self):
        # Blocks at/below the new cumulative point are dropped even
        # when the report arrives after the ACK advanced.
        board = self._board_with([(10, 20), (40, 50)])
        board.advance_to(30)
        board.add(15, 25)  # stale report, fully below snd_una
        board.advance_to(30)
        assert board.blocks() == [(40, 50)]

    def test_no_holes_when_empty(self):
        assert SackScoreboard().next_hole(0, mss=10) is None

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 20)),
                    max_size=40))
    def test_blocks_always_disjoint_sorted(self, adds):
        board = SackScoreboard()
        for start, length in adds:
            board.add(start, start + length)
        blocks = board.blocks()
        for (s1, e1), (s2, e2) in zip(blocks, blocks[1:]):
            assert e1 < s2  # disjoint with a real gap
        assert all(s < e for s, e in blocks)

    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 10)),
                    min_size=1, max_size=30),
           st.integers(0, 80))
    def test_next_hole_is_never_sacked(self, adds, from_seq):
        board = SackScoreboard()
        for start, length in adds:
            board.add(start, start + length)
        hole = board.next_hole(from_seq, mss=5)
        if hole is not None:
            seq, length = hole
            assert length > 0
            assert not board.is_sacked(seq)
            assert seq >= from_seq


class TestSegmentSackOption:
    def test_blocks_carried_and_charged(self):
        seg = TCPSegment(1, 2, 0, 0, flags=FLAG_ACK,
                         sack=((10, 20), (30, 40)))
        assert seg.sack == ((10, 20), (30, 40))
        assert seg.wire_size == 40 + 16

    def test_block_limit_enforced(self):
        with pytest.raises(ValueError):
            TCPSegment(1, 2, 0, 0, sack=tuple((i, i + 1) for i in
                                              range(MAX_SACK_BLOCKS + 1)))


def _scattered_loss_run(cc_name, sack, drops=(5, 9, 13, 17)):
    from repro.apps.bulk import BulkSink, BulkTransfer

    pair = make_pair(queue_capacity=30)
    BulkSink(pair.proto_b, 9000, sack=sack)
    transfer = BulkTransfer(pair.proto_a, "B", 9000, 256 * 1024,
                            cc=make_cc(cc_name), sack=sack)
    queue = pair.forward_queue
    original = queue.offer
    state = {"n": 0}
    dropset = set(drops)

    def lossy(packet, now):
        if now > 0.8 and packet.size > 500:
            state["n"] += 1
            if state["n"] in dropset:
                return False
        return original(packet, now)

    queue.offer = lossy
    pair.sim.run(until=120.0)
    assert transfer.done
    return transfer


class TestSackRecovery:
    def test_receiver_reports_blocks(self):
        pair = make_pair(queue_capacity=30)
        pair.proto_b.listen(9000, sack=True)
        conn = pair.proto_a.connect("B", 9000, sack=True)
        pair.sim.run(until=2.0)
        # Craft an out-of-order arrival and watch the ACK carry SACK.
        server = pair.proto_b.connection_list()[0]
        server.recv.reasm.add(2048, 1024)
        blocks = server._sack_blocks()
        assert blocks == ((2048, 3072),)

    def test_sack_reno_avoids_timeout_on_scattered_losses(self):
        plain = _scattered_loss_run("reno", sack=False)
        sacked = _scattered_loss_run("reno-sack", sack=True)
        assert plain.conn.stats.coarse_timeouts >= 1
        assert sacked.conn.stats.coarse_timeouts == 0
        assert (sacked.conn.stats.transfer_seconds
                < plain.conn.stats.transfer_seconds)

    def test_sack_retransmits_each_hole_once(self):
        sacked = _scattered_loss_run("reno-sack", sack=True)
        # Four drops, four (or five, counting a stray snd_una resend)
        # retransmitted segments — no duplicate hole repairs.
        assert sacked.conn.stats.retransmit_segments <= 6

    def test_vegas_sack_tandem(self):
        plain = _scattered_loss_run("vegas", sack=False)
        tandem = _scattered_loss_run("vegas-sack", sack=True)
        assert tandem.conn.stats.coarse_timeouts == 0
        assert (tandem.conn.stats.transfer_seconds
                <= plain.conn.stats.transfer_seconds)
        assert isinstance(tandem.conn.cc, SackVegasCC)
        assert tandem.conn.cc.hole_retransmits >= 1

    def test_sack_disabled_scoreboard_stays_empty(self):
        transfer = _scattered_loss_run("reno", sack=False)
        assert not transfer.conn.sack_board

    def test_clean_transfer_identical_with_sack(self):
        """With no loss, SACK changes nothing."""
        from repro.apps.bulk import BulkSink, BulkTransfer

        results = []
        for sack, name in ((False, "vegas"), (True, "vegas-sack")):
            pair = make_pair(queue_capacity=30)
            BulkSink(pair.proto_b, 9000, sack=sack)
            transfer = BulkTransfer(pair.proto_a, "B", 9000, 128 * 1024,
                                    cc=make_cc(name), sack=sack)
            pair.sim.run(until=60.0)
            assert transfer.done
            results.append(transfer.conn.stats.throughput_kbps())
        assert results[0] == pytest.approx(results[1], rel=0.01)
