"""Unit tests for the Vegas congestion-control policy (§3 techniques)."""

import pytest

from repro.core.vegas import LINEAR, SLOW_START, VegasCC
from repro.trace.records import Kind

from fakes import FakeConnection


def attached(**kwargs):
    conn = FakeConnection()
    cc = VegasCC(**kwargs)
    cc.attach(conn)
    return conn, cc


def settle_fine_rto(conn, value=0.1):
    """Seed the fine estimator so rto ≈ value + 4*(value/2)."""
    conn.fine_rtt.update(value)


class TestConstruction:
    def test_requires_alpha_below_beta(self):
        with pytest.raises(ValueError):
            VegasCC(alpha=3, beta=3)

    def test_starts_in_slow_start(self):
        conn, cc = attached()
        assert cc.mode == SLOW_START
        assert cc.ss_grow

    def test_threshold_variants(self):
        cc13 = VegasCC(alpha=1, beta=3)
        cc24 = VegasCC(alpha=2, beta=4)
        assert (cc13.alpha, cc13.beta) == (1, 3)
        assert (cc24.alpha, cc24.beta) == (2, 4)


class TestFineRetransmit:
    """Technique 1 (§3.1): check-on-duplicate-ACK retransmission."""

    def test_stale_segment_retransmitted_on_first_dupack(self):
        conn, cc = attached()
        settle_fine_rto(conn)  # rto = 0.3
        cc.cwnd = 8 * conn.mss
        conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.5  # older than the fine RTO
        cc.on_dup_ack(1, conn.now)
        assert conn.retransmissions == ["fine-dupack"]
        assert cc.early_retransmits == 1

    def test_fresh_segment_not_retransmitted(self):
        conn, cc = attached()
        settle_fine_rto(conn)
        conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.1  # younger than the RTO
        cc.on_dup_ack(1, conn.now)
        assert conn.retransmissions == []

    def test_fine_loss_cuts_window_by_quarter(self):
        conn, cc = attached()
        settle_fine_rto(conn)
        cc.cwnd = 8 * conn.mss
        conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.5
        cc.on_dup_ack(1, conn.now)
        assert cc.cwnd == 6 * conn.mss  # 8 * 0.75

    def test_epoch_guard_prevents_double_decrease(self):
        """§3.1: only losses at the *current* rate decrease the window."""
        conn, cc = attached()
        settle_fine_rto(conn)
        cc.cwnd = 8 * conn.mss
        conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.5
        cc.on_dup_ack(1, conn.now)      # decrease #1 at t=0.5
        assert cc.cwnd == 6 * conn.mss
        # A second loss whose segment was sent before the decrease.
        conn.first_unacked_ts = 0.4     # sent before t=0.5
        conn.now = 1.0
        cc.on_dup_ack(1, conn.now)
        assert conn.retransmissions == ["fine-dupack", "fine-dupack"]
        assert cc.cwnd == 6 * conn.mss  # no second decrease

    def test_decrease_allowed_for_fresh_epoch(self):
        conn, cc = attached()
        settle_fine_rto(conn)
        cc.cwnd = 8 * conn.mss
        conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.5
        cc.on_dup_ack(1, conn.now)      # cwnd -> 6
        conn.first_unacked_ts = 0.6     # sent after the decrease
        conn.now = 1.0
        cc.on_dup_ack(1, conn.now)
        assert cc.cwnd == 4 * conn.mss  # 6 * 0.75 = 4.5 -> 4 (floored)

    def test_post_retransmission_ack_check(self):
        """§3.1 second bullet: first/second non-dup ACK re-checks."""
        conn, cc = attached()
        settle_fine_rto(conn)
        cc.cwnd = 8 * conn.mss
        for _ in range(4):
            conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.5
        cc.on_dup_ack(1, conn.now)  # retransmission arms the counter
        assert cc.acks_after_retx == 2
        # A new ACK arrives; the next unacked segment is also stale.
        conn.snd_una += conn.mss
        conn.first_unacked_ts = 0.05
        conn.now = 0.6
        cc.on_new_ack(conn.mss, conn.now, None)
        assert "fine-ack" in conn.retransmissions

    def test_ack_check_disarms_after_two(self):
        conn, cc = attached()
        settle_fine_rto(conn)
        for _ in range(6):
            conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.5
        cc.on_dup_ack(1, conn.now)
        conn.retransmissions.clear()
        # Two fresh ACKs with a *young* first-unacked: no retransmits,
        # and the counter drains to zero.
        for _ in range(2):
            conn.first_unacked_ts = conn.now - 0.01
            conn.snd_una += conn.mss
            cc.on_new_ack(conn.mss, conn.now, None)
        assert cc.acks_after_retx == 0
        assert conn.retransmissions == []

    def test_disabled_fine_retransmit(self):
        conn, cc = attached(enable_fine_retransmit=False)
        settle_fine_rto(conn)
        conn.send(cc)
        conn.first_unacked_ts = 0.0
        conn.now = 0.5
        cc.on_dup_ack(1, conn.now)
        assert conn.retransmissions == []


class TestThreeDupAcks:
    def test_standard_fast_retransmit_retained(self):
        conn, cc = attached()
        settle_fine_rto(conn)
        cc.mode = LINEAR
        cc.cwnd = 10 * conn.mss
        for _ in range(10):
            conn.send(cc)
        conn.first_unacked_ts = conn.now = 0.1
        conn.now = 0.2  # young segment: fine check stays quiet
        for count in (1, 2, 3):
            cc.on_dup_ack(count, conn.now)
        assert conn.retransmissions == ["fast"]
        assert cc.in_recovery
        assert cc.cwnd == cc.ssthresh + 3 * conn.mss

    def test_recovery_ack_deflates(self):
        conn, cc = attached()
        cc.mode = LINEAR
        cc.cwnd = 10 * conn.mss
        for _ in range(10):
            conn.send(cc)
        conn.first_unacked_ts = 0.1
        conn.now = 0.2
        for count in (1, 2, 3):
            cc.on_dup_ack(count, conn.now)
        conn.ack(cc, 10 * conn.mss)
        assert not cc.in_recovery
        assert cc.cwnd == max(cc.ssthresh, 2 * conn.mss)


class TestCoarseTimeout:
    def test_falls_back_to_slow_start(self):
        conn, cc = attached()
        cc.mode = LINEAR
        cc.cwnd = 16 * conn.mss
        conn.snd_nxt = 16 * conn.mss
        cc.on_coarse_timeout(3.0)
        assert cc.cwnd == conn.mss
        assert cc.mode == SLOW_START
        assert cc.ss_grow
        assert cc.acks_after_retx == 0
        assert cc.last_decrease_time == 3.0


class TestCamLinearMode:
    """Technique 2 (§3.2): the once-per-RTT Expected/Actual comparison."""

    def test_increase_when_diff_below_alpha(self):
        conn, cc = attached()
        cc.mode = LINEAR
        conn.send(cc)
        conn.now = 0.1
        conn.ack(cc, conn.mss, rtt=0.1)  # base == sample -> diff 0
        assert cc.cwnd == 2 * conn.mss
        assert cc.cam_increases == 1

    def test_decrease_when_diff_above_beta(self):
        conn, cc = attached()
        cc.mode = LINEAR
        conn.fine_rtt.update(0.1)  # BaseRTT = 0.1
        cc.cwnd = 10 * conn.mss
        for _ in range(10):
            conn.send(cc)
        conn.now = 0.2
        conn.ack(cc, conn.mss, rtt=0.2)  # diff = 10*(1-0.5) = 5 > beta
        assert cc.cwnd == 9 * conn.mss
        assert cc.cam_decreases == 1

    def test_hold_inside_band(self):
        conn, cc = attached(alpha=2, beta=4)
        cc.mode = LINEAR
        conn.fine_rtt.update(0.1)
        cc.cwnd = 10 * conn.mss
        for _ in range(10):
            conn.send(cc)
        conn.now = 0.143
        conn.ack(cc, conn.mss, rtt=0.143)  # diff ≈ 10*(1-0.7) = 3
        assert cc.cwnd == 10 * conn.mss
        assert cc.cam_decisions == 1

    def test_app_limited_measurement_skipped(self):
        conn, cc = attached()
        cc.mode = LINEAR
        conn.fine_rtt.update(0.1)
        cc.cwnd = 10 * conn.mss
        conn.send(cc)  # single segment: flight far below cwnd
        conn.now = 0.3
        conn.ack(cc, conn.mss, rtt=0.3)
        assert cc.cwnd == 10 * conn.mss
        assert cc.cam_decisions == 0

    def test_invalid_measurement_skipped(self):
        conn, cc = attached()
        cc.mode = LINEAR
        conn.fine_rtt.update(0.1)
        conn.send(cc)
        cc.cwnd += conn.mss  # window changed during the measurement
        conn.now = 0.3
        conn.ack(cc, conn.mss, rtt=0.3)
        assert cc.cam_decisions == 1  # measured, but no action taken
        assert cc.cam_increases == 0 and cc.cam_decreases == 0

    def test_retransmission_of_distinguished_segment_invalidates(self):
        conn, cc = attached()
        cc.mode = LINEAR
        conn.fine_rtt.update(0.1)
        conn.send(cc)  # distinguished: [0, 1024)
        conn.send(cc, is_retx=True)  # overlaps the distinguished segment
        conn.now = 0.3
        conn.ack(cc, conn.mss, rtt=0.3)
        assert cc.cam_decisions == 0

    def test_min_rtt_sample_used_not_last(self):
        """A delayed-ACK-inflated sample must not drive a decrease."""
        conn, cc = attached()
        cc.mode = LINEAR
        conn.fine_rtt.update(0.1)
        cc.cwnd = 4 * conn.mss
        for _ in range(4):
            conn.send(cc)
        conn.now = 0.1
        conn.ack(cc, conn.mss, rtt=0.1)   # good sample (min)
        # cwnd grew by 1 (diff 0); reset for a fresh epoch is implicit.
        assert cc.cwnd == 5 * conn.mss

    def test_cwnd_floor_two_segments(self):
        conn, cc = attached(alpha=0.5, beta=1.0)
        cc.mode = LINEAR
        conn.fine_rtt.update(0.05)
        cc.cwnd = 2 * conn.mss
        for _ in range(2):
            conn.send(cc)
        conn.now = 0.5
        conn.ack(cc, conn.mss, rtt=0.5)  # diff = 2*(1-0.1) = 1.8 > beta
        assert cc.cam_decreases == 1
        assert cc.cwnd == 2 * conn.mss  # floored at two segments

    def test_cam_disabled_uses_reno_avoidance(self):
        conn, cc = attached(enable_cam=False)
        cc.mode = LINEAR
        cc.cwnd = 4 * conn.mss
        conn.send(cc)
        conn.ack(cc, conn.mss, rtt=0.1)
        # Reno-style: + mss*mss/cwnd per ACK.
        assert cc.cwnd == 4 * conn.mss + conn.mss * conn.mss // (4 * conn.mss)

    def test_cam_trace_records_emitted(self):
        conn, cc = attached()
        cc.mode = LINEAR
        conn.send(cc)
        conn.now = 0.1
        conn.ack(cc, conn.mss, rtt=0.1)
        assert conn.tracer.count(Kind.CAM) == 1
        assert conn.tracer.count(Kind.CAM_DECISION) == 1


class TestModifiedSlowStart:
    """Technique 3 (§3.3)."""

    def test_growth_during_grow_rtt(self):
        conn, cc = attached()
        conn.send(cc)
        conn.now = 0.1
        conn.ack(cc, conn.mss, rtt=0.1)
        assert cc.cwnd == 2 * conn.mss

    def test_gamma_crossing_exits_slow_start(self):
        conn, cc = attached(gamma=2.0)
        conn.fine_rtt.update(0.05)  # BaseRTT
        cc.cwnd = 8 * conn.mss
        for _ in range(8):
            conn.send(cc)
        conn.now = 0.1
        conn.ack(cc, conn.mss, rtt=0.1)  # diff = 8*(1-0.5) = 4 > gamma
        assert cc.mode == LINEAR

    def test_exit_trims_window_by_eighth(self):
        conn, cc = attached(gamma=2.0, ss_exit_factor=0.875)
        conn.fine_rtt.update(0.05)
        cc.cwnd = 16 * conn.mss
        for _ in range(16):
            conn.send(cc)
        conn.now = 0.1
        conn.ack(cc, conn.mss, rtt=0.1)
        assert cc.mode == LINEAR
        assert cc.cwnd == 14 * conn.mss  # 16 * 0.875

    def test_invalid_measurement_freezes_next_rtt(self):
        conn, cc = attached()
        conn.fine_rtt.update(0.1)
        conn.send(cc)
        cc.cwnd += conn.mss  # grew during the measurement
        conn.now = 0.2
        conn.ack(cc, conn.mss, rtt=0.1)
        assert not cc.ss_grow  # next RTT holds the window fixed
        # While frozen, ACKs do not grow the window.
        before = cc.cwnd
        conn.send(cc)
        conn.ack(cc, conn.mss, rtt=0.1)
        # Growth resumes only after a valid epoch.
        assert cc.cwnd == before or cc.ss_grow

    def test_reno_ssthresh_exit_still_applies(self):
        conn, cc = attached()
        cc.ssthresh = 2 * conn.mss
        cc.cwnd = 2 * conn.mss
        conn.send(cc)
        conn.ack(cc, conn.mss, rtt=0.1)
        assert cc.mode == LINEAR

    def test_disabled_modified_slowstart_grows_every_rtt(self):
        conn, cc = attached(enable_modified_slowstart=False)
        cc.ss_grow = False  # would freeze the window if enabled
        conn.send(cc)
        conn.ack(cc, conn.mss, rtt=0.1)
        assert cc.cwnd == 2 * conn.mss
