"""Tests for the tcplib-style TRAFFIC workload generator."""

import random

from repro.core.reno import RenoCC
from repro.sim.rng import RngRegistry
from repro.trafficgen import distributions as D
from repro.trafficgen.conversations import (
    FtpConversation,
    NntpConversation,
    SmtpConversation,
    TelnetConversation,
)
from repro.trafficgen.traffic import TrafficGenerator, TrafficServer

from helpers import make_pair


def wire_traffic(pair, seed=1, arrival_mean=0.3, **kwargs):
    rng = random.Random(seed)
    server = TrafficServer(pair.proto_b, rng, RenoCC)
    generator = TrafficGenerator(pair.proto_a, "B", rng, RenoCC,
                                 arrival_mean=arrival_mean, **kwargs)
    return server, generator


class TestDistributions:
    def test_telnet_params_in_range(self):
        rng = RngRegistry(1).stream("t")
        for _ in range(200):
            p = D.draw_telnet(rng)
            assert 3 <= p.keystrokes <= 400
            assert p.think_mean > 0.2

    def test_ftp_params_match_paper_shape(self):
        """The paper: FTP expects number of items, control segment
        size, and the item sizes."""
        rng = RngRegistry(2).stream("f")
        for _ in range(200):
            p = D.draw_ftp(rng)
            assert 1 <= p.items <= 20
            assert len(p.item_sizes) == p.items
            assert 32 <= p.control_segment_size < 96
            assert all(256 <= s <= 1024 * 1024 for s in p.item_sizes)

    def test_smtp_sizes(self):
        rng = RngRegistry(3).stream("s")
        sizes = [D.draw_smtp(rng).message_size for _ in range(200)]
        assert all(128 <= s <= 256 * 1024 for s in sizes)

    def test_nntp_articles(self):
        rng = RngRegistry(4).stream("n")
        for _ in range(100):
            p = D.draw_nntp(rng)
            assert len(p.article_sizes) == p.articles

    def test_mix_covers_four_types(self):
        assert set(D.DEFAULT_MIX) == {"telnet", "ftp", "smtp", "nntp"}
        assert abs(sum(D.DEFAULT_MIX.values()) - 1.0) < 1e-9


class TestConversations:
    def test_smtp_runs_to_completion(self):
        pair = make_pair(queue_capacity=30)
        rng = random.Random(7)
        TrafficServer(pair.proto_b, rng, RenoCC)
        conv = SmtpConversation(pair.proto_a, "B", rng, RenoCC)
        conv.start()
        pair.sim.run(until=120.0)
        assert conv.finished
        assert conv.duration > 0
        assert conv.bytes_offered == conv.params.message_size

    def test_telnet_measures_response_times(self):
        pair = make_pair(queue_capacity=30)
        rng = random.Random(8)
        TrafficServer(pair.proto_b, rng, RenoCC)
        conv = TelnetConversation(pair.proto_a, "B", rng, RenoCC)
        conv.start()
        pair.sim.run(until=600.0)
        assert conv.finished
        assert len(conv.response_times) > 0
        # Response includes at least one bottleneck round trip (100 ms).
        assert min(conv.response_times) > 0.1

    def test_ftp_transfers_every_item(self):
        pair = make_pair(queue_capacity=30)
        rng = random.Random(9)
        TrafficServer(pair.proto_b, rng, RenoCC)
        conv = FtpConversation(pair.proto_a, "B", rng, RenoCC)
        conv.start()
        pair.sim.run(until=600.0)
        assert conv.finished
        # Control connection + one data connection per item.
        assert len(conv.connections) == 1 + conv.params.items
        data_bytes = sum(c.stats.app_bytes_acked for c in conv.connections[1:])
        assert data_bytes == sum(conv.params.item_sizes)

    def test_nntp_pushes_all_articles(self):
        pair = make_pair(queue_capacity=30)
        rng = random.Random(10)
        TrafficServer(pair.proto_b, rng, RenoCC)
        conv = NntpConversation(pair.proto_a, "B", rng, RenoCC)
        conv.start()
        pair.sim.run(until=600.0)
        assert conv.finished
        assert conv.connections[0].stats.app_bytes_acked == \
            sum(conv.params.article_sizes)


class TestGenerator:
    def test_conversations_launch_over_time(self):
        pair = make_pair(queue_capacity=30)
        server, generator = wire_traffic(pair, arrival_mean=0.5)
        generator.start(0.0)
        pair.sim.run(until=20.0)
        generator.stop()
        assert len(generator.conversations) >= 10
        assert sum(generator.started_by_type.values()) == \
            len(generator.conversations)

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            pair = make_pair(queue_capacity=30)
            server, generator = wire_traffic(pair, seed=42)
            generator.start(0.0)
            pair.sim.run(until=15.0)
            generator.stop()
            counts.append(dict(generator.started_by_type))
        assert counts[0] == counts[1]

    def test_stop_at_limit(self):
        pair = make_pair(queue_capacity=30)
        server, generator = wire_traffic(pair, stop_at=5.0)
        generator.start(0.0)
        pair.sim.run(until=30.0)
        started_times = [c.started_at for c in generator.conversations]
        assert all(t <= 5.5 for t in started_times)

    def test_max_conversations_cap(self):
        pair = make_pair(queue_capacity=30)
        server, generator = wire_traffic(pair, max_conversations=5)
        generator.start(0.0)
        pair.sim.run(until=60.0)
        assert len(generator.conversations) <= 5

    def test_throughput_and_retransmit_accounting(self):
        pair = make_pair(queue_capacity=30)
        server, generator = wire_traffic(pair, arrival_mean=0.4)
        generator.start(0.0)
        pair.sim.run(until=30.0)
        generator.stop()
        assert generator.total_bytes_acked() > 0
        assert generator.throughput_kbps(0.0, 30.0) > 0
        assert generator.total_retransmitted_kb() >= 0.0

    def test_custom_mix_respected(self):
        pair = make_pair(queue_capacity=30)
        server, generator = wire_traffic(pair, arrival_mean=0.2,
                                         mix={"smtp": 1.0})
        generator.start(0.0)
        pair.sim.run(until=20.0)
        generator.stop()
        assert generator.started_by_type["smtp"] == len(generator.conversations)
        assert generator.started_by_type["smtp"] > 0
