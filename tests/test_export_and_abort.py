"""Tests for trace export and connection abort behaviour."""

import json
import os

import pytest

from repro.tcp import constants as C
from repro.trace.export import export_csv, export_json, graph_to_dict
from repro.trace.graphs import build_trace_graph
from repro.trace.tracer import ConnectionTracer

from helpers import make_pair, run_transfer


class TestExport:
    @pytest.fixture(scope="class")
    def graph(self):
        from repro.core.vegas import VegasCC

        pair = make_pair()
        tracer = ConnectionTracer("export-test")
        run_transfer(pair, 64 * 1024, cc=VegasCC(), tracer=tracer)
        return build_trace_graph(tracer, name="export-test",
                                 alpha_buffers=2, beta_buffers=4)

    def test_dict_round_trips_through_json(self, graph):
        doc = graph_to_dict(graph)
        text = json.dumps(doc)
        back = json.loads(text)
        assert back["name"] == "export-test"
        assert back["losses"] == graph.losses()
        assert len(back["windows"]["congestion_window"]) == \
            len(graph.windows.congestion_window)
        assert back["cam"]["alpha"] == 2

    def test_export_json_writes_file(self, graph, tmp_path):
        path = export_json(graph, str(tmp_path / "trace.json"))
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["common"]["send_marks"]

    def test_export_csv_writes_all_series(self, graph, tmp_path):
        files = export_csv(graph, str(tmp_path))
        assert len(files) >= 12
        for path in files:
            assert os.path.exists(path)
            with open(path) as handle:
                header = handle.readline().strip()
            assert header == "time,value"

    def test_csv_rows_parse(self, graph, tmp_path):
        files = export_csv(graph, str(tmp_path))
        cwnd_file = [f for f in files if "congestion_window" in f][0]
        with open(cwnd_file) as handle:
            handle.readline()
            rows = [line.strip().split(",") for line in handle]
        assert rows
        times = [float(t) for t, _ in rows]
        assert times == sorted(times)


class TestConnectionAbort:
    def test_syn_to_blackhole_eventually_aborts(self):
        pair = make_pair()
        # No listener and all forward packets dropped: pure blackhole.
        pair.forward_queue.capacity = None
        original = pair.forward_queue.offer
        pair.forward_queue.offer = lambda p, now: False
        conn = pair.proto_a.connect("B", 9999)
        closed = []
        conn.on_closed = closed.append
        pair.sim.run(until=3000.0)
        assert conn.aborted
        assert conn.is_closed
        assert closed  # callback fired
        # Timers stopped; the simulation went quiet.
        assert pair.sim.pending_events == 0

    def test_abort_counts_match_limit(self):
        pair = make_pair()
        pair.forward_queue.offer = lambda p, now: False
        conn = pair.proto_a.connect("B", 9999)
        pair.sim.run(until=3000.0)
        assert conn.stats.coarse_timeouts == C.MAX_REXMT_SHIFT + 1

    def test_progress_resets_the_abort_counter(self):
        """A transfer that keeps making (slow) progress never aborts."""
        from repro.core.reno import RenoCC
        from repro.apps.bulk import BulkSink, BulkTransfer

        pair = make_pair(queue_capacity=30)
        BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 40 * 1024,
                                cc=RenoCC())
        # Periodic short blackouts cause repeated timeouts, but acks in
        # between reset the consecutive counter.
        queue = pair.forward_queue
        original = queue.offer

        def flaky(packet, now):
            if int(now) % 4 == 0 and packet.size > 500:
                return False
            return original(packet, now)

        queue.offer = flaky
        pair.sim.run(until=900.0)
        assert transfer.done
        assert not transfer.conn.aborted
