"""Arena tests: introspection, matrix generation, league math, and the
registry-completeness suite (every roster scheme survives a smoke
scenario solo and 1v1 against Reno without invariant violations)."""

import json

import pytest

from repro.arena import league, matrix
from repro.arena.cells import run_cohort
from repro.arena.scenarios import (
    DEFAULT_SCENARIOS,
    QUICK_SCENARIOS,
    SCENARIOS,
    TIME_VARYING_SCENARIOS,
    available_scenarios,
    get_scenario,
)
from repro.core.registry import arena_roster, available, scheme_info
from repro.errors import ConfigurationError, ReproError
from repro.harness.registry import Cell, family_cells, run_cell

ROSTER = arena_roster()


# ----------------------------------------------------------------------
# Scheme capability introspection
# ----------------------------------------------------------------------

class TestSchemeIntrospection:
    def test_roster_is_the_papers_eight_schemes(self):
        assert ROSTER == ["card", "dual", "newreno", "reno", "reno-sack",
                          "tahoe", "tri-s", "vegas"]

    def test_every_registered_name_has_info(self):
        for name in available():
            info = scheme_info(name)
            assert info.name == name
            assert info.signal in ("loss", "delay", "none")

    def test_variants_point_at_roster_members(self):
        for name in available():
            base = scheme_info(name).variant_of
            if base is not None:
                assert base in ROSTER

    def test_signal_split(self):
        assert scheme_info("reno").signal == "loss"
        assert scheme_info("vegas").signal == "delay"
        assert scheme_info("dual").signal == "delay"
        assert scheme_info("reno-sack").sack

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigurationError):
            scheme_info("nope")


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

class TestScenarios:
    def test_selections_are_registered(self):
        names = set(available_scenarios())
        assert set(DEFAULT_SCENARIOS) <= names
        assert set(QUICK_SCENARIOS) <= names
        assert "smoke" in names
        assert "smoke" not in DEFAULT_SCENARIOS

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("wormhole")

    def test_scenarios_are_plausible(self):
        for spec in SCENARIOS.values():
            assert spec.bandwidth > 0 and spec.buffers > 0
            assert spec.transfer_bytes > 0 and spec.horizon > 0
            assert 0.0 <= spec.loss < 1.0

    def test_time_varying_selection(self):
        assert set(TIME_VARYING_SCENARIOS) <= set(DEFAULT_SCENARIOS)
        assert not (set(TIME_VARYING_SCENARIOS) & set(QUICK_SCENARIOS))
        for name in TIME_VARYING_SCENARIOS:
            assert get_scenario(name).time_varying
        for name in QUICK_SCENARIOS:
            assert not get_scenario(name).time_varying

    def test_trace_scenario_nominal_bandwidth_is_cycle_mean(self):
        # The static `bandwidth` figure on a trace scenario is a label;
        # keep it honest: within 15% of the built trace's true mean for
        # deterministic kinds, within the rate envelope for stochastic
        # ones (a seeded random walk drifts off its anchor).
        from repro.net.traces import STOCHASTIC_KINDS
        from repro.sim.rng import RngRegistry

        for name in TIME_VARYING_SCENARIOS:
            spec = get_scenario(name)
            if spec.trace is None:
                continue
            trace = spec.trace.build(RngRegistry(0).stream("link-trace"))
            if spec.trace.kind in STOCHASTIC_KINDS:
                assert trace.min_rate <= spec.bandwidth <= 2 * trace.max_rate
            else:
                assert trace.mean_rate == pytest.approx(spec.bandwidth,
                                                        rel=0.15)


# ----------------------------------------------------------------------
# Matrix generation
# ----------------------------------------------------------------------

class TestMatrix:
    def test_quick_matrix_shape(self):
        cells = matrix.generate_matrix(quick=True)
        # Acceptance floor: >= 3 schemes x >= 2 scenarios x >= 2 seeds.
        by_exp = {}
        for cell in cells:
            by_exp.setdefault(cell.experiment, []).append(cell)
        # 3 schemes x 2 scenarios x 2 seeds solo/mix; C(3,2)=3 duels.
        assert len(by_exp["arena_solo"]) == 12
        assert len(by_exp["arena_duel"]) == 12
        assert len(by_exp["arena_mix"]) == 12
        solo_schemes = {dict(c.params)["scheme"]
                        for c in by_exp["arena_solo"]}
        solo_scenarios = {dict(c.params)["scenario"]
                          for c in by_exp["arena_solo"]}
        solo_seeds = {dict(c.params)["seed"] for c in by_exp["arena_solo"]}
        assert len(solo_schemes) >= 3
        assert len(solo_scenarios) >= 2
        assert len(solo_seeds) >= 2

    def test_full_matrix_round_robin(self):
        cells = matrix.generate_matrix(seeds=1, scenarios="classic")
        duels = [dict(c.params) for c in cells
                 if c.experiment == "arena_duel"]
        n = len(ROSTER)
        assert len(duels) == n * (n - 1) // 2
        for params in duels:
            assert params["a"] < params["b"]  # name-sorted, unordered

    def test_duel_pair_order_independent(self):
        one = matrix.generate_matrix(schemes=["vegas", "reno"],
                                     scenarios="smoke", seeds=1,
                                     modes=("duel",))
        two = matrix.generate_matrix(schemes=["reno", "vegas"],
                                     scenarios="smoke", seeds=1,
                                     modes=("duel",))
        assert [c.key for c in one] == [c.key for c in two]

    def test_selection_shapes(self):
        csv = matrix.generate_matrix(schemes="vegas,reno",
                                     scenarios="smoke", seeds=1)
        listed = matrix.generate_matrix(schemes=["vegas", "reno"],
                                        scenarios=["smoke"], seeds=1)
        assert [c.key for c in csv] == [c.key for c in listed]
        everyone = matrix.generate_matrix(schemes="all", scenarios="smoke",
                                          seeds=1, modes=("solo",))
        assert len(everyone) == len(ROSTER)

    def test_family_registration(self):
        from repro.harness.registry import families

        assert "arena" in families()
        direct = matrix.generate_matrix(quick=True)
        via_family = family_cells("arena", quick=True)
        assert [c.key for c in direct] == [c.key for c in via_family]

    def test_bad_selections(self):
        with pytest.raises((ConfigurationError, ReproError)):
            matrix.generate_matrix(schemes="nope", scenarios="smoke")
        with pytest.raises((ConfigurationError, ReproError)):
            matrix.generate_matrix(schemes="vegas", scenarios="nope")
        with pytest.raises((ConfigurationError, ReproError)):
            matrix.generate_matrix(schemes="vegas", scenarios="smoke",
                                   seeds=0)
        with pytest.raises((ConfigurationError, ReproError)):
            matrix.generate_matrix(schemes="vegas", scenarios="smoke",
                                   modes=("melee",))
        with pytest.raises((ConfigurationError, ReproError)):
            matrix.generate_matrix(schemes="vegas,vegas", scenarios="smoke")
        with pytest.raises((ConfigurationError, ReproError)):
            matrix.generate_matrix(schemes="vegas", scenarios="smoke",
                                   n_cross=0)

    def test_describe_matrix(self):
        cells = matrix.generate_matrix(quick=True)
        assert matrix.describe_matrix(cells) == \
            "12 solo + 12 duel + 12 mix = 36 cells"


# ----------------------------------------------------------------------
# League aggregation math
# ----------------------------------------------------------------------

def _solo(scheme, scenario, throughput, rtt=100.0, retx=1.0, seed=0):
    return {"experiment": "arena_solo", "key": f"s/{scheme}/{seed}",
            "params": {"scheme": scheme, "scenario": scenario, "seed": seed},
            "metrics": {"throughput_kbps": throughput, "rtt_mean_ms": rtt,
                        "retransmit_kb": retx, "coarse_timeouts": 0.0,
                        "completed": 1.0}}


def _duel(a, b, a_rate, b_rate, scenario="classic", fairness=0.9, seed=0):
    return {"experiment": "arena_duel", "key": f"d/{a}/{b}/{seed}",
            "params": {"a": a, "b": b, "scenario": scenario, "seed": seed},
            "metrics": {"a_throughput_kbps": a_rate,
                        "b_throughput_kbps": b_rate,
                        "a_completed": 1.0, "b_completed": 1.0,
                        "fairness_index": fairness}}


class TestLeagueMath:
    def test_duel_outcome_margins(self):
        assert league.duel_outcome(100.0, 50.0) == 1
        assert league.duel_outcome(50.0, 100.0) == -1
        assert league.duel_outcome(100.0, 96.0) == 0   # within 5%
        assert league.duel_outcome(100.0, 94.0) == 1   # outside 5%

    def test_duel_outcome_no_contest(self):
        # Both goodputs <= 0 (outage, nobody moved data): a no-contest,
        # not a draw — awarding draw points here inflated standings.
        assert league.duel_outcome(0.0, 0.0) is None
        assert league.duel_outcome(-1.0, 0.0) is None
        # One live flow is still a win, however small.
        assert league.duel_outcome(0.5, 0.0) == 1
        assert league.duel_outcome(0.0, 0.5) == -1

    def test_no_contest_awards_no_points(self):
        cells = [_duel("a", "b", 0.0, 0.0),      # no-contest
                 _duel("a", "b", 100, 99)]       # genuine draw
        table = {s.scheme: s for s in league.compute_standings(cells)}
        for scheme in ("a", "b"):
            assert table[scheme].points == 1      # the draw only
            assert table[scheme].draws == 1
            assert table[scheme].no_contests == 1
            assert table[scheme].duels == 1       # NC not a contested duel
            # The dead duel's zero goodput must not drag the mean down.
            assert table[scheme].duel_throughput in ([100], [99])
        text = league.render_league(cells)
        assert "NC" in text

    def test_points_and_record(self):
        cells = [_duel("a", "b", 100, 50),      # a beats b
                 _duel("a", "c", 100, 99),      # draw
                 _duel("b", "c", 40, 80)]       # c beats b
        standings = league.compute_standings(cells)
        table = {s.scheme: s for s in standings}
        assert (table["a"].wins, table["a"].draws, table["a"].losses) \
            == (1, 1, 0)
        assert table["a"].points == 3
        assert table["c"].points == 3
        assert table["b"].points == 0
        # a and c tie on points; a's mean duel goodput (100) beats
        # c's (~89.5), so a ranks first.
        assert [s.scheme for s in standings] == ["a", "c", "b"]

    def test_solo_and_fairness_means(self):
        cells = [_solo("x", "classic", 80.0, rtt=120.0, retx=2.0, seed=0),
                 _solo("x", "classic", 120.0, rtt=180.0, retx=4.0, seed=1),
                 _duel("x", "y", 10, 10, fairness=0.8),
                 _duel("x", "y", 10, 10, fairness=1.0, seed=1)]
        entry = {s.scheme: s for s in league.compute_standings(cells)}["x"]
        assert sum(entry.solo_throughput) / 2 == pytest.approx(100.0)
        assert sum(entry.solo_rtt_ms) / 2 == pytest.approx(150.0)
        assert sum(entry.duel_fairness) / 2 == pytest.approx(0.9)

    def test_scenario_filter(self):
        cells = [_duel("a", "b", 100, 50, scenario="classic"),
                 _duel("a", "b", 50, 100, scenario="shallow")]
        overall = {s.scheme: s for s in league.compute_standings(cells)}
        assert overall["a"].points == overall["b"].points == 2
        classic = {s.scheme: s
                   for s in league.compute_standings(cells,
                                                     scenario="classic")}
        assert classic["a"].points == 2 and classic["b"].points == 0

    def test_non_arena_cells_ignored(self):
        cells = [_duel("a", "b", 100, 50),
                 {"experiment": "table2", "key": "t", "params": {},
                  "metrics": {}}]
        assert {s.scheme for s in league.compute_standings(cells)} \
            == {"a", "b"}

    def test_render_league_markdown(self):
        cells = [_solo("a", "classic", 80.0), _duel("a", "b", 100, 50)]
        text = league.render_league(cells)
        assert "## Overall standings" in text
        assert "## Scenario: classic" in text
        assert "| a" in text and "| b" in text

    def test_render_league_empty(self):
        assert "no arena cells" in league.render_league([])


# ----------------------------------------------------------------------
# Registry completeness: every roster scheme survives the smoke
# scenario solo and 1v1 against Reno, with the invariant checker live.
# ----------------------------------------------------------------------

class TestRegistryCompleteness:
    @pytest.mark.parametrize("scheme", ROSTER)
    def test_solo_smoke(self, scheme):
        metrics = run_cell(Cell.make("arena_solo", scheme=scheme,
                                     scenario="smoke", seed=0),
                           checks="collect")
        assert metrics["completed"] == 1.0
        assert metrics["invariant_violations"] == 0.0
        assert metrics["throughput_kbps"] > 0

    @pytest.mark.parametrize("scheme", ROSTER)
    def test_duel_against_reno(self, scheme):
        a, b = sorted((scheme, "reno"))
        metrics = run_cell(Cell.make("arena_duel", a=a, b=b,
                                     scenario="smoke", seed=0),
                           checks="collect")
        assert metrics["a_completed"] == 1.0
        assert metrics["b_completed"] == 1.0
        assert metrics["invariant_violations"] == 0.0
        assert 0.0 < metrics["fairness_index"] <= 1.0


# ----------------------------------------------------------------------
# Time-varying completeness: every roster scheme also survives each
# trace-driven scenario, solo and 1v1 against Reno, checker live.
# ----------------------------------------------------------------------

class TestTimeVaryingCompleteness:
    @pytest.mark.parametrize("scenario", TIME_VARYING_SCENARIOS)
    @pytest.mark.parametrize("scheme", ROSTER)
    def test_solo_time_varying(self, scheme, scenario):
        metrics = run_cell(Cell.make("arena_solo", scheme=scheme,
                                     scenario=scenario, seed=0),
                           checks="collect")
        assert metrics["completed"] == 1.0
        assert metrics["invariant_violations"] == 0.0
        assert metrics["throughput_kbps"] > 0

    @pytest.mark.parametrize("scenario", TIME_VARYING_SCENARIOS)
    @pytest.mark.parametrize("scheme", ROSTER)
    def test_duel_against_reno_time_varying(self, scheme, scenario):
        a, b = sorted((scheme, "reno"))
        metrics = run_cell(Cell.make("arena_duel", a=a, b=b,
                                     scenario=scenario, seed=0),
                           checks="collect")
        assert metrics["a_completed"] == 1.0
        assert metrics["b_completed"] == 1.0
        assert metrics["invariant_violations"] == 0.0
        assert 0.0 < metrics["fairness_index"] <= 1.0

    def test_time_varying_cohort_is_deterministic(self):
        one = run_cohort(["vegas", "reno"], "wifi", seed=5)
        two = run_cohort(["vegas", "reno"], "wifi", seed=5)
        assert [f.throughput_kbps for f in one] \
            == [f.throughput_kbps for f in two]
        assert [f.rtt_mean_ms for f in one] == [f.rtt_mean_ms for f in two]


# ----------------------------------------------------------------------
# Cohort determinism
# ----------------------------------------------------------------------

class TestCohort:
    def test_same_seed_is_bit_identical(self):
        one = run_cohort(["vegas", "reno"], "smoke", seed=3)
        two = run_cohort(["vegas", "reno"], "smoke", seed=3)
        assert [f.throughput_kbps for f in one] \
            == [f.throughput_kbps for f in two]
        assert [f.rtt_mean_ms for f in one] == [f.rtt_mean_ms for f in two]

    def test_flow_order_matches_schemes(self):
        flows = run_cohort(["vegas", "reno"], "smoke", seed=0)
        assert [f.scheme for f in flows] == ["vegas", "reno"]

    def test_mix_rejects_empty_cohort(self):
        from repro.arena.cells import arena_mix

        with pytest.raises(ValueError):
            arena_mix("vegas", "reno", 0, "smoke", 0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestArenaCLI:
    def test_dry_run_lists_cells(self, capsys):
        from repro.cli import main

        assert main(["arena", "--quick", "--dry-run"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 36
        assert all("/" in line for line in out)

    def test_bad_scheme_exits_2(self, capsys):
        from repro.cli import main

        assert main(["arena", "--schemes", "nope", "--dry-run"]) == 2

    def test_quick_smoke_run(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "arena.json"
        table = tmp_path / "league.md"
        code = main(["arena", "--schemes", "vegas,reno",
                     "--scenarios", "smoke", "--seeds", "1",
                     "--modes", "solo,duel", "--jobs", "1", "--no-timeout",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json", str(artifact), "--out", str(table)])
        assert code == 0
        doc = json.loads(artifact.read_text())
        assert doc["mode"] == "arena"
        assert len(doc["cells"]) == 3  # 2 solo + 1 duel
        text = table.read_text()
        assert "## Overall standings" in text
        assert "vegas" in text and "reno" in text

    def test_check_subcommand_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "arena.json"
        args = ["arena", "--schemes", "vegas", "--scenarios", "smoke",
                "--seeds", "1", "--modes", "solo", "--jobs", "1",
                "--no-timeout", "--cache-dir", str(tmp_path / "cache"),
                "--json", str(artifact)]
        assert main(args) == 0
        # The artifact gates cleanly against itself via `repro check`.
        assert main(["check", str(artifact), str(artifact),
                     "--tolerance", "0.0"]) == 0
