"""Tests for the perf subsystem and the engine's hot-path rewrites.

Three layers:

* the optimized engine against its seed-equivalent slow path — the
  same registry cell must produce identical flow statistics and
  ``events_processed`` on both (the bit-identical guarantee the
  regression gate relies on);
* the fast path's mechanics in isolation (event free list, tuple heap,
  cancel semantics after recycling);
* the :class:`~repro.perf.counters.PerfProbe` counters and the
  ``repro bench`` comparator logic.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.perf import runtime as perf_runtime
from repro.perf.bench import SCHEMA_VERSION, compare
from repro.perf.counters import PerfProbe
from repro.sim.engine import SLOWPATH_ENV, Event, Simulator
from repro.trace.records import Kind
from repro.trace.tracer import ConnectionTracer


# ----------------------------------------------------------------------
# Fast path vs slow path determinism
# ----------------------------------------------------------------------
class TestSlowPathEquivalence:
    def _run_figure6(self):
        from repro.harness.registry import Cell, run_cell

        return run_cell(Cell.make("figure6", seed=0))

    def test_registry_cell_is_bit_identical(self, monkeypatch):
        """The tentpole guarantee: same cell, both engines, same numbers.

        The engine path is chosen per-Simulator at construction from
        the environment, so the two runs share one process.
        """
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
        fast = self._run_figure6()
        monkeypatch.setenv(SLOWPATH_ENV, "1")
        slow = self._run_figure6()
        assert fast == slow
        assert fast["events_processed"] > 0

    def test_slow_path_flag_selects_object_heap(self, monkeypatch):
        monkeypatch.setenv(SLOWPATH_ENV, "1")
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert isinstance(sim._heap[0], Event)
        monkeypatch.delenv(SLOWPATH_ENV)
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert isinstance(sim._heap[0], tuple)

    def test_slow_path_ordering_and_cancel(self, monkeypatch):
        monkeypatch.setenv(SLOWPATH_ENV, "1")
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        victim = sim.schedule(1.5, fired.append, "never")
        victim.cancel()
        assert sim.run() == 2
        assert fired == ["early", "late"]


# ----------------------------------------------------------------------
# Event free list
# ----------------------------------------------------------------------
class TestEventPool:
    def test_fired_event_is_recycled(self, monkeypatch):
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
        sim = Simulator()
        first = sim.schedule(0.0, lambda: None)
        sim.run()
        second = sim.schedule(0.0, lambda: None)
        assert second is first  # came back off the free list
        assert not second.cancelled

    def test_cancelled_event_is_recycled(self, monkeypatch):
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
        sim = Simulator()
        victim = sim.schedule(1.0, lambda: None)
        keeper = []
        sim.schedule(2.0, keeper.append, "ran")
        victim.cancel()
        sim.run()
        assert keeper == ["ran"]
        assert victim in sim._pool

    def test_cancel_after_fire_is_noop(self, monkeypatch):
        """A fired handle can be cancelled safely — before reuse."""
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
        sim = Simulator()
        handle = sim.schedule(0.0, lambda: None)
        later = []
        sim.schedule(1.0, later.append, "ran")
        sim.run(until=0.5)
        handle.cancel()  # already fired: must not disturb pending work
        sim.run()
        assert later == ["ran"]

    def test_callback_may_cancel_its_own_event(self, monkeypatch):
        """The recycle happens after dispatch, so self-cancel is safe."""
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
        sim = Simulator()
        handles = {}

        def self_cancel():
            handles["own"].cancel()

        handles["own"] = sim.schedule(0.0, self_cancel)
        fired = []
        sim.schedule(1.0, fired.append, "after")
        sim.run()
        assert fired == ["after"]

    def test_recycled_events_do_not_leak_args(self, monkeypatch):
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
        sim = Simulator()
        payload = object()
        sim.schedule(0.0, lambda _x: None, payload)
        sim.run()
        assert all(e.fn is None and e.args == () for e in sim._pool)


# ----------------------------------------------------------------------
# Idle timer suppression (opt-in)
# ----------------------------------------------------------------------
class TestIdleSuppression:
    def _idle_pair(self, suppress):
        from helpers import make_pair

        pair = make_pair()
        pair.proto_a.idle_timer_suppression = suppress
        pair.proto_b.idle_timer_suppression = suppress
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        conn.app_send(4096)
        pair.sim.run(until=10.0)
        return pair, conn

    def test_quiescent_connection_parks_timers(self):
        pair, conn = self._idle_pair(suppress=True)
        assert not conn.needs_coarse_timers()
        assert pair.proto_a._suppressed and pair.proto_b._suppressed
        before = pair.sim.events_processed
        pair.sim.run(until=60.0)
        assert pair.sim.events_processed == before  # zero idle ticks

    def test_default_keeps_ticking(self):
        pair, conn = self._idle_pair(suppress=False)
        assert not pair.proto_a._suppressed
        before = pair.sim.events_processed
        pair.sim.run(until=60.0)
        assert pair.sim.events_processed > before

    def test_activity_rearms_timers(self):
        pair, conn = self._idle_pair(suppress=True)
        pair.sim.run(until=60.0)
        conn.app_send(4096)
        pair.sim.run(until=90.0)
        assert conn.snd_una == conn.sendbuf.queued_end  # delivered
        assert pair.proto_a._suppressed  # idle again afterwards


# ----------------------------------------------------------------------
# Columnar tracer
# ----------------------------------------------------------------------
class TestColumnarTracer:
    def _populated(self):
        tracer = ConnectionTracer("t")
        tracer.record(0.0, Kind.SEND, 100, 512)
        tracer.record(0.1, Kind.CWND, 2048)
        tracer.record(0.2, Kind.SEND, 612, 512)
        return tracer

    def test_records_match_rows(self):
        tracer = self._populated()
        assert [(r.time, r.kind, r.a, r.b) for r in tracer.records] == \
            list(tracer.rows())

    def test_of_kind_and_points_agree(self):
        tracer = self._populated()
        sends = tracer.of_kind(Kind.SEND)
        assert [(r.time, r.a) for r in sends] == tracer.points(Kind.SEND)
        assert [(r.time, r.b) for r in sends] == \
            tracer.points(Kind.SEND, field="b")
        assert tracer.count(Kind.SEND) == 2
        assert tracer.count(Kind.RETX) == 0

    def test_clear_resets_every_column(self):
        tracer = self._populated()
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.records == []
        assert list(tracer.rows()) == []

    def test_disabled_tracer_records_nothing(self):
        tracer = ConnectionTracer("off", enabled=False)
        tracer.record(0.0, Kind.SEND, 1)
        assert len(tracer) == 0

    def test_materialization_is_invalidated_by_writes(self):
        tracer = self._populated()
        assert len(tracer.records) == 3
        tracer.record(0.3, Kind.ACK_RX, 612)
        assert len(tracer.records) == 4


# ----------------------------------------------------------------------
# PerfProbe
# ----------------------------------------------------------------------
class TestPerfProbe:
    def test_counts_dispatched_events(self):
        with perf_runtime.profiling() as probe:
            sim = Simulator()
            for i in range(5):
                sim.schedule(float(i), lambda: None)
            processed = sim.run()
        assert probe.events == processed == 5
        assert probe.peak_heap >= 1

    def test_component_counts_use_qualnames(self):
        with perf_runtime.profiling() as probe:
            sim = Simulator()
            sim.schedule(0.0, _named_callback)
            sim.schedule(1.0, _named_callback)
            sim.run()
        assert probe.component_counts["_named_callback"] == 2
        assert probe.top_components() == [("_named_callback", 2)]

    def test_phase_accumulates(self):
        probe = PerfProbe()
        with probe.phase("x"):
            pass
        first = probe.phases["x"]
        with probe.phase("x"):
            pass
        assert probe.phases["x"] >= first
        assert probe.events_per_sec("missing") == 0.0

    def test_inactive_probe_costs_nothing(self):
        sim = Simulator()
        assert sim.perf is None
        sim.schedule(0.0, lambda: None)
        assert sim.run() == 1

    def test_double_activation_rejected(self):
        probe = PerfProbe()
        perf_runtime.activate(probe)
        try:
            with pytest.raises(RuntimeError):
                perf_runtime.activate(PerfProbe())
        finally:
            perf_runtime.deactivate()

    def test_note_tracer(self):
        probe = PerfProbe()
        tracer = ConnectionTracer("conn1")
        tracer.record(0.0, Kind.SEND, 1)
        probe.note_tracer(tracer)
        assert probe.snapshot()["tracer_records"] == {"conn1": 1}


def _named_callback():
    pass


# ----------------------------------------------------------------------
# Bench comparator
# ----------------------------------------------------------------------
def _doc(events=1000, peak=20, rate=50_000.0):
    return {
        "schema_version": SCHEMA_VERSION,
        "cells": {"cellA": {"events": events, "peak_heap": peak,
                            "events_per_sec": rate}},
    }


class TestBenchCompare:
    def test_identical_documents_pass(self):
        assert compare(_doc(), _doc()) == []

    def test_event_count_must_match_exactly(self):
        problems = compare(_doc(events=1001), _doc())
        assert len(problems) == 1 and "events = 1001" in problems[0]

    def test_peak_heap_must_match_exactly(self):
        assert compare(_doc(peak=21), _doc())

    def test_timing_regression_fails_gate(self):
        problems = compare(_doc(rate=30_000.0), _doc(rate=50_000.0))
        assert any("events_per_sec" in p for p in problems)

    def test_small_timing_wobble_passes(self):
        assert compare(_doc(rate=45_000.0), _doc(rate=50_000.0)) == []

    def test_timing_gate_can_be_disabled(self):
        assert compare(_doc(rate=1.0), _doc(rate=50_000.0),
                       timing=False) == []

    def test_missing_cell_fails(self):
        current = _doc()
        current["cells"] = {}
        problems = compare(current, _doc())
        assert problems == ["missing bench cell: cellA"]

    def test_new_cell_is_ignored(self):
        current = _doc()
        current["cells"]["brand_new"] = {"events": 1, "peak_heap": 1,
                                         "events_per_sec": 1.0}
        assert compare(current, _doc()) == []


class TestBenchCellDeterminism:
    def test_nondeterministic_counters_raise(self, monkeypatch):
        # The bench protocol reads the event count off the production
        # run's simulator after every timed round; any drift from the
        # warmup round must abort the cell.
        from repro.perf import bench

        counts = iter([100, 101, 100])

        class _FlakySim:
            @property
            def events_processed(self):
                return next(counts)

        sim = _FlakySim()
        monkeypatch.setattr("repro.sim.engine.last_simulator", lambda: sim)
        monkeypatch.setattr("repro.harness.registry.run_cell",
                            lambda cell, checks=False, faults=None: {})
        descriptor = {"name": "flaky",
                      "cell": _NullCell()}
        with pytest.raises(ReproError, match="nondeterministic"):
            bench.run_bench_cell(descriptor, rounds=2)


class _NullCell:
    experiment = "null"


class TestBenchCellSelection:
    def test_none_selects_whole_suite(self):
        from repro.perf import bench

        assert ([d["name"] for d in bench.select_cells(None)]
                == [d["name"] for d in bench.bench_suite()])

    def test_selection_keeps_suite_order(self):
        from repro.perf import bench

        # CLI spelling order must not leak into the artifact.
        names = [d["name"]
                 for d in bench.select_cells(["many_flows_100", "figure6"])]
        assert names == ["figure6", "many_flows_100"]

    def test_unknown_cell_raises(self):
        from repro.perf import bench

        with pytest.raises(ReproError, match="unknown bench cell"):
            bench.select_cells(["figure6", "bogus"])

    def test_update_baseline_refuses_slice(self, tmp_path, capsys):
        # A partial run must never overwrite the full-suite baseline.
        from repro.perf import bench

        rc = bench.main(["--update-baseline", "--cells", "figure6",
                         "--json", str(tmp_path / "b.json")])
        assert rc == 2
        assert "full suite" in capsys.readouterr().err
