"""Tests for RNG streams, distributions, and unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.sim.rng import (
    RngRegistry,
    bounded_geometric,
    empirical,
    exponential,
    lognormal_bytes,
    weighted_choice,
)


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(42)
        assert reg.stream("x") is reg.stream("x")

    def test_same_seed_reproducible(self):
        a = RngRegistry(7).stream("traffic")
        b = RngRegistry(7).stream("traffic")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_decorrelated(self):
        reg = RngRegistry(7)
        xs = [reg.stream("one").random() for _ in range(5)]
        ys = [reg.stream("two").random() for _ in range(5)]
        assert xs != ys

    def test_adjacent_seeds_differ(self):
        a = RngRegistry(1).stream("s").random()
        b = RngRegistry(2).stream("s").random()
        assert a != b

    def test_spawn_is_independent_and_deterministic(self):
        child1 = RngRegistry(9).spawn("w").stream("s")
        child2 = RngRegistry(9).spawn("w").stream("s")
        parent = RngRegistry(9).stream("s")
        assert child1.random() == child2.random()
        assert RngRegistry(9).spawn("w").stream("s").random() != parent.random()


class TestDistributions:
    def test_exponential_mean(self):
        rng = RngRegistry(1).stream("e")
        xs = [exponential(rng, 2.0) for _ in range(20000)]
        assert sum(xs) / len(xs) == pytest.approx(2.0, rel=0.05)

    def test_exponential_rejects_bad_mean(self):
        rng = RngRegistry(1).stream("e")
        with pytest.raises(ValueError):
            exponential(rng, 0.0)

    def test_lognormal_median_and_clamps(self):
        rng = RngRegistry(2).stream("l")
        xs = sorted(lognormal_bytes(rng, median=10000, sigma=1.0)
                    for _ in range(4001))
        median = xs[len(xs) // 2]
        assert 8000 < median < 12500
        assert all(x >= 1 for x in xs)

    def test_lognormal_respects_bounds(self):
        rng = RngRegistry(3).stream("l")
        xs = [lognormal_bytes(rng, median=1000, sigma=2.0,
                              minimum=500, maximum=2000) for _ in range(500)]
        assert min(xs) >= 500 and max(xs) <= 2000

    def test_bounded_geometric_mean_and_bounds(self):
        rng = RngRegistry(4).stream("g")
        xs = [bounded_geometric(rng, mean=5.0, minimum=1, maximum=100)
              for _ in range(20000)]
        assert 4.5 < sum(xs) / len(xs) < 5.5
        assert min(xs) >= 1 and max(xs) <= 100

    def test_bounded_geometric_degenerate_mean(self):
        rng = RngRegistry(4).stream("g")
        assert bounded_geometric(rng, mean=0.5, minimum=2) == 2

    def test_empirical_interpolates(self):
        rng = RngRegistry(5).stream("emp")
        table = [(0.5, 10.0), (1.0, 20.0)]
        xs = [empirical(rng, table) for _ in range(2000)]
        # Below the first cumulative point the draw floors at the first
        # value; above it, values interpolate linearly up to the last.
        assert all(10.0 <= x <= 20.0 for x in xs)
        assert any(x == 10.0 for x in xs)
        assert any(x > 15.0 for x in xs)

    def test_empirical_empty_rejected(self):
        rng = RngRegistry(5).stream("emp")
        with pytest.raises(ValueError):
            empirical(rng, [])

    def test_weighted_choice_proportions(self):
        rng = RngRegistry(6).stream("w")
        weights = {"a": 3.0, "b": 1.0}
        picks = [weighted_choice(rng, weights) for _ in range(8000)]
        frac_a = picks.count("a") / len(picks)
        assert 0.70 < frac_a < 0.80

    def test_weighted_choice_rejects_nonpositive(self):
        rng = RngRegistry(6).stream("w")
        with pytest.raises(ValueError):
            weighted_choice(rng, {"a": 0.0})

    @given(st.integers(min_value=0, max_value=2**32))
    def test_registry_streams_always_in_unit_interval(self, seed):
        value = RngRegistry(seed).stream("any").random()
        assert 0.0 <= value < 1.0


class TestUnits:
    def test_kb_mb(self):
        assert units.kb(1) == 1024
        assert units.mb(1) == 1024 * 1024
        assert units.kb(1.5) == 1536

    def test_rates(self):
        assert units.kbps(200) == 200 * 1024
        assert units.mbps(8) == 1e6  # 8 Mb/s == 1e6 bytes/s

    def test_ms(self):
        assert units.ms(50) == pytest.approx(0.05)

    def test_rate_kbps(self):
        assert units.rate_kbps(1024 * 100, 10.0) == pytest.approx(10.0)
        assert units.rate_kbps(100, 0.0) == 0.0

    def test_bytes_to_kb(self):
        assert units.bytes_to_kb(2048) == 2.0
