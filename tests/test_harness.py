"""Tests for the parallel experiment harness.

Covers the contracts the harness advertises: stable cell keys,
bit-identical results regardless of job count, cache hit/miss and
invalidation behaviour, artifact schema, and the regression checker's
exit codes.
"""

import json

import pytest

from repro.errors import ReproError
from repro.harness import (
    Cell,
    ResultCache,
    all_cells,
    build_document,
    cells_fingerprint,
    cells_for,
    compute_src_hash,
    load_document,
    run_cells,
    write_document,
)
from repro.harness import check
from repro.harness.aggregate import summarize
from repro.harness.registry import EXPERIMENTS
from repro.harness.runner import storage_key

#: Cheap cells (sub-second solo transfers) for runner/cache tests.
CHEAP_CELLS = [
    Cell.make("sendbuf", cc="reno", size_kb=5, seed=0),
    Cell.make("sendbuf", cc="vegas", size_kb=5, seed=0),
    Cell.make("sendbuf", cc="reno", size_kb=10, seed=0),
]


class TestCellKeys:
    def test_key_format_is_stable(self):
        # The key format is a compatibility contract (cache + baselines);
        # these exact strings must never change silently.
        assert (Cell.make("table2", proto="reno", buffers=10, seed=0).key
                == "table2/buffers=10/proto=reno/seed=0")
        assert (Cell.make("table1", small="vegas", large="reno",
                          buffers=15, delay=0.5, seed=3).key
                == "table1/buffers=15/delay=0.5/large=reno/seed=3/small=vegas")
        assert (Cell.make("fairness", cc="vegas", count=16, mixed=True,
                          seed=0).key
                == "fairness/cc=vegas/count=16/mixed=true/seed=0")

    def test_key_independent_of_kwarg_order(self):
        a = Cell.make("table2", proto="reno", buffers=10, seed=0)
        b = Cell.make("table2", seed=0, buffers=10, proto="reno")
        assert a == b and a.key == b.key

    def test_float_formatting(self):
        assert "delay=0" in Cell.make("table1", delay=0.0).key
        assert "delay=2.5" in Cell.make("table1", delay=2.5).key

    def test_cells_are_hashable_and_picklable(self):
        import pickle

        cell = CHEAP_CELLS[0]
        assert pickle.loads(pickle.dumps(cell)) == cell
        assert len({cell, cell}) == 1


class TestRegistry:
    def test_every_experiment_has_cells(self):
        for quick in (True, False):
            for experiment in EXPERIMENTS:
                cells = cells_for(experiment, quick=quick)
                assert cells, experiment
                assert all(c.experiment == experiment for c in cells)

    def test_all_cells_unique_keys(self):
        for quick in (True, False):
            cells = all_cells(quick=quick)
            keys = [c.key for c in cells]
            assert len(keys) == len(set(keys))

    def test_quick_is_smaller(self):
        assert len(all_cells(quick=True)) < len(all_cells(quick=False))

    def test_experiment_subset(self):
        cells = all_cells(quick=True, experiments=["telnet", "figure6"])
        assert {c.experiment for c in cells} == {"telnet", "figure6"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            cells_for("table99")


class TestRunner:
    def test_jobs_do_not_change_results(self):
        serial = run_cells(CHEAP_CELLS, jobs=1)
        parallel = run_cells(CHEAP_CELLS, jobs=2)
        assert [r.key for r in serial.results] == \
               [r.key for r in parallel.results]
        for a, b in zip(serial.results, parallel.results):
            assert a.metrics == b.metrics

    def test_results_sorted_by_key(self):
        report = run_cells(list(reversed(CHEAP_CELLS)), jobs=1)
        keys = [r.key for r in report.results]
        assert keys == sorted(keys)

    def test_metrics_include_events_processed(self):
        report = run_cells(CHEAP_CELLS[:1], jobs=1)
        assert report.results[0].metrics["events_processed"] > 0

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_cells(CHEAP_CELLS[:1], jobs=0)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, "hash-a")
        assert cache.get("some/key") is None
        cache.put("some/key", {"metrics": {"x": 1.0}, "wall_clock_s": 0.1})
        payload = cache.get("some/key")
        assert payload["metrics"] == {"x": 1.0}
        assert payload["key"] == "some/key"

    def test_source_hash_partitions_entries(self, tmp_path):
        before = ResultCache(tmp_path, "hash-a")
        before.put("k", {"metrics": {"x": 1.0}})
        after = ResultCache(tmp_path, "hash-b")
        assert after.get("k") is None
        assert before.get("k") is not None  # old namespace intact

    def test_runner_integration(self, tmp_path):
        cache = ResultCache(tmp_path, "h")
        cold = run_cells(CHEAP_CELLS, jobs=1, cache=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(CHEAP_CELLS)
        warm = run_cells(CHEAP_CELLS, jobs=1, cache=cache)
        assert warm.cache_misses == 0
        assert warm.cache_hits == len(CHEAP_CELLS)
        assert warm.hit_rate == 1.0
        for a, b in zip(cold.results, warm.results):
            assert a.metrics == b.metrics
            assert b.cached

    def test_compute_src_hash_changes_on_edit(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        original = compute_src_hash(tmp_path)
        assert compute_src_hash(tmp_path) == original  # stable
        (tmp_path / "pkg" / "a.py").write_text("x = 2\n")
        assert compute_src_hash(tmp_path) != original
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "b.py").write_text("")
        assert compute_src_hash(tmp_path) != original  # new file counts

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, "h")
        cache.put("k", {"metrics": {}})
        for entry in tmp_path.rglob("*.json"):
            entry.write_text("{not json")
        assert cache.get("k") is None

    def test_src_hash_folds_support_files(self, tmp_path):
        # Tool configuration can change behaviour without touching a
        # .py file; extra_files lets the hash see that.
        (tmp_path / "a.py").write_text("x = 1\n")
        config = tmp_path / "pyproject.toml"
        config.write_text("[tool]\n")
        original = compute_src_hash(tmp_path, extra_files=[config])
        assert compute_src_hash(tmp_path, extra_files=[config]) == original
        config.write_text("[tool.other]\n")
        assert compute_src_hash(tmp_path, extra_files=[config]) != original
        # A missing support file is skipped, not an error.
        ghost = tmp_path / "nope.toml"
        assert compute_src_hash(tmp_path, extra_files=[ghost]) \
            == compute_src_hash(tmp_path)

    def test_default_src_hash_includes_pyproject(self):
        import repro
        from pathlib import Path

        tree = Path(repro.__file__).parent
        # The default namespace folds pyproject.toml in on top of the
        # package tree, so editing it invalidates cached sweeps.
        assert compute_src_hash() != compute_src_hash(tree)
        assert compute_src_hash() == compute_src_hash(
            tree, extra_files=[tree.parents[1] / "pyproject.toml"])


class TestStorageKey:
    """Checked/faulted sweeps live in their own cache namespaces."""

    def test_plain_run_keeps_bare_key(self):
        assert storage_key("a/b=1") == "a/b=1"

    def test_checks_namespaces(self):
        assert storage_key("a/b=1", checks=True) == "a/b=1#checks"
        assert storage_key("a/b=1", checks="raise") == "a/b=1#checks"
        assert storage_key("a/b=1", checks="collect") \
            == "a/b=1#checks=collect"

    def test_faults_namespace_is_canonical(self):
        # Equivalent specs (profile vs explicit, key spelling) map to
        # the same namespace via FaultPlan.describe().
        from repro.faults import PROFILES

        by_profile = storage_key("k", faults="light")
        by_spec = storage_key("k", faults=PROFILES["light"])
        assert by_profile == by_spec
        assert "#faults=" in by_profile
        assert storage_key("k", faults="drop=0.1") \
            != storage_key("k", faults="drop=0.2")

    def test_null_faults_is_plain(self):
        assert storage_key("k", faults=None) == "k"
        assert storage_key("k", faults="drop=0") == "k"

    def test_runner_does_not_cross_namespaces(self, tmp_path):
        cache = ResultCache(tmp_path, "h")
        plain = run_cells(CHEAP_CELLS[:1], jobs=1, cache=cache)
        assert plain.cache_misses == 1
        checked = run_cells(CHEAP_CELLS[:1], jobs=1, cache=cache,
                            checks="collect")
        assert checked.cache_misses == 1  # plain entry must not serve
        assert checked.results[0].metrics["invariant_violations"] == 0.0
        warm = run_cells(CHEAP_CELLS[:1], jobs=1, cache=cache,
                         checks="collect")
        assert warm.cache_hits == 1
        # The checked run's dynamics are identical to the plain run's.
        plain_metrics = plain.results[0].metrics
        for name, value in plain_metrics.items():
            assert checked.results[0].metrics[name] == value


class TestSeedStability:
    def test_cell_is_bit_identical_across_runs(self):
        """One registry cell executed twice in-process produces
        bit-identical metrics and artifact fingerprints — the property
        every cache hit and CI comparison silently relies on."""
        cell = CHEAP_CELLS[0]
        first = run_cells([cell], jobs=1)
        second = run_cells([cell], jobs=1)
        assert first.results[0].metrics == second.results[0].metrics
        doc_a = build_document(first, mode="quick", src_hash="s")
        doc_b = build_document(second, mode="quick", src_hash="s")
        assert cells_fingerprint(doc_a) == cells_fingerprint(doc_b)

        def stable(doc):
            # Wall-clock and cache provenance are bookkeeping, not
            # results; everything else must reproduce exactly.
            return json.dumps(
                [{k: v for k, v in cell.items()
                  if k not in ("wall_clock_s", "cached")}
                 for cell in doc["cells"]], sort_keys=True)

        assert stable(doc_a) == stable(doc_b)


def _document(metric=100.0, key_suffix=""):
    """A minimal one-cell artifact for checker tests."""
    return {
        "schema_version": "repro-harness/v1",
        "mode": "quick",
        "src_hash": "x",
        "run": {"jobs": 1, "cache_hits": 0, "cache_misses": 1,
                "cells": 1, "elapsed_s": 0.0, "cell_wall_clock_s": 0.0},
        "cells": [{
            "key": f"sendbuf/cc=reno/seed=0/size_kb=5{key_suffix}",
            "experiment": "sendbuf",
            "params": {"cc": "reno", "seed": 0, "size_kb": 5},
            "metrics": {"throughput_kbps": metric, "coarse_timeouts": 0},
            "wall_clock_s": 0.1,
            "cached": False,
        }],
    }


class TestArtifacts:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "doc.json"
        doc = _document()
        write_document(str(path), doc)
        assert load_document(str(path)) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "doc.json"
        doc = _document()
        doc["schema_version"] = "repro-harness/v999"
        path.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_document(str(path))

    def test_fingerprint_ignores_bookkeeping(self):
        a, b = _document(), _document()
        b["cells"][0]["wall_clock_s"] = 99.0
        b["cells"][0]["cached"] = True
        b["run"]["jobs"] = 8
        assert cells_fingerprint(a) == cells_fingerprint(b)
        b["cells"][0]["metrics"]["throughput_kbps"] += 1.0
        assert cells_fingerprint(a) != cells_fingerprint(b)

    def test_build_document_from_report(self):
        report = run_cells(CHEAP_CELLS[:1], jobs=1)
        doc = build_document(report, mode="quick", src_hash="abc")
        assert doc["schema_version"] == "repro-harness/v3"
        assert doc["src_hash"] == "abc"
        assert doc["run"]["cells"] == 1
        assert doc["run"]["backend"] == "local"
        assert doc["run"]["interrupted"] is False
        cell = doc["cells"][0]
        assert cell["key"] == CHEAP_CELLS[0].key
        assert cell["params"] == {"cc": "reno", "seed": 0, "size_kb": 5}
        assert cell["metrics"]["throughput_kbps"] > 0
        assert cell["worker"] is None and cell["attempts"] == 1


class TestCheck:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_identical_documents_pass(self, tmp_path, capsys):
        results = self._write(tmp_path, "r.json", _document())
        expected = self._write(tmp_path, "e.json", _document())
        assert check.main([results, expected]) == 0
        assert "OK" in capsys.readouterr().out

    def test_within_tolerance_passes(self, tmp_path):
        results = self._write(tmp_path, "r.json", _document(metric=110.0))
        expected = self._write(tmp_path, "e.json", _document(metric=100.0))
        assert check.main([results, expected, "--tolerance", "0.15"]) == 0

    def test_drift_fails(self, tmp_path, capsys):
        results = self._write(tmp_path, "r.json", _document(metric=130.0))
        expected = self._write(tmp_path, "e.json", _document(metric=100.0))
        assert check.main([results, expected, "--tolerance", "0.15"]) == 1
        assert "throughput_kbps" in capsys.readouterr().out

    def test_missing_cell_fails(self, tmp_path, capsys):
        doc = _document()
        doc["cells"] = []
        results = self._write(tmp_path, "r.json", doc)
        expected = self._write(tmp_path, "e.json", _document())
        assert check.main([results, expected]) == 1
        assert "missing cell" in capsys.readouterr().out

    def test_extra_cell_is_noted_but_passes(self, tmp_path, capsys):
        extra = _document()
        extra["cells"].append(dict(extra["cells"][0],
                                   key="sendbuf/cc=reno/seed=0/size_kb=99"))
        results = self._write(tmp_path, "r.json", extra)
        expected = self._write(tmp_path, "e.json", _document())
        assert check.main([results, expected]) == 0
        assert "not in baseline" in capsys.readouterr().out

    def test_unreadable_input_exits_2(self, tmp_path):
        expected = self._write(tmp_path, "e.json", _document())
        assert check.main([str(tmp_path / "absent.json"), expected]) == 2

    def test_near_zero_metrics_use_absolute_floor(self):
        # 0 expected timeouts vs 0 actual passes; vs 2 actual fails.
        assert check._within(0, 0, 0.15)
        assert not check._within(2, 0, 0.15)


class TestAggregate:
    def test_summarize_renders_each_experiment(self):
        report = run_cells(CHEAP_CELLS, jobs=1)
        doc = build_document(report, mode="quick", src_hash="x")
        text = summarize(doc["cells"])
        assert "send-buffer sweep" in text
        assert "Reno KB/s" in text

    def test_unknown_experiment_does_not_crash(self):
        cells = [{"key": "mystery/seed=0", "experiment": "mystery",
                  "params": {"seed": 0}, "metrics": {"x": 1.0}}]
        assert "mystery" in summarize(cells)


class TestCliRunAll:
    def test_run_all_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "results.json"
        assert main(["run-all", "--quick", "--experiments", "sendbuf",
                     "--jobs", "1", "--json", str(out_json),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        captured = capsys.readouterr()
        assert "send-buffer sweep" in captured.out
        assert "cell fingerprint:" in captured.out
        doc = load_document(str(out_json))
        assert doc["mode"] == "quick"
        assert all(c["experiment"] == "sendbuf" for c in doc["cells"])

    def test_list_mentions_run_all(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "run-all" in out and "telnet" in out
