"""Property-based robustness: TCP must survive arbitrary loss patterns.

Hypothesis drives random drop sets against both directions of the
bottleneck (data *and* ACKs) for every congestion-control policy, and
the invariants must hold regardless:

* the application receives exactly the bytes sent — no loss, no
  duplication, in order (the reassembly buffer's contract);
* sender sequence bookkeeping stays ordered
  (``snd_una <= snd_nxt <= snd_max``);
* the simulation goes quiet afterwards (no timer leaks).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.registry import make_cc

from helpers import make_pair

CC_NAMES = ("reno", "newreno", "tahoe", "vegas", "vegas-1,3", "dual",
            "card", "tri-s")


def lossy_wrap(queue, drop_indices, predicate=lambda p: True):
    """Drop the i-th matching packet for each i in *drop_indices*."""
    original = queue.offer
    state = {"n": 0}

    def offer(packet, now):
        if predicate(packet):
            state["n"] += 1
            if state["n"] in drop_indices:
                return False
        return original(packet, now)

    queue.offer = offer


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    cc_name=st.sampled_from(CC_NAMES),
    data_drops=st.sets(st.integers(min_value=1, max_value=80), max_size=12),
    ack_drops=st.sets(st.integers(min_value=1, max_value=80), max_size=12),
)
def test_exact_delivery_under_arbitrary_loss(cc_name, data_drops, ack_drops):
    size = 64 * 1024
    pair = make_pair(queue_capacity=30)
    sink = BulkSink(pair.proto_b, 9000)
    transfer = BulkTransfer(pair.proto_a, "B", 9000, size,
                            cc=make_cc(cc_name))
    lossy_wrap(pair.forward_queue, data_drops,
               predicate=lambda p: p.size > 500)
    reverse = pair.bottleneck.channel_from(pair.topology.router("R2")).queue
    lossy_wrap(reverse, ack_drops)
    pair.sim.run(until=600.0)

    conn = transfer.conn
    assert transfer.done, (cc_name, sorted(data_drops), sorted(ack_drops))
    # Exactly-once, in-order delivery.
    assert sink.bytes_received == size
    assert conn.stats.app_bytes_acked == size
    # Sequence bookkeeping invariants.
    assert conn.snd_una <= conn.snd_nxt <= conn.snd_max
    # Receiver holds no stray out-of-order bytes.
    server = sink.connections[0]
    assert server.recv.reasm.buffered_bytes == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data_drops=st.sets(st.integers(min_value=1, max_value=60), max_size=10),
)
def test_sack_delivery_under_arbitrary_loss(data_drops):
    """The SACK variants obey the same exactly-once contract."""
    size = 64 * 1024
    pair = make_pair(queue_capacity=30)
    sink = BulkSink(pair.proto_b, 9000, sack=True)
    transfer = BulkTransfer(pair.proto_a, "B", 9000, size,
                            cc=make_cc("vegas-sack"), sack=True)
    lossy_wrap(pair.forward_queue, data_drops,
               predicate=lambda p: p.size > 500)
    pair.sim.run(until=600.0)
    assert transfer.done
    assert sink.bytes_received == size
    board = transfer.conn.sack_board
    # Scoreboard fully consumed: nothing SACKed beyond snd_una remains
    # unacknowledged at the end.
    assert board.sacked_bytes() == 0
