"""Tests for the RED queueing discipline."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.red import REDQueue
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.units import kbps, ms


class P:
    size = 1000


class TestREDQueue:
    def _queue(self, **kwargs):
        defaults = dict(capacity=20, rng=random.Random(1),
                        min_th=3, max_th=9, max_p=0.1, weight=0.5)
        defaults.update(kwargs)
        return REDQueue(**defaults)

    def test_no_drops_below_min_threshold(self):
        queue = self._queue()
        for i in range(3):
            assert queue.offer(P(), float(i) * 0.001)
        assert queue.dropped == 0

    def test_forced_drops_above_max_threshold(self):
        queue = self._queue(weight=1.0)  # avg == instantaneous
        accepted = sum(queue.offer(P(), 0.001 * i) for i in range(30))
        # Once the average passes max_th (9), everything drops.
        assert queue.early_drops + queue.forced_drops > 0
        assert accepted <= 11

    def test_probabilistic_region_drops_some(self):
        queue = self._queue(weight=1.0, max_p=0.5)
        outcomes = []
        # Hold the queue between thresholds by draining as we fill.
        for i in range(200):
            outcomes.append(queue.offer(P(), 0.001 * i))
            if len(queue) > 6:
                queue.poll(0.001 * i)
        assert any(outcomes) and not all(outcomes)
        assert 0 < queue.early_drops < 200

    def test_idle_period_decays_average(self):
        queue = self._queue(weight=0.5, mean_packet_time=0.01)
        for i in range(8):
            queue.offer(P(), 0.001 * i)
        avg_loaded = queue.avg
        while queue.poll(0.01) is not None:
            pass
        queue.offer(P(), 10.0)  # long idle gap
        assert queue.avg < avg_loaded

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            self._queue(min_th=5, max_th=5)
        with pytest.raises(ConfigurationError):
            self._queue(max_p=0.0)
        with pytest.raises(ConfigurationError):
            self._queue(weight=0.0)

    def test_drop_accounting_consistent(self):
        queue = self._queue(weight=1.0)
        for i in range(50):
            queue.offer(P(), 0.001 * i)
        assert queue.dropped == queue.early_drops + queue.forced_drops
        assert queue.dropped_bytes == queue.dropped * 1000
        assert len(queue.drops) == queue.dropped


class TestREDEdgeCases:
    """Boundary parameters and the cold-start averaging regime."""

    def _queue(self, **kwargs):
        defaults = dict(capacity=20, rng=random.Random(1),
                        min_th=3, max_th=9, max_p=0.1, weight=0.5)
        defaults.update(kwargs)
        return REDQueue(**defaults)

    def test_min_equals_max_threshold_rejected(self):
        # A zero-width probabilistic region would divide by zero in
        # the drop-probability ramp; the constructor must refuse it.
        with pytest.raises(ConfigurationError):
            self._queue(min_th=5.0, max_th=5.0)
        with pytest.raises(ConfigurationError):
            self._queue(min_th=9.0, max_th=3.0)

    def test_zero_min_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            self._queue(min_th=0.0, max_th=9.0)
        with pytest.raises(ConfigurationError):
            self._queue(min_th=-1.0, max_th=9.0)

    def test_boundary_parameters_accepted(self):
        # max_p == 1 and weight == 1 are the inclusive upper bounds.
        queue = self._queue(max_p=1.0, weight=1.0)
        assert queue.offer(P(), 0.0)

    def test_zero_avg_warmup_suppresses_early_drops(self):
        """A cold queue must not early-drop: the EWMA starts at zero
        and with a small weight stays below min_th for many packets
        even when the instantaneous depth is far above it."""
        queue = self._queue(weight=0.002, min_th=3, max_th=9)
        for i in range(12):  # depth 12 > max_th, but avg ~= 0
            assert queue.offer(P(), 0.001 * i)
        assert queue.early_drops == 0
        assert queue.avg < queue.min_th

    def test_warmup_count_reset_below_min(self):
        # Below min_th the inter-drop counter re-arms at -1 so the
        # first packet of the next congestion epoch is never penalised
        # by a stale count.
        queue = self._queue(weight=1.0)
        for i in range(12):
            queue.offer(P(), 0.001 * i)
        while queue.poll(1.0) is not None:
            pass
        queue._update_avg(10.0)
        assert queue.avg < queue.min_th
        queue.offer(P(), 10.0)
        assert queue._count_since_drop == -1

    def test_ecn_marks_instead_of_early_drops(self):
        queue = self._queue(weight=1.0, max_p=1.0, ecn=True)
        packets = [Packet("A", "B", None, 1000, ecn_capable=True)
                   for _ in range(12)]
        for i, p in enumerate(packets):
            queue.offer(p, 0.001 * i)
        assert queue.marks > 0
        assert queue.early_drops == 0
        assert queue.marks == sum(p.ecn_marked for p in packets)

    def test_ecn_falls_back_to_drop_when_full(self):
        # A full queue cannot hold the packet, mark or not: the mark
        # substitution only applies while there is room.
        queue = self._queue(capacity=5, weight=1.0, max_p=1.0, ecn=True)
        packets = [Packet("A", "B", None, 1000, ecn_capable=True)
                   for _ in range(10)]
        for i, p in enumerate(packets):
            queue.offer(p, 0.001 * i)
        assert queue.dropped > 0
        assert len(queue) <= queue.capacity


class TestREDOnLink:
    def test_red_link_keeps_average_queue_short(self):
        """Reno over RED holds a shorter average queue than over
        drop-tail — the router-side analogue of what Vegas does
        end-to-end."""
        from repro.apps.bulk import BulkSink, BulkTransfer
        from repro.tcp.protocol import TCPProtocol

        def run(queue_factory):
            sim = Simulator()
            topo = Topology(sim)
            a, b = topo.add_host("A"), topo.add_host("B")
            r1, r2 = topo.add_router("R1"), topo.add_router("R2")
            topo.add_lan([a, r1])
            topo.add_lan([r2, b])
            link = topo.add_link(r1, r2, bandwidth=kbps(200), delay=ms(50),
                                 queue_capacity=10,
                                 queue_factory=queue_factory)
            topo.build_routes()
            pa, pb = TCPProtocol(a), TCPProtocol(b)
            BulkSink(pb, 9000)
            transfer = BulkTransfer(pa, "B", 9000, 512 * 1024)
            from repro.trace.tracer import RouterTracer

            tracer = RouterTracer(link.channel_from(r1).queue)
            sim.run(until=120.0)
            assert transfer.done
            return tracer.mean_depth(1.0), transfer

        rng = random.Random(7)
        droptail_depth, _ = run(None)
        red_depth, red_transfer = run(
            lambda name: REDQueue(10, rng, min_th=2, max_th=8,
                                  max_p=0.1, weight=0.02, name=name))
        assert red_depth < droptail_depth
        assert red_transfer.done
