"""Tests for the seeded fault-injection layer.

Covers the plan value object (parsing, profiles, canonical spec
rendering, validation), per-channel injector semantics (drop,
duplicate, reorder, jitter, flap), determinism across runs, and the
integration contract: TCP still completes transfers under faults, and
the invariant checker stays silent while they are injected.
"""

import pytest

from repro.checks import checking
from repro.core.registry import make_cc
from repro.errors import ConfigurationError
from repro.faults import PROFILES, FaultPlan, FaultSession, injecting
from repro.faults.injector import _channel_rng
from repro.units import kb

from helpers import make_pair, run_transfer


def _faulted_transfer(spec, cc="reno", nbytes=kb(64), **pair_kwargs):
    """One transfer with *spec* active; returns (session, pair, xfer)."""
    with injecting(spec) as session:
        pair = make_pair(**pair_kwargs)
        transfer = run_transfer(pair, nbytes, cc=make_cc(cc))
    return session, pair, transfer


class TestFaultPlan:
    def test_parse_key_value_spec(self):
        plan = FaultPlan.parse("drop=0.01,dup=0.005,seed=3")
        assert plan.drop == 0.01
        assert plan.duplicate == 0.005
        assert plan.seed == 3

    def test_parse_profiles(self):
        for name in PROFILES:
            plan = FaultPlan.parse(name)
            assert not plan.is_null()

    def test_key_spelling_normalised(self):
        # Hyphens and underscores are interchangeable; dup is an alias.
        a = FaultPlan.parse("reorder-hold=0.02,jitter_max=0.5,duplicate=0.1")
        b = FaultPlan.parse("reorder_hold=0.02,jitter-max=0.5,dup=0.1")
        assert a == b

    def test_describe_is_canonical(self):
        a = FaultPlan.parse("dup=0.5,drop=0.25")
        b = FaultPlan.parse("drop=0.25,duplicate=0.5")
        assert a.describe() == b.describe() == "drop=0.25,duplicate=0.5"
        assert FaultPlan.parse(a.describe()) == a

    def test_describe_of_default_plan_is_empty(self):
        assert FaultPlan().describe() == ""
        assert FaultPlan().is_null()

    def test_null_plan_detection(self):
        assert FaultPlan.parse("drop=0").is_null()
        assert FaultPlan.parse("reorder-hold=0.5").is_null()  # no trigger
        assert FaultPlan.parse("flap-period=5").is_null()  # never down
        assert not FaultPlan.parse("flap-period=5,flap-down=1").is_null()

    def test_target_filter(self):
        plan = FaultPlan.parse("drop=0.1,target=bottleneck")
        assert plan.matches("bottleneck:R1->R2")
        assert not plan.matches("lan0")
        assert FaultPlan.parse("drop=0.1").matches("anything")

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("drop=1.5")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("dup=-0.1")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("jitter-max=-1")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("flap-period=1,flap-down=2")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("drop=lots")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("seed=x")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("unknown-key=1")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("not-a-profile")


class TestChannelRng:
    def test_streams_are_deterministic(self):
        assert _channel_rng(0, "a").random() == _channel_rng(0, "a").random()

    def test_streams_are_independent(self):
        # Different channels and different seeds draw unrelated
        # streams, so faults on one link never shift another's.
        draws = {_channel_rng(0, "a").random(), _channel_rng(0, "b").random(),
                 _channel_rng(1, "a").random()}
        assert len(draws) == 3


class TestSessionAttachment:
    def test_null_plan_attaches_nothing(self):
        session = FaultSession(FaultPlan())

        class _Chan:
            name = "bottleneck"

        assert session.attach(_Chan()) is None
        assert session.injectors == []

    def test_target_filters_channels(self):
        # Channels are named "<src>-><dst>"; the filter is a substring
        # match, so "R1->" selects only the forward bottleneck hop.
        with injecting("drop=0.1,target=R1->") as session:
            pair = make_pair()
        names = [inj.channel.name for inj in session.injectors]
        assert names == ["R1->R2"]
        run_transfer(pair, kb(8), cc=make_cc("reno"))

    def test_totals_sums_counters(self):
        session, _, _ = _faulted_transfer("drop=0.05,seed=1")
        totals = session.totals()
        assert totals["corrupt_drops"] == sum(
            inj.corrupt_drops for inj in session.injectors)
        assert totals["corrupt_drops"] > 0


class TestInjectionSemantics:
    def test_corruption_drops_slow_the_transfer(self):
        _, _, clean = _faulted_transfer("drop=0")
        session, _, faulted = _faulted_transfer("drop=0.05,seed=1")
        assert clean.done and faulted.done
        assert session.totals()["corrupt_drops"] > 0
        assert faulted.finish_time > clean.finish_time

    def test_drop_everything_stalls(self):
        session, _, transfer = _faulted_transfer(
            "drop=1,target=R1->", nbytes=kb(8))
        assert not transfer.done
        assert session.totals()["corrupt_drops"] > 0

    def test_duplicates_reach_the_receiver(self):
        session, pair, transfer = _faulted_transfer("dup=0.2,seed=2")
        assert transfer.done
        assert session.totals()["duplicates"] > 0
        receivers = [conn.recv for proto in (pair.proto_a, pair.proto_b)
                     for conn in proto.connections.values()]
        assert sum(r.duplicate_segments for r in receivers) > 0

    def test_reordering_reaches_the_receiver(self):
        session, pair, transfer = _faulted_transfer(
            "reorder=0.1,reorder-hold=0.05,seed=3")
        assert transfer.done
        assert session.totals()["reorders"] > 0
        receivers = [conn.recv for proto in (pair.proto_a, pair.proto_b)
                     for conn in proto.connections.values()]
        assert sum(r.out_of_order_segments for r in receivers) > 0

    def test_jitter_spikes_fire(self):
        session, _, transfer = _faulted_transfer(
            "jitter=0.2,jitter-max=0.05,seed=4")
        assert transfer.done
        assert session.totals()["delay_spikes"] > 0

    def test_flap_schedule_is_deterministic(self):
        plan = FaultPlan.parse("flap-period=5,flap-down=1")
        session = FaultSession(plan)

        class _Chan:
            name = "c"

        injector = session.attach(_Chan())
        assert not injector.is_down(0.0)
        assert not injector.is_down(3.99)
        assert injector.is_down(4.0)
        assert injector.is_down(4.99)
        assert not injector.is_down(5.0)
        assert injector.is_down(9.5)

    def test_flap_drops_packets_while_down(self):
        # A tight schedule (200 ms dark each second) guarantees the
        # transfer overlaps several outages.
        session, _, transfer = _faulted_transfer(
            "flap-period=1,flap-down=0.2", nbytes=kb(128))
        assert session.totals()["flap_drops"] > 0
        assert transfer.done  # retransmissions ride out the outages


class TestDeterminism:
    def test_same_seed_same_faults_same_outcome(self):
        runs = [_faulted_transfer("heavy") for _ in range(2)]
        (s1, p1, t1), (s2, p2, t2) = runs
        assert s1.totals() == s2.totals()
        assert p1.sim.events_processed == p2.sim.events_processed
        assert t1.finish_time == t2.finish_time

    def test_different_seed_different_faults(self):
        s1, _, _ = _faulted_transfer("drop=0.05,seed=1")
        s2, _, _ = _faulted_transfer("drop=0.05,seed=2")
        assert s1.totals() != s2.totals() or \
            s1.injectors[0].rng.random() != s2.injectors[0].rng.random()


class TestFaultsUnderChecks:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_profiles_raise_no_violations(self, profile):
        # The conservation audit accounts for absorbed/duplicated
        # packets, so injected faults must never read as leaks.
        with checking() as chk:
            session, _, transfer = _faulted_transfer(profile, cc="vegas")
        assert chk.violations == []
        assert chk.audits > 0
        assert transfer.done

    def test_session_and_checker_compose_with_reno(self):
        with checking() as chk:
            session, _, transfer = _faulted_transfer("heavy", cc="reno",
                                                     nbytes=kb(128))
        assert chk.violations == []
        assert transfer.done
        assert sum(session.totals().values()) > 0
