"""Zero-window persist probes: backoff and measurement hygiene.

The persist machinery keeps a connection alive while the peer
advertises a zero window, but its probes are *not* normal data
segments: 4.4BSD backs the probe interval off exponentially
(TCPTV_PERSMIN up to TCPTV_PERSMAX), and a probe's RTT — measured
through a zero-window stall at the receiver — must never feed Vegas'
BaseRTT or be selected as the CAM distinguished segment.
"""

import pytest

from repro.core.vegas import VegasCC
from repro.tcp import constants as C
from repro.trace.records import Kind
from repro.trace.tracer import ConnectionTracer

from helpers import make_pair


def _persist_pair(cc=None, tracer=None, payload=2000):
    """A connected pair whose B side advertises a zero window.

    Returns ``(pair, conn, peer)`` with *payload* bytes queued on the
    A side: one MSS goes out against the handshake window, everything
    after stalls behind the peer's zero-window ACKs, and the sender
    enters persist.
    """
    pair = make_pair()
    accepted = []
    pair.proto_b.listen(9000, on_accept=accepted.append)
    conn = pair.proto_a.connect("B", 9000, cc=cc, tracer=tracer)
    pair.sim.run(until=2.0)
    peer = accepted[0]
    peer.recv.rcvbuf = 0  # every ACK from here on advertises wnd=0
    conn.app_send(payload)
    return pair, conn, peer


class TestPersistBackoff:
    def test_probe_interval_backs_off_exponentially(self):
        tracer = ConnectionTracer("persist")
        pair, conn, peer = _persist_pair(tracer=tracer)
        pair.sim.run(until=24.0)

        probes = tracer.of_kind(Kind.PROBE)
        assert conn.stats.persist_probes == len(probes)
        # ~22 s in persist is ~44 slow ticks.  One probe per tick (the
        # old behaviour) would send ~44 probes; the doubling schedule
        # (0.5, 1, 2, 4, 8, 16 s...) sends a handful.
        assert 3 <= len(probes) <= 10
        gaps = [b.time - a.time for a, b in zip(probes, probes[1:])]
        # Monotone non-decreasing gaps, and clear doubling overall.
        for earlier, later in zip(gaps, gaps[1:]):
            assert later >= earlier - 1e-9
        assert gaps[-1] >= 4 * gaps[0]
        # The backoff shift is recorded in the trace's b column.
        shifts = [int(p.b) for p in probes]
        assert shifts == sorted(shifts)
        assert shifts[0] == 0 and shifts[-1] >= 3

    def test_backoff_capped_at_persmax(self):
        assert C.MAX_PERSIST_TICKS * C.SLOW_TICK == pytest.approx(60.0)
        tracer = ConnectionTracer("persist")
        pair, conn, peer = _persist_pair(tracer=tracer)
        pair.sim.run(until=200.0)
        probes = tracer.of_kind(Kind.PROBE)
        gaps = [b.time - a.time for a, b in zip(probes, probes[1:])]
        assert max(gaps) <= C.MAX_PERSIST_TICKS * C.SLOW_TICK + C.SLOW_TICK

    def test_window_reopen_resets_backoff_and_resumes(self):
        pair, conn, peer = _persist_pair()
        pair.sim.run(until=10.0)
        assert conn.stats.persist_probes >= 3
        assert conn.unsent_bytes() > 0
        peer.recv.rcvbuf = C.DEFAULT_SOCKBUF  # window reopens
        # The next probe's ACK advertises the reopened window; the
        # stalled data then drains normally.
        pair.sim.run(until=40.0)
        assert conn.unsent_bytes() == 0
        assert conn.flight_size() == 0
        assert conn._persist_shift == 0
        assert conn._persist_countdown == 0


class TestPersistMeasurementHygiene:
    def test_probes_never_reach_congestion_control(self):
        pair, conn, peer = _persist_pair(cc=VegasCC())
        sent_to_cc = []
        original = conn.cc.on_segment_sent

        def spy(seq, length, end_seq, is_retx, now):
            sent_to_cc.append(end_seq)
            return original(seq, length, end_seq, is_retx, now)

        conn.cc.on_segment_sent = spy
        pair.sim.run(until=24.0)
        assert conn.stats.persist_probes >= 3
        # Only probes went out during persist: the CC never saw a send,
        # so no probe could be selected as the CAM distinguished segment.
        assert sent_to_cc == []
        assert conn.cc._cam_end_seq is None

    def test_probes_never_lower_base_rtt(self):
        pair, conn, peer = _persist_pair(cc=VegasCC())
        pair.sim.run(until=3.0)
        base_before = conn.fine_rtt.base_rtt
        assert base_before is not None  # set by the pre-stall data ACK
        pair.sim.run(until=60.0)
        assert conn.stats.persist_probes >= 4
        # Probe samples apply with update_base=False (like SYN/FIN
        # samples), so BaseRTT is bit-identical across the stall.
        assert conn.fine_rtt.base_rtt == base_before

    def test_probe_acks_do_not_feed_cc_rtt(self):
        pair, conn, peer = _persist_pair(cc=VegasCC())
        pair.sim.run(until=3.0)
        seen = []
        original = conn.cc.on_new_ack

        def spy(acked, now, sample):
            seen.append(sample)
            return original(acked, now, sample)

        conn.cc.on_new_ack = spy
        pair.sim.run(until=24.0)
        assert conn.stats.persist_probes >= 3
        # Probe ACKs still drive the window bookkeeping, but carry no
        # RTT sample.
        assert seen and all(sample is None for sample in seen)

    def test_persist_probe_stat_and_segments_counted(self):
        pair, conn, peer = _persist_pair()
        before = conn.stats.segments_sent
        pair.sim.run(until=10.0)
        assert conn.stats.persist_probes >= 3
        assert conn.stats.segments_sent >= before + conn.stats.persist_probes
