"""Property-based engine differential: fast path ≡ slowpath.

The optimized dispatch machinery — tuple heap, inline link-layer
pushes, the far-horizon calendar wheel, the hook-free run loops — must
be *bit-identical* in observable behaviour to the pre-optimization
object engine kept alive behind ``REPRO_ENGINE_SLOWPATH``.  This suite
is the property-level half of that gate (the 66-cell quick sweep vs
``baselines/expected.json`` is the other): Hypothesis drives random
scenarios through three engine configurations in-process — the env
vars are read at :class:`Simulator` construction, so no subprocesses
are needed — and asserts identical fingerprints:

* ``fast``      — the default engine, wheel at its stock threshold;
* ``wheel``     — ``REPRO_WHEEL_THRESHOLD=0``: every far event parks,
  exercising epoch advancement and bucket merges constantly;
* ``slowpath``  — the object heap, fresh allocation per event.

``far_events_peak`` is deliberately excluded from every fingerprint:
the slow path never parks events, so wheel occupancy is the one
counter allowed to differ by design.

Three scenario families:

1. **Event soups** — random nested scheduling programs mixing
   ``schedule`` / ``schedule_anon`` / ``schedule_at`` and handle
   cancellations, with near and far-horizon delays.  Pure scheduler
   differential, no protocol stack.
2. **Traced solo transfers** — one bulk transfer with a
   :class:`ConnectionTracer` attached, under a random fault profile;
   every tracer row must match exactly.
3. **Many-flows populations** — 2–64 tcplib conversations over the
   Figure-5 bottleneck (the tentpole workload), random seeds and
   fault profiles, compared down to per-connection final stats.
"""

import contextlib
import os
import random as pyrandom

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.engine import (SLOWPATH_ENV, WHEEL_THRESHOLD_ENV,
                              WHEEL_WIDTH_ENV, Simulator, last_simulator)

#: The engine configurations every scenario is replayed under.
MODES = {
    "fast": {},
    "wheel": {WHEEL_THRESHOLD_ENV: "0", WHEEL_WIDTH_ENV: "0.25"},
    "slowpath": {SLOWPATH_ENV: "1"},
}

_ENGINE_KEYS = (SLOWPATH_ENV, WHEEL_THRESHOLD_ENV, WHEEL_WIDTH_ENV)

#: Fault profiles drawn per example (None = clean network).
FAULT_PROFILES = (None, "light", "heavy", "flap")


@contextlib.contextmanager
def _engine_env(extra):
    """Run a block under exactly the engine env vars in *extra*."""
    saved = {key: os.environ.pop(key, None) for key in _ENGINE_KEYS}
    os.environ.update(extra)
    try:
        yield
    finally:
        for key in _ENGINE_KEYS:
            os.environ.pop(key, None)
            if saved[key] is not None:
                os.environ[key] = saved[key]


def _replay(fingerprint_fn):
    """Run *fingerprint_fn* under every mode; assert all agree."""
    prints = {}
    for mode, env in MODES.items():
        with _engine_env(env):
            prints[mode] = fingerprint_fn()
    assert prints["fast"] == prints["slowpath"], \
        "fast path diverged from slowpath"
    assert prints["wheel"] == prints["slowpath"], \
        "forced calendar wheel diverged from slowpath"


class TestEventSoupOrder:
    """Random scheduling programs fire in identical order everywhere."""

    @staticmethod
    def _run_soup(program_seed: int, seeds: int, budget: int):
        sim = Simulator()
        rng = pyrandom.Random(program_seed)
        fired = []
        live = {}          # handle id -> Event, removed when it fires
        remaining = [budget]
        next_id = [0]

        def fire(tag, hid=None):
            if hid is not None:
                live.pop(hid, None)
            fired.append((sim.now, tag))
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
            # Mix of near-term and far-horizon delays so the forced
            # wheel parks constantly while the heap still churns.
            delay = rng.random() * (20.0 if rng.random() < 0.3 else 0.05)
            kind = rng.randrange(3)
            tag = rng.randrange(10_000)
            if kind == 0:
                sim.schedule_anon(delay, fire, tag)
            elif kind == 1:
                hid = next_id[0] = next_id[0] + 1
                live[hid] = sim.schedule(delay, fire, tag, hid)
            else:
                hid = next_id[0] = next_id[0] + 1
                live[hid] = sim.schedule_at(sim.now + delay, fire, tag, hid)
            # Occasionally cancel a random still-pending handle (a
            # handle is only valid until it fires — `live` tracks
            # exactly that window).
            if live and rng.random() < 0.25:
                keys = list(live)
                sim.cancel(live.pop(keys[rng.randrange(len(keys))]))

        for _ in range(seeds):
            fire(rng.randrange(10_000))
        sim.run()
        return sim.events_processed, tuple(fired)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program_seed=st.integers(0, 2**32 - 1),
           seeds=st.integers(1, 12),
           budget=st.integers(0, 300))
    def test_dispatch_order_identical(self, program_seed, seeds, budget):
        _replay(lambda: self._run_soup(program_seed, seeds, budget))


class TestTracedTransferDifferential:
    """A traced bulk transfer leaves identical rows on every path."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16),
           cc=st.sampled_from(("reno", "vegas-1,3")),
           faults=st.sampled_from(FAULT_PROFILES))
    def test_tracer_rows_identical(self, seed, cc, faults):
        from repro.experiments.transfers import run_solo_transfer
        from repro.faults import injecting
        from repro.trace.tracer import ConnectionTracer
        from repro.units import kb

        def fingerprint():
            tracer = ConnectionTracer("diff")
            ctx = injecting(faults) if faults else contextlib.nullcontext()
            with ctx:
                result = run_solo_transfer(cc, size=kb(64), buffers=10,
                                           seed=seed, tracer=tracer)
            return (last_simulator().events_processed,
                    tuple(tracer.rows()),
                    result.throughput_kbps,
                    result.retransmitted_kb,
                    result.coarse_timeouts)

        _replay(fingerprint)


class TestManyFlowsDifferential:
    """2–64 tcplib conversations: identical down to per-flow stats."""

    @staticmethod
    def _population_fingerprint(flows: int, seed: int, cc: str,
                                faults):
        from repro.experiments.figure5 import build_figure5
        from repro.experiments.many_flows import HOST_PAIRS
        from repro.experiments.transfers import resolve_cc
        from repro.faults import injecting
        from repro.trafficgen import TrafficGenerator, TrafficServer

        ctx = injecting(faults) if faults else contextlib.nullcontext()
        with ctx:
            net = build_figure5(buffers=10, seed=seed)
            factory = resolve_cc(cc)
            share, extra = divmod(flows, len(HOST_PAIRS))
            generators = []
            for idx, (src, dst) in enumerate(HOST_PAIRS):
                quota = share + (1 if idx < extra else 0)
                if quota == 0:
                    continue
                rng = pyrandom.Random(
                    net.rng.stream(f"engine-diff-{idx}").random())
                TrafficServer(net.protocol(dst), rng, factory)
                gen = TrafficGenerator(net.protocol(src), dst, rng, factory,
                                       arrival_mean=1.5 / quota,
                                       max_conversations=quota)
                gen.start_prescheduled(0.0)
                generators.append(gen)
            net.sim.run(until=4.0)
            for gen in generators:
                gen.stop()

        per_conn = []
        for gen in generators:
            for conv in gen.conversations:
                for conn in conv.connections:
                    stats = conn.stats
                    per_conn.append((
                        conv.kind, conv.finished,
                        conn.snd_una, conn.snd_nxt,
                        stats.app_bytes_acked, stats.retransmitted_bytes,
                        stats.fast_retransmits, stats.fine_retransmits,
                        stats.rtt_samples, stats.rtt_min,
                        stats.last_ack_time,
                    ))
        return net.sim.events_processed, net.sim.now, tuple(per_conn)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(flows=st.integers(2, 64),
           seed=st.integers(0, 2**16),
           cc=st.sampled_from(("reno", "vegas-1,3")),
           faults=st.sampled_from(FAULT_PROFILES))
    def test_population_identical(self, flows, seed, cc, faults):
        _replay(lambda: self._population_fingerprint(flows, seed, cc,
                                                     faults))

    def test_thousand_flow_cell_matches_slowpath(self):
        """The headline 1,000-flow bench cell, once, fast vs slowpath.

        Too heavy for a Hypothesis example but exactly the population
        the calendar wheel exists for, so pin it explicitly.  The
        ``far_events_peak`` field is stripped: the slow path never
        parks events.
        """
        from repro.experiments.many_flows import many_flows_metrics

        def fingerprint():
            metrics = dict(many_flows_metrics(1000, 0))
            metrics.pop("far_events_peak")
            metrics["events"] = last_simulator().events_processed
            return metrics

        _replay(fingerprint)
