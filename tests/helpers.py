"""Shared test harness utilities.

``make_pair`` builds the smallest interesting network — two hosts
around a two-router bottleneck — and returns everything a TCP test
needs.  Keeping construction in one place keeps individual tests
focused on behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import PointToPointLink
from repro.net.node import Host
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tcp.protocol import TCPProtocol
from repro.units import kbps, ms


@dataclass
class Pair:
    """A two-host network with a configurable bottleneck."""

    sim: Simulator
    topology: Topology
    a: Host
    b: Host
    proto_a: TCPProtocol
    proto_b: TCPProtocol
    bottleneck: PointToPointLink

    @property
    def forward_queue(self):
        return self.bottleneck.channel_from(self.topology.router("R1")).queue


def make_pair(bandwidth: float = kbps(200), delay: float = ms(50),
              queue_capacity: int = 10, trace=None, loss: float = 0.0,
              loss_rng=None) -> Pair:
    """Two hosts, two routers, one bottleneck link."""
    sim = Simulator()
    topo = Topology(sim)
    a = topo.add_host("A")
    b = topo.add_host("B")
    r1 = topo.add_router("R1")
    r2 = topo.add_router("R2")
    topo.add_lan([a, r1])
    topo.add_lan([r2, b])
    bottleneck = topo.add_link(r1, r2, bandwidth=bandwidth, delay=delay,
                               queue_capacity=queue_capacity,
                               name="bottleneck", trace=trace, loss=loss,
                               loss_rng=loss_rng)
    topo.build_routes()
    return Pair(sim=sim, topology=topo, a=a, b=b,
                proto_a=TCPProtocol(a), proto_b=TCPProtocol(b),
                bottleneck=bottleneck)


def run_transfer(pair: Pair, nbytes: int, cc=None, until: float = 300.0,
                 port: int = 9000, **options):
    """Run one bulk transfer A→B on *pair*; returns the BulkTransfer."""
    from repro.apps.bulk import BulkSink, BulkTransfer

    BulkSink(pair.proto_b, port)
    transfer = BulkTransfer(pair.proto_a, "B", port, nbytes, cc=cc, **options)
    pair.sim.run(until=until)
    return transfer
