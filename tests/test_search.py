"""Tests for the black-box scenario search (src/repro/search/).

Covers the frozen search space, the seeded ask/tell strategies, the
driver loop (seed determinism, memoization, disk-cache reuse), the
repro-search/v1 artifact, the leaderboard renderer, the registry's
`search` family, and the CLI entry point.
"""

import json
import random

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.harness.cache import ResultCache
from repro.harness.dist.chaos import CHAOS_EXPERIMENT
from repro.harness.registry import Cell, family_cells
from repro.search.cells import cohort_horizon, parse_schemes
from repro.search.driver import (
    SEARCH_SCHEMA,
    build_search_document,
    family_preview_cells,
    load_search_document,
    render_leaderboard,
    run_search,
    write_search_document,
)
from repro.search.objectives import OBJECTIVES, Objective, get_objective
from repro.search.space import Dimension, SearchSpace
from repro.search.strategies import STRATEGIES, make_strategy


# ----------------------------------------------------------------------
# A cheap stub objective: cells are instant dist_chaos "ok" cells, and
# the fitness is a pure function of the point, so driver-level tests
# never pay for the simulator.
# ----------------------------------------------------------------------

STUB_SPACE = SearchSpace.of(
    Dimension.uniform("x", 0.0, 10.0),
    Dimension.log_uniform("rate", 1.0, 100.0),
    Dimension.integer("seed", 0, 3),
    Dimension.choice("flavor", "a", "b"),
)


def _stub_cells(point):
    return [Cell.make(CHAOS_EXPERIMENT, mode="ok", seed=point["seed"])]


def stub_objective(direction="max", scorer=None):
    def default_scorer(point, metrics):
        return -abs(point["x"] - 7.0)

    return Objective(name="stub", direction=direction,
                     description="distance from x=7", space=STUB_SPACE,
                     builder=_stub_cells,
                     scorer=scorer or default_scorer)


def trace(outcome):
    """The replayable identity of a search run."""
    return [(tuple(sorted(ev.point.items())), ev.cells, ev.fitness)
            for ev in outcome.evaluations]


# ----------------------------------------------------------------------
# Space
# ----------------------------------------------------------------------

class TestDimension:
    def test_factories_validate_bounds(self):
        with pytest.raises(ConfigurationError, match="low < high"):
            Dimension.uniform("x", 5.0, 5.0)
        with pytest.raises(ConfigurationError, match="positive"):
            Dimension.log_uniform("x", 0.0, 10.0)
        with pytest.raises(ConfigurationError, match="low < high"):
            Dimension.integer("x", 9, 3)
        with pytest.raises(ConfigurationError, match="at least one"):
            Dimension.choice("x")

    def test_samples_stay_in_bounds_and_are_quantized(self):
        rng = random.Random(7)
        uni = Dimension.uniform("u", 0.5, 123.456)
        log = Dimension.log_uniform("l", 2.0, 500.0)
        num = Dimension.integer("i", 3, 9)
        cat = Dimension.choice("c", "reno", "vegas")
        for _ in range(200):
            u, lo, i, c = (uni.sample(rng), log.sample(rng),
                           num.sample(rng), cat.sample(rng))
            assert 0.5 <= u <= 123.456
            assert 2.0 <= lo <= 500.0
            assert 3 <= i <= 9 and isinstance(i, int)
            assert c in ("reno", "vegas")
            # 4-sig-digit quantization: %g round-trips bit-identically,
            # which is what keeps cell keys stable.
            assert float(format(u, "g")) == u
            assert float(format(lo, "g")) == lo

    def test_mutate_and_blend_stay_in_bounds(self):
        rng = random.Random(11)
        for dim in STUB_SPACE.dimensions:
            value = dim.sample(rng)
            for _ in range(100):
                value = dim.mutate(value, rng)
                assert dim.clip(value) == value
            blended = dim.blend(dim.sample(rng), dim.sample(rng), rng)
            assert dim.clip(blended) == blended

    def test_refine_is_deterministic_and_deduped(self):
        uni = Dimension.uniform("u", 0.0, 10.0)
        values = uni.refine(5.0, span=1.0, levels=3)
        assert values == uni.refine(5.0, span=1.0, levels=3)
        assert len(values) == len(set(values))
        assert all(0.0 <= v <= 10.0 for v in values)
        cat = Dimension.choice("c", "a", "b", "c")
        assert cat.refine("b", span=0.25, levels=5) == ["a", "b", "c"]

    def test_clip_projects_back_inside(self):
        assert Dimension.uniform("u", 0.0, 1.0).clip(42.0) == 1.0
        assert Dimension.integer("i", 2, 8).clip(-3) == 2
        assert Dimension.choice("c", "a", "b").clip("zzz") == "a"


class TestSearchSpace:
    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ConfigurationError, match=">= 1 dimension"):
            SearchSpace.of()
        with pytest.raises(ConfigurationError, match="duplicate"):
            SearchSpace.of(Dimension.integer("x", 0, 1),
                           Dimension.uniform("x", 0.0, 1.0))

    def test_sample_covers_every_dimension(self):
        point = STUB_SPACE.sample(random.Random(0))
        assert tuple(point) == STUB_SPACE.names

    def test_unknown_dimension_lookup_raises(self):
        with pytest.raises(ConfigurationError, match="no dimension"):
            STUB_SPACE.dimension("nope")

    def test_space_is_hashable(self):
        assert hash(STUB_SPACE) == hash(
            SearchSpace.of(*STUB_SPACE.dimensions))


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def _drive(strategy_name, seed, rounds=6):
    """Ask/tell a strategy against a synthetic deterministic fitness."""
    strat = make_strategy(strategy_name, STUB_SPACE, seed)
    asked = []
    for _ in range(rounds):
        batch = strat.ask()
        asked.extend(tuple(sorted(p.items())) for p in batch)
        strat.tell([(p, -abs(p["x"] - 7.0)) for p in batch])
    return asked


class TestStrategies:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_same_seed_replays_identical_proposals(self, name):
        assert _drive(name, seed=5) == _drive(name, seed=5)

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_different_seed_changes_proposals(self, name):
        assert _drive(name, seed=5) != _drive(name, seed=6)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ConfigurationError, match="unknown search"):
            make_strategy("anneal", STUB_SPACE, 0)

    def test_genetic_pool_truncates_to_population(self):
        strat = make_strategy("genetic", STUB_SPACE, 3, population=4)
        for _ in range(5):
            batch = strat.ask()
            strat.tell([(p, p["x"]) for p in batch])
        assert len(strat.pool) == 4
        # Failed evaluations enter at -inf and are bred away from.
        strat.tell([(STUB_SPACE.sample(strat.rng), None)])
        assert all(f != float("-inf") for _, f in strat.pool)

    def test_grid_recenters_on_best(self):
        strat = make_strategy("grid", STUB_SPACE, 1)
        batch = strat.ask()
        best = max(batch, key=lambda p: -abs(p["x"] - 7.0))
        strat.tell([(p, -abs(p["x"] - 7.0)) for p in batch])
        assert strat.center == best


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

class TestRunSearch:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_seed_determinism_per_strategy(self, name):
        """Same space+seed+budget ⇒ identical evaluation sequence."""
        first = run_search(stub_objective(), strategy=name, budget=12,
                           seed=2, jobs=1)
        second = run_search(stub_objective(), strategy=name, budget=12,
                            seed=2, jobs=1)
        assert trace(first) == trace(second)
        assert first.best.point == second.best.point
        assert len(first.evaluations) == 12

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_different_seeds_explore_differently(self, name):
        a = run_search(stub_objective(), strategy=name, budget=8,
                       seed=0, jobs=1)
        b = run_search(stub_objective(), strategy=name, budget=8,
                       seed=1, jobs=1)
        assert trace(a) != trace(b)

    def test_cells_are_memoized_across_rounds(self):
        # The stub space has only 4 distinct cells (seed 0..3); a 16-
        # evaluation search must not run the harness 16 times.
        outcome = run_search(stub_objective(), strategy="random",
                             budget=16, seed=0, jobs=1)
        unique = {k for ev in outcome.evaluations for k in ev.cells}
        assert len(outcome.evaluations) == 16
        assert len(unique) <= 4
        assert len(outcome.report.results) == len(unique)

    def test_min_direction_ranks_smallest_first(self):
        outcome = run_search(stub_objective(direction="min"),
                             strategy="random", budget=10, seed=4, jobs=1)
        fitnesses = [ev.fitness for ev in outcome.ranked()]
        assert fitnesses == sorted(fitnesses)

    def test_scorer_none_marks_evaluation_failed(self):
        def scorer(point, metrics):
            return None if point["flavor"] == "a" else point["x"]

        outcome = run_search(stub_objective(scorer=scorer),
                             strategy="random", budget=12, seed=0, jobs=1)
        failed = [ev for ev in outcome.evaluations if ev.failed]
        scored = [ev for ev in outcome.evaluations if not ev.failed]
        assert failed and scored          # seed 0 draws both flavors
        assert all(ev.point["flavor"] == "b" for ev in scored)
        assert outcome.best.point["flavor"] == "b"

    def test_ranked_dedupes_repeated_points(self):
        outcome = run_search(stub_objective(), strategy="genetic",
                             budget=20, seed=1, jobs=1)
        frozen = [tuple(sorted(ev.point.items()))
                  for ev in outcome.ranked()]
        assert len(frozen) == len(set(frozen))

    def test_budget_must_be_positive(self):
        with pytest.raises(ReproError, match="budget"):
            run_search(stub_objective(), budget=0)

    def test_disk_cache_reuse_reevaluates_zero_cells(self, tmp_path):
        """A repeated search against a warm cache re-runs nothing."""
        objective = get_objective("vegas_regret", quick=True)

        def go():
            cache = ResultCache(str(tmp_path / "cache"), "searchhash")
            return run_search(objective, strategy="random", budget=4,
                              seed=3, jobs=1, cache=cache)

        first = go()
        second = go()
        unique = {k for ev in first.evaluations for k in ev.cells}
        assert first.report.cache_hits == 0
        assert first.report.cache_misses == len(unique)
        assert second.report.cache_misses == 0
        assert second.report.cache_hits == len(unique)
        assert trace(first) == trace(second)


# ----------------------------------------------------------------------
# Built-in objectives
# ----------------------------------------------------------------------

class TestObjectives:
    def test_registry_lists_all_three(self):
        assert OBJECTIVES == ("fairness_cliff", "table_calibrate",
                              "vegas_regret")

    def test_unknown_objective_raises(self):
        with pytest.raises(ConfigurationError, match="unknown search"):
            get_objective("goodput_cliff")

    @pytest.mark.parametrize("name", OBJECTIVES)
    def test_points_map_to_registered_search_cohort_cells(self, name):
        objective = get_objective(name, quick=True)
        point = objective.space.sample(random.Random(0))
        cells = objective.cells_for(point)
        assert cells
        for cell in cells:
            assert cell.experiment == "search_cohort"
            # The point's values survived the cell-key round trip.
            assert cell.key == Cell.make(cell.experiment,
                                         **dict(cell.params)).key

    def test_table_calibrate_runs_a_reno_and_a_vegas_cohort(self):
        objective = get_objective("table_calibrate", quick=True)
        point = objective.space.sample(random.Random(1))
        schemes = sorted(dict(c.params)["schemes"]
                         for c in objective.cells_for(point))
        assert schemes == ["reno+reno", "vegas+vegas"]


# ----------------------------------------------------------------------
# search_cohort cells and the registry family
# ----------------------------------------------------------------------

class TestSearchCohort:
    def test_parse_schemes_splits_on_plus(self):
        assert parse_schemes("reno+vegas") == ["reno", "vegas"]

    def test_parse_schemes_rejects_empty_and_oversized(self):
        with pytest.raises(ReproError):
            parse_schemes("")
        with pytest.raises(ReproError, match="capped at 16"):
            parse_schemes("+".join(["reno"] * 17))

    def test_cohort_horizon_is_bounded(self):
        assert cohort_horizon(1, 48, 1000.0) == 30.0
        assert cohort_horizon(8, 600, 50.0) == 240.0
        mid = cohort_horizon(2, 300, 50.0)
        assert 30.0 < mid < 240.0

    def test_search_cohort_cell_runs_through_the_harness(self):
        from repro.harness.runner import run_cells

        cell = Cell.make("search_cohort", schemes="reno+vegas",
                         bw_kbps=200.0, delay_ms=10.0, buffers=10,
                         size_kb=48, loss=0.0, seed=0)
        report = run_cells([cell], jobs=1, timeout_s=None)
        assert not report.failures
        metrics = report.results[0].metrics
        assert metrics["flows"] == 2.0
        for key in ("f0_throughput_kbps", "f1_throughput_kbps",
                    "fairness_index"):
            assert key in metrics

    def test_search_family_is_selectable(self):
        cells = family_cells("search", objective="vegas_regret",
                             count=3, seed=0, quick=True)
        assert cells
        assert all(c.experiment == "search_cohort" for c in cells)

    def test_family_preview_is_deterministic(self):
        first = family_preview_cells("fairness_cliff", count=4, seed=9,
                                     quick=True)
        second = family_preview_cells("fairness_cliff", count=4, seed=9,
                                      quick=True)
        assert [c.key for c in first] == [c.key for c in second]
        with pytest.raises(ReproError, match="count"):
            family_preview_cells("fairness_cliff", count=0)


# ----------------------------------------------------------------------
# Artifact + leaderboard
# ----------------------------------------------------------------------

class TestArtifact:
    def _outcome(self):
        return run_search(stub_objective(), strategy="random", budget=6,
                          seed=0, jobs=1)

    def test_document_round_trips(self, tmp_path):
        outcome = self._outcome()
        doc = build_search_document(outcome, top=3, src_hash="abc123")
        path = str(tmp_path / "search_result.json")
        write_search_document(path, doc)
        loaded = load_search_document(path)
        assert loaded == json.loads(json.dumps(doc))  # JSON-clean
        assert loaded["schema_version"] == SEARCH_SCHEMA
        assert loaded["run"]["evaluations"] == 6
        assert len(loaded["leaderboard"]) <= 3
        assert loaded["best"] == loaded["leaderboard"][0]
        assert loaded["src_hash"] == "abc123"
        assert loaded["space"] == STUB_SPACE.describe()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": "repro-search/v0"}))
        with pytest.raises(ReproError, match="schema"):
            load_search_document(str(path))
        with pytest.raises(ReproError, match="cannot read"):
            load_search_document(str(tmp_path / "missing.json"))

    def test_leaderboard_lists_ranked_points(self):
        outcome = self._outcome()
        board = render_leaderboard(outcome, top=5)
        assert "Search leaderboard — stub" in board
        assert "budget 6, seed 0" in board
        best = outcome.best
        assert f"{best.fitness:.3f}" in board

    def test_leaderboard_with_no_scored_points(self):
        outcome = run_search(
            stub_objective(scorer=lambda point, metrics: None),
            strategy="random", budget=3, seed=0, jobs=1)
        assert outcome.best is None
        assert "(no successful evaluations)" in render_leaderboard(outcome)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestSearchCli:
    def test_quick_search_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        result = str(tmp_path / "search_result.json")
        board = str(tmp_path / "leaderboard.md")
        code = main(["search", "--objective", "vegas_regret", "--quick",
                     "--strategy", "random", "--budget", "3", "--seed",
                     "0", "--jobs", "1", "--no-cache",
                     "--result", result, "--out", board])
        assert code == 0
        doc = load_search_document(result)
        assert doc["run"]["evaluations"] == 3
        captured = capsys.readouterr()
        assert "Search leaderboard — vegas_regret" in captured.out
        with open(board) as handle:
            assert "Search leaderboard" in handle.read()

    def test_bad_budget_exits_2(self, capsys):
        from repro.cli import main

        code = main(["search", "--objective", "vegas_regret",
                     "--budget", "0"])
        assert code == 2
        assert "--budget" in capsys.readouterr().err
