"""Tests for the fault-tolerant distributed sweep backend.

Covers the robustness contracts of :mod:`repro.harness.dist`: leases
expire and re-queue, dead workers are declared ``worker-lost`` and
their cells retried on respawned workers, stale results never settle
(no cache poisoning), the journal replays a killed master's run, the
drain path flushes partial results, zero reachable workers degrades to
the local supervised pool — and a distributed sweep's artifact carries
the same cells fingerprint as a local one.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ReproError
from repro.harness import build_document, cells_fingerprint, run_cells
from repro.harness.cache import ResultCache
from repro.harness.dist import journal as journal_mod
from repro.harness.dist import protocol
from repro.harness.dist.chaos import CHAOS_EXPERIMENT
from repro.harness.dist.lease import LeaseTable
from repro.harness.dist.master import run_distributed
from repro.harness.registry import (
    Cell,
    cell_budget,
    register_timeout_hint,
    timeout_hint,
)
from repro.harness.runner import storage_key
from repro.harness.supervisor import retry_backoff, run_supervised

posix_only = pytest.mark.skipif(
    os.name != "posix", reason="dist worker-failure tests use signals")

PRELOAD = ["repro.harness.dist.chaos"]

#: Fast master tuning shared by the integration tests.
FAST = dict(heartbeat_interval_s=0.1, heartbeat_misses=4,
            backoff_base=0.01, lease_grace_s=0.3)

#: The same tuning as ``dist_options`` for run_cells, which forwards
#: ``backoff_base`` itself.
FAST_OPTS = {k: v for k, v in FAST.items() if k != "backoff_base"}


def chaos(mode, **params):
    return Cell.make(CHAOS_EXPERIMENT, mode=mode, **params)


def _src_dir():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_src_dir()] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                        else []))
    return env


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_round_trip(self):
        msg = protocol.result("w1", "L3", "k", {"m": 1.5}, 0.25)
        assert protocol.decode(protocol.encode(msg)) == msg

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'{"no": "type"}\n')

    def test_encode_is_wire_safe_for_arbitrary_detail(self):
        # Failure detail may carry arbitrary diagnostic objects.
        msg = protocol.fail("w1", "L1", "k", "crash", "boom",
                            {"obj": object()}, 0.0)
        assert b"crash" in protocol.encode(msg)

    def test_grant_cell_round_trip(self):
        cell = Cell.make("table2", proto="reno", buffers=10, seed=0)
        msg = protocol.decode(protocol.encode(
            protocol.grant("L1", cell, 1, 60.0)))
        assert protocol.cell_from_grant(msg) == cell

    def test_hello_version_gate(self):
        ok = protocol.hello("w9", 123)
        assert protocol.check_hello(ok) == "w9"
        stale = dict(ok, version="repro-dist/v0")
        with pytest.raises(protocol.ProtocolError, match="mixed checkouts"):
            protocol.check_hello(stale)
        with pytest.raises(protocol.ProtocolError):
            protocol.check_hello(dict(ok, worker_id=""))


# ----------------------------------------------------------------------
# Lease table (pure state machine, fake clock, no processes)
# ----------------------------------------------------------------------

class TestLeaseTable:
    def _table(self, cells=2, timeout_s=10.0, retries=1, **kw):
        cs = [chaos("ok", seed=i) for i in range(cells)]
        return LeaseTable(cs, timeout_s=timeout_s, retries=retries,
                          backoff_base=0.05, lease_grace_s=1.0, **kw)

    def test_grants_longest_declared_budget_first(self):
        # Longest-first packing: a 1,000-flow cell granted FIFO-last
        # was the straggler tail of every dist sweep (ROADMAP PR 9
        # headroom).  The pending queue orders by declared cell_budget
        # descending, so the big cells lease out first.
        small = [chaos("ok", seed=i) for i in range(2)]      # 10s default
        big = Cell.make("many_flows", flows=1000, seed=0)     # 1200s hint
        medium = Cell.make("many_flows", flows=200, seed=0)   # 240s hint
        table = LeaseTable(small + [medium, big], timeout_s=10.0,
                           retries=0, lease_grace_s=1.0)
        granted = [table.grant(f"w{i}", now=0.0).task.cell
                   for i in range(4)]
        assert granted[0] == big
        assert granted[1] == medium
        # Equal budgets keep their submission order (stable sort).
        assert granted[2:] == small

    def test_unsupervised_queue_keeps_submission_order(self):
        cells = [chaos("ok", seed=i) for i in range(3)]
        table = LeaseTable(cells, timeout_s=None, retries=0)
        assert [t.cell for t in table.pending] == cells

    def test_grant_sizes_deadline_from_budget_plus_grace(self):
        table = self._table(timeout_s=10.0)
        lease = table.grant("w1", now=100.0)
        assert lease.budget_s == 10.0
        assert lease.deadline == pytest.approx(111.0)  # budget + grace

    def test_settle_ok_completes_the_cell(self):
        table = self._table(cells=1)
        lease = table.grant("w1", now=0.0)
        task = table.settle_ok(lease.lease_id, "w1", {"m": 1.0}, 0.5)
        assert task is not None and task.attempts == 1
        assert table.done and len(table.successes) == 1

    def test_fail_retries_with_deterministic_backoff_then_quarantines(self):
        table = self._table(cells=1, retries=1)
        lease = table.grant("w1", now=0.0)
        settled = table.settle_fail(lease.lease_id, "w1", "crash", "boom",
                                    {}, 0.1, now=5.0)
        task, (action, backoff) = settled
        assert action == "retry"
        assert backoff == pytest.approx(retry_backoff(task.key, 1, 0.05))
        assert task.not_before == pytest.approx(5.0 + backoff)
        # Second failure exhausts the retry budget.
        lease = table.grant("w2", now=task.not_before + 0.01)
        _, (action, _) = table.settle_fail(lease.lease_id, "w2", "crash",
                                           "boom again", {}, 0.1, now=6.0)
        assert action == "quarantine"
        assert table.failures[0].kind == "crash"
        assert table.failures[0].attempts == 2
        assert len(table.failures[0].attempt_log) == 2

    def test_backoff_gates_the_queue(self):
        table = self._table(cells=1, retries=2)
        lease = table.grant("w1", now=0.0)
        task, _ = table.settle_fail(lease.lease_id, "w1", "crash", "x",
                                    {}, 0.0, now=10.0)
        assert table.next_due(now=10.0) is None       # gate closed
        assert table.earliest_gate() == task.not_before
        assert table.next_due(now=task.not_before) is task

    def test_expiry_requeues_as_timeout_and_stale_result_is_dropped(self):
        table = self._table(cells=1, timeout_s=5.0, retries=1)
        lease = table.grant("w1", now=0.0)
        assert table.expired(now=5.9) == []           # inside grace
        assert table.expired(now=6.1) == [lease]
        action, _ = table.expire(lease, now=6.1)
        assert action == "retry"
        assert table.expired_leases == 1
        assert lease.task.attempt_log[0]["kind"] == "timeout"
        # The worker finishes late: its result must NOT settle the cell
        # (the cell may already be running elsewhere) — this is the
        # no-cache-poisoning guarantee at the lease layer.
        assert table.settle_ok(lease.lease_id, "w1", {"m": 1.0}, 9.0) is None
        assert table.stale_results == 1
        assert not table.successes

    def test_result_from_wrong_worker_is_stale(self):
        table = self._table(cells=1)
        lease = table.grant("w1", now=0.0)
        assert table.settle_ok(lease.lease_id, "w2", {"m": 1.0}, 0.1) is None
        assert table.stale_results == 1
        # The true holder still settles fine.
        assert table.settle_ok(lease.lease_id, "w1", {"m": 1.0}, 0.1)

    def test_revoke_worker_uses_worker_lost_kind(self):
        table = self._table(cells=2, retries=0)
        l1 = table.grant("w1", now=0.0)
        l2 = table.grant("w1", now=0.0)
        revoked = table.revoke_worker("w1", "heartbeat silence", now=1.0)
        assert {lease.lease_id for lease, _ in revoked} == {l1.lease_id,
                                                            l2.lease_id}
        assert all(kind == "quarantine" for _, (kind, _) in revoked)
        assert {f.kind for f in table.failures} == {"worker-lost"}
        assert not table.leases

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LeaseTable([], timeout_s=10.0, retries=-1)
        with pytest.raises(ValueError):
            LeaseTable([], timeout_s=0.0, retries=1)


# ----------------------------------------------------------------------
# Per-cell timeout hints (satellite: registry budgets size leases)
# ----------------------------------------------------------------------

class TestTimeoutHints:
    def test_many_flows_declares_its_own_budget(self):
        big = Cell.make("many_flows", flows=1000, seed=0)
        small = Cell.make("many_flows", flows=10, seed=0)
        assert timeout_hint(big) == pytest.approx(1200.0)
        assert cell_budget(big, 120.0) == pytest.approx(1200.0)
        # Hints only widen: the quick cell keeps the sweep deadline.
        assert cell_budget(small, 120.0) == 180.0
        assert cell_budget(big, None) is None

    def test_hint_never_shrinks_the_global_timeout(self):
        cell = Cell.make("many_flows", flows=10, seed=0)
        assert cell_budget(cell, 500.0) == 500.0

    def test_lease_budget_uses_the_hint(self):
        table = LeaseTable([Cell.make("many_flows", flows=1000, seed=0)],
                           timeout_s=120.0, retries=0, lease_grace_s=2.0)
        lease = table.grant("w1", now=0.0)
        assert lease.budget_s == pytest.approx(1200.0)
        assert lease.deadline == pytest.approx(1202.0)

    def test_runtime_registration_round_trip(self):
        from repro.harness.registry import (
            _TIMEOUT_HINTS,
            register_experiment,
            unregister_experiment,
        )

        register_experiment("hintx", lambda seed: {"m": 0.0})
        register_timeout_hint("hintx", 77.0)
        try:
            assert cell_budget(Cell.make("hintx", seed=0), 10.0) == 77.0
        finally:
            unregister_experiment("hintx")
        assert "hintx" not in _TIMEOUT_HINTS  # unregister cleans hints

    @pytest.mark.parametrize("hint, match", [
        (lambda params: 1 / 0, "raised ZeroDivisionError"),
        (lambda params: float("nan"), "invalid budget"),
        (lambda params: -5.0, "invalid budget"),
        (0.0, "invalid budget"),
        (lambda params: "soon", "non-numeric budget"),
    ])
    def test_bad_hints_raise_a_clear_error_naming_the_experiment(
            self, hint, match):
        # A raising / negative / NaN hint used to pass through
        # unvalidated and crash the supervisor or dist master
        # mid-sweep; now it's a typed ReproError at use time.
        from repro.harness.registry import (
            register_experiment,
            unregister_experiment,
        )

        register_experiment("badhint", lambda seed: {"m": 0.0})
        register_timeout_hint("badhint", hint)
        cell = Cell.make("badhint", seed=0)
        try:
            with pytest.raises(ReproError, match=match) as excinfo:
                cell_budget(cell, 10.0)
            assert "badhint" in str(excinfo.value)
        finally:
            unregister_experiment("badhint")

    def test_bad_hint_fails_fast_when_building_the_lease_table(self):
        from repro.harness.registry import (
            register_experiment,
            unregister_experiment,
        )

        register_experiment("badhint2", lambda seed: {"m": 0.0})
        register_timeout_hint("badhint2", lambda params: float("nan"))
        try:
            with pytest.raises(ReproError, match="badhint2"):
                LeaseTable([Cell.make("badhint2", seed=0)],
                           timeout_s=10.0, retries=0)
        finally:
            unregister_experiment("badhint2")


# ----------------------------------------------------------------------
# Journal + replay
# ----------------------------------------------------------------------

class TestJournal:
    def test_write_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with journal_mod.RunJournal(path) as journal:
            journal.record("run.start", src_hash="abc", cells=2)
            journal.record("grant", key="k1", worker="w1")
            journal.record("result", key="k1", metrics={"m": 1.0},
                           wall_clock_s=0.5, worker="w1", attempts=1,
                           attempt_log=[])
            journal.record("quarantine",
                           failure={"key": "k2", "experiment": "x",
                                    "kind": "crash", "message": "boom",
                                    "attempts": 2, "wall_clock_s": 0.1})
        state = journal_mod.replay(path, src_hash="abc")
        assert state.src_hash == "abc"
        assert state.results["k1"]["metrics"] == {"m": 1.0}
        assert state.failures["k2"]["kind"] == "crash"
        assert state.settled == 2 and not state.truncated

    def test_result_supersedes_quarantine(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with journal_mod.RunJournal(path) as journal:
            journal.record("quarantine", failure={"key": "k1",
                                                  "kind": "timeout"})
            journal.record("result", key="k1", metrics={"m": 2.0})
        state = journal_mod.replay(path)
        assert "k1" in state.results and not state.failures

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with journal_mod.RunJournal(path) as journal:
            journal.record("run.start", src_hash="abc")
            journal.record("result", key="k1", metrics={})
        with open(path, "a") as handle:
            handle.write('{"rec": "result", "key": "k2", "metr')  # torn
        state = journal_mod.replay(path)
        assert state.truncated and "k1" in state.results
        assert "k2" not in state.results

    def test_malformed_mid_file_raises(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with open(path, "w") as handle:
            handle.write("garbage line\n")
            handle.write('{"rec": "result", "key": "k1", "metrics": {}}\n')
        with pytest.raises(ReproError, match="malformed"):
            journal_mod.replay(path)

    def test_src_hash_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with journal_mod.RunJournal(path) as journal:
            journal.record("run.start", src_hash="a" * 20)
        with pytest.raises(ReproError, match="different"):
            journal_mod.replay(path, src_hash="b" * 20)

    def test_existing_journal_refused_without_resume(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal_mod.RunJournal(path).close()
        with pytest.raises(ReproError, match="resume"):
            journal_mod.RunJournal(path)
        journal_mod.RunJournal(path, resume=True).close()  # resume appends


# ----------------------------------------------------------------------
# End-to-end worker-failure modes (chaos cells, real processes)
# ----------------------------------------------------------------------

@posix_only
class TestDistExecution:
    def test_clean_sweep_records_worker_provenance(self):
        cells = [chaos("ok", seed=s) for s in range(4)]
        ok, fail, interrupted = run_distributed(
            cells, timeout_s=30.0, retries=1, workers=2, preload=PRELOAD,
            **FAST)
        assert not fail and not interrupted
        assert sorted(r.key for r in ok) == sorted(c.key for c in cells)
        assert all(r.worker for r in ok)
        assert all(r.attempts == 1 and not r.attempt_log for r in ok)

    def test_os_exit_mid_cell_is_worker_lost_and_siblings_complete(self):
        cells = [chaos("exit", seed=0), chaos("ok", seed=1)]
        ok, fail, _ = run_distributed(
            cells, timeout_s=30.0, retries=1, workers=2, preload=PRELOAD,
            **FAST)
        assert [r.key for r in ok] == [chaos("ok", seed=1).key]
        (failure,) = fail
        assert failure.kind == "worker-lost"
        assert failure.attempts == 2          # retried on a respawn first
        assert all(e["kind"] == "worker-lost" for e in failure.attempt_log)

    def test_flaky_cell_retries_on_deterministic_backoff(self, tmp_path):
        cell = chaos("flaky", seed=0, scratch=str(tmp_path))
        ok, fail, _ = run_distributed(
            [cell], timeout_s=30.0, retries=1, workers=1, preload=PRELOAD,
            **FAST)
        assert not fail
        (record,) = ok
        assert record.attempts == 2
        (first,) = record.attempt_log
        assert first["kind"] == "crash"
        assert first["backoff_s"] == round(
            retry_backoff(cell.key, 1, FAST["backoff_base"]), 6)

    def test_sleep_past_lease_budget_expires_as_timeout(self):
        cells = [chaos("sleep", delay=30.0, seed=0)]
        ok, fail, _ = run_distributed(
            cells, timeout_s=0.5, retries=0, workers=1, preload=PRELOAD,
            **FAST)
        assert not ok
        (failure,) = fail
        assert failure.kind == "timeout"
        assert "lease expired" in failure.message

    def test_heartbeat_silence_is_worker_lost(self):
        cells = [chaos("stop", seed=0)]                # SIGSTOPs itself
        started = time.monotonic()
        ok, fail, _ = run_distributed(
            cells, timeout_s=60.0, retries=0, workers=1, preload=PRELOAD,
            **FAST)
        assert not ok
        (failure,) = fail
        assert failure.kind == "worker-lost"
        assert "heartbeat" in failure.message
        # Detected by beat silence (~0.4s), not the 60s cell budget.
        assert time.monotonic() - started < 30.0

    def test_quarantined_cells_never_reach_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), "hash")
        cells = [chaos("crash", seed=0), chaos("ok", seed=1)]
        report = run_cells(cells, jobs=1, cache=cache, backend="dist",
                           timeout_s=30.0, retries=0,
                           dist_options=dict(workers=1, preload=PRELOAD,
                                             **FAST_OPTS))
        assert [f.kind for f in report.failures] == ["crash"]
        assert cache.get(storage_key(chaos("crash", seed=0).key)) is None
        assert cache.get(storage_key(chaos("ok", seed=1).key)) is not None

    def test_degrades_to_local_pool_when_no_worker_reachable(self):
        cells = [chaos("ok", seed=s) for s in range(2)]
        ok, fail, interrupted = run_distributed(
            cells, timeout_s=30.0, retries=0, workers=0,
            connect_timeout_s=0.3, fallback_jobs=2)
        assert not fail and not interrupted
        assert sorted(r.key for r in ok) == sorted(c.key for c in cells)
        assert all(r.worker is None for r in ok)      # ran locally

    def test_dist_metrics_and_fingerprint_match_local(self, tmp_path):
        cells = [Cell.make("sendbuf", cc="reno", size_kb=5, seed=0),
                 Cell.make("sendbuf", cc="vegas", size_kb=5, seed=0)]
        local = run_cells(cells, jobs=1, timeout_s=60.0)
        dist = run_cells(cells, jobs=1, backend="dist", timeout_s=60.0,
                         dist_options=dict(workers=2, **FAST_OPTS))
        doc_local = build_document(local, mode="quick", src_hash="h")
        doc_dist = build_document(dist, mode="quick", src_hash="h")
        assert cells_fingerprint(doc_local) == cells_fingerprint(doc_dist)
        assert doc_dist["run"]["backend"] == "dist"
        assert all(c["worker"] for c in doc_dist["cells"])


# ----------------------------------------------------------------------
# Master kill + resume, and SIGINT drain (the acceptance scenarios)
# ----------------------------------------------------------------------

_KILL_DRIVER = """\
import sys
from repro.harness.registry import Cell
from repro.harness.dist.master import run_distributed

cells = [Cell.make("dist_chaos", mode="ok", delay=0.4, seed=s)
         for s in range(8)]
ok, fail, interrupted = run_distributed(
    cells, timeout_s=30.0, retries=1, workers=1,
    journal=sys.argv[1], src_hash="kill-test",
    preload=["repro.harness.dist.chaos"],
    heartbeat_interval_s=0.1, heartbeat_misses=4, backoff_base=0.01)
print(f"DONE ok={len(ok)} fail={len(fail)} intr={interrupted}", flush=True)
"""


def _count_results(journal_path):
    if not os.path.exists(journal_path):
        return 0
    count = 0
    with open(journal_path) as handle:
        for line in handle:
            try:
                if json.loads(line).get("rec") == "result":
                    count += 1
            except ValueError:
                pass
    return count


@posix_only
class TestKillAndResume:
    def test_master_sigkill_then_resume_completes_the_run(self, tmp_path):
        journal = str(tmp_path / "run.journal")
        driver = tmp_path / "driver.py"
        driver.write_text(_KILL_DRIVER)
        proc = subprocess.Popen([sys.executable, str(driver), journal],
                                env=_env(), stdout=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 60.0
            while _count_results(journal) < 2:
                assert proc.poll() is None, "driver finished before kill"
                assert time.monotonic() < deadline, "no results in time"
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait()

        state = journal_mod.replay(journal, src_hash="kill-test")
        replayed = len(state.results)
        assert 2 <= replayed < 8

        cells = [chaos("ok", delay=0.4, seed=s) for s in range(8)]
        ok, fail, interrupted = run_distributed(
            cells, timeout_s=30.0, retries=1, workers=1,
            journal=journal, resume=True, src_hash="kill-test",
            preload=PRELOAD, **FAST)
        assert not fail and not interrupted
        assert sorted(r.key for r in ok) == sorted(c.key for c in cells)
        # Metrics are identical whether served from the journal or
        # recomputed — the resumed run is indistinguishable.
        for record in ok:
            assert record.metrics["value"] == float(
                record.cell.as_dict()["seed"])
        # Resuming again serves everything from the journal.
        ok2, fail2, _ = run_distributed(
            cells, timeout_s=30.0, retries=1, workers=1,
            journal=journal, resume=True, src_hash="kill-test",
            preload=PRELOAD, **FAST)
        assert len(ok2) == 8 and not fail2

    def test_resume_refuses_wrong_src_hash(self, tmp_path):
        journal = str(tmp_path / "run.journal")
        with journal_mod.RunJournal(journal) as handle:
            handle.record("run.start", src_hash="other-tree")
        with pytest.raises(ReproError, match="different"):
            run_distributed([chaos("ok", seed=0)], timeout_s=5.0,
                            retries=0, workers=0, journal=journal,
                            resume=True, src_hash="this-tree")

    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            run_distributed([chaos("ok", seed=0)], timeout_s=5.0,
                            retries=0, workers=0,
                            journal=str(tmp_path / "missing.journal"),
                            resume=True)


_SIGINT_DRIVER = """\
from repro.harness.registry import Cell
from repro.harness.dist.master import run_distributed

cells = [Cell.make("dist_chaos", mode="ok", delay=0.4, seed=s)
         for s in range(20)]
ok, fail, interrupted = run_distributed(
    cells, timeout_s=30.0, retries=1, workers=1,
    preload=["repro.harness.dist.chaos"],
    heartbeat_interval_s=0.1, heartbeat_misses=4, backoff_base=0.01,
    progress=lambda line: print("P " + line, flush=True))
print(f"DONE ok={len(ok)} fail={len(fail)} intr={interrupted}", flush=True)
"""


@posix_only
class TestDrain:
    def test_sigint_drains_with_partial_results(self, tmp_path):
        driver = tmp_path / "driver.py"
        driver.write_text(_SIGINT_DRIVER)
        proc = subprocess.Popen([sys.executable, str(driver)], env=_env(),
                                stdout=subprocess.PIPE, text=True)
        settle = re.compile(r": \d+\.\d+s")
        interrupted_sent = False
        final = ""
        deadline = time.monotonic() + 60.0
        try:
            for line in proc.stdout:
                if (not interrupted_sent and line.startswith("P ")
                        and settle.search(line)):
                    interrupted_sent = True
                    proc.send_signal(signal.SIGINT)
                if line.startswith("DONE"):
                    final = line
                    break
                assert time.monotonic() < deadline
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait()
        assert "intr=True" in final
        done = int(final.split("ok=")[1].split()[0])
        assert 1 <= done < 20                 # partial, not all, not none

    def test_local_supervised_drain_keeps_settled_cells(self):
        # The same drain contract on the local pool (satellite 2): a
        # KeyboardInterrupt mid-sweep keeps what settled and reports
        # interrupted instead of dying with a traceback.
        cells = [Cell.make("sendbuf", cc="reno", size_kb=5, seed=0),
                 Cell.make("sendbuf", cc="vegas", size_kb=5, seed=0),
                 Cell.make("sendbuf", cc="reno", size_kb=20, seed=0)]
        fired = []

        def interrupt_once(line):
            if not fired:
                fired.append(line)
                raise KeyboardInterrupt

        ok, fail, interrupted = run_supervised(
            cells, jobs=1, timeout_s=60.0, retries=0,
            progress=interrupt_once)
        assert interrupted and not fail
        assert 1 <= len(ok) < len(cells)

    def test_serial_runner_drain_sets_interrupted(self):
        cells = [Cell.make("sendbuf", cc="reno", size_kb=5, seed=0),
                 Cell.make("sendbuf", cc="vegas", size_kb=5, seed=0)]
        fired = []

        def interrupt_once(line):
            if not fired:
                fired.append(line)
                raise KeyboardInterrupt

        report = run_cells(cells, jobs=1, progress=interrupt_once)
        assert report.interrupted
        assert 1 <= len(report.results) < len(cells)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

class TestDistCLI:
    def test_journal_subcommand_summarizes(self, tmp_path, capsys):
        from repro import cli

        path = str(tmp_path / "run.journal")
        with journal_mod.RunJournal(path) as journal:
            journal.record("run.start", src_hash="abc123" * 8)
            journal.record("result", key="k1", metrics={"m": 1.0})
            journal.record("quarantine",
                           failure={"key": "k2", "kind": "worker-lost",
                                    "attempts": 2})
        assert cli.main(["dist", "journal", path]) == 0
        out = capsys.readouterr().out
        assert "results: 1" in out
        assert "quarantined: 1" in out
        assert "worker-lost" in out

    def test_journal_subcommand_rejects_missing_file(self, tmp_path):
        from repro import cli

        assert cli.main(["dist", "journal",
                         str(tmp_path / "nope.journal")]) == 2

    def test_run_all_rejects_journal_without_dist_backend(self, capsys):
        from repro import cli

        code = cli.main(["run-all", "--quick", "--journal", "x.journal"])
        assert code == 2
        assert "--backend dist" in capsys.readouterr().err

    def test_dist_run_resume_without_journal_is_an_error(self, capsys):
        from repro import cli

        code = cli.main(["dist", "run", "--quick",
                         "--experiments", "figure6", "--no-cache",
                         "--resume"])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err
