"""Integration tests for TCP connections over the simulated network."""

import pytest

from repro.core.reno import RenoCC
from repro.errors import ProtocolError
from repro.tcp.connection import State
from repro.trace.records import Kind
from repro.trace.tracer import ConnectionTracer
from repro.units import kbps

from helpers import make_pair, run_transfer


def drop_next(queue, count):
    """Force the next *count* offers to this queue to be dropped."""
    original = queue.offer
    state = {"left": count}

    def lossy(packet, now):
        if state["left"] > 0:
            state["left"] -= 1
            queue.dropped += 1
            queue.dropped_bytes += packet.size
            queue.drops.append((now, packet.size))
            return False
        return original(packet, now)

    queue.offer = lossy
    return state


class TestHandshake:
    def test_three_way_handshake(self):
        pair = make_pair()
        accepted = []
        pair.proto_b.listen(9000, on_accept=accepted.append)
        conn = pair.proto_a.connect("B", 9000)
        assert conn.state == State.SYN_SENT
        pair.sim.run(until=2.0)
        assert conn.state == State.ESTABLISHED
        assert accepted and accepted[0].state == State.ESTABLISHED
        assert conn.stats.established_time is not None
        assert conn.snd_una == 1  # SYN consumed and acknowledged

    def test_handshake_gives_rtt_sample(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        assert conn.fine_rtt.samples >= 1
        # SYN samples must not set BaseRTT (40 B vs data serialization).
        assert conn.fine_rtt.base_rtt is None

    def test_syn_retransmitted_after_loss(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        drop_next(pair.forward_queue, 1)  # lose the SYN
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=30.0)
        assert conn.state == State.ESTABLISHED
        assert conn.stats.coarse_timeouts >= 1

    def test_syn_to_unbound_port_is_dropped(self):
        pair = make_pair()
        conn = pair.proto_a.connect("B", 4242)
        pair.sim.run(until=3.0)
        assert conn.state == State.SYN_SENT
        assert pair.proto_b.segments_dropped >= 1


class TestDataTransfer:
    def test_small_transfer_completes(self):
        pair = make_pair()
        transfer = run_transfer(pair, 10 * 1024)
        assert transfer.done
        assert transfer.conn.stats.app_bytes_acked == 10 * 1024

    def test_large_transfer_delivers_exact_bytes(self):
        pair = make_pair(queue_capacity=30)
        from repro.apps.bulk import BulkSink, BulkTransfer
        sink = BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 200 * 1024)
        pair.sim.run(until=60.0)
        assert transfer.done
        assert sink.bytes_received == 200 * 1024

    def test_transfer_respects_send_window(self):
        pair = make_pair()
        transfer = run_transfer(pair, 100 * 1024, sndbuf=8 * 1024,
                                rcvbuf=8 * 1024)
        assert transfer.done
        conn = transfer.conn
        # Flight can never have exceeded the 8 KB buffers.
        assert conn.sendbuf.capacity == 8 * 1024

    def test_throughput_bounded_by_bottleneck(self):
        pair = make_pair(bandwidth=kbps(100), queue_capacity=30)
        transfer = run_transfer(pair, 100 * 1024)
        assert transfer.done
        assert transfer.conn.stats.throughput_kbps() <= 100.0

    def test_two_way_data_on_one_connection(self):
        pair = make_pair()
        echoed = []

        def on_accept(conn):
            conn.on_data = lambda c, n: c.app_send(n)  # echo server

        pair.proto_b.listen(9000, on_accept=on_accept)
        client = pair.proto_a.connect("B", 9000, nagle=False)
        client.on_data = lambda c, n: echoed.append(n)
        client.on_established = lambda c: c.app_send(100)
        pair.sim.run(until=5.0)
        assert sum(echoed) == 100


class TestLossRecovery:
    def test_fast_retransmit_recovers_single_loss(self):
        pair = make_pair(queue_capacity=30)
        from repro.apps.bulk import BulkSink, BulkTransfer
        BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 100 * 1024,
                                cc=RenoCC())
        # Let the window open, then lose exactly one data packet.
        pair.sim.run(until=1.0)
        drop_next(pair.forward_queue, 1)
        pair.sim.run(until=60.0)
        assert transfer.done
        stats = transfer.conn.stats
        assert stats.retransmit_segments >= 1
        assert stats.fast_retransmits >= 1

    def test_blackout_causes_coarse_timeout(self):
        pair = make_pair(queue_capacity=30)
        from repro.apps.bulk import BulkSink, BulkTransfer
        BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 100 * 1024,
                                cc=RenoCC())
        pair.sim.run(until=1.0)
        drop_next(pair.forward_queue, 25)  # wipe a whole window+
        pair.sim.run(until=300.0)
        assert transfer.done
        assert transfer.conn.stats.coarse_timeouts >= 1

    def test_receiver_never_delivers_duplicate_bytes(self):
        pair = make_pair(queue_capacity=5)
        from repro.apps.bulk import BulkSink, BulkTransfer
        sink = BulkSink(pair.proto_b, 9000)
        transfer = BulkTransfer(pair.proto_a, "B", 9000, 300 * 1024,
                                cc=RenoCC())
        pair.sim.run(until=120.0)
        assert transfer.done
        assert sink.bytes_received == 300 * 1024  # exactly, despite retx


class TestClose:
    def test_fin_exchange_closes_both_ends(self):
        pair = make_pair()
        transfer = run_transfer(pair, 4096)
        assert transfer.conn.is_closed
        others = pair.proto_b.connection_list()
        assert others and all(c.is_closed for c in others)

    def test_simulation_drains_after_close(self):
        pair = make_pair()
        run_transfer(pair, 4096, until=300.0)
        # All timers stopped: nothing pending, the sim went quiet well
        # before the horizon.
        assert pair.sim.pending_events == 0
        assert pair.sim.now == 300.0  # clock advanced to horizon only

    def test_send_after_close_rejected(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        conn.close()
        with pytest.raises(ProtocolError):
            conn.app_send(10)

    def test_close_flushes_queued_data_first(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        conn.app_send(30 * 1024)
        conn.close()
        pair.sim.run(until=30.0)
        assert conn.is_closed
        assert conn.stats.app_bytes_acked == 30 * 1024


class TestNagle:
    def test_nagle_coalesces_small_writes(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        nagle_conn = pair.proto_a.connect("B", 9000, nagle=True)
        pair.sim.run(until=2.0)
        for _ in range(20):
            nagle_conn.app_send(10)
        pair.sim.run(until=10.0)
        # One initial small segment, the rest coalesced into few.
        assert nagle_conn.stats.segments_sent <= 5

    def test_nagle_off_sends_each_write(self):
        pair = make_pair()
        pair.proto_b.listen(9001)
        conn = pair.proto_a.connect("B", 9001, nagle=False)
        pair.sim.run(until=2.0)
        sent_before = conn.stats.segments_sent
        for _ in range(5):
            conn.app_send(10)
        pair.sim.run(until=10.0)
        assert conn.stats.segments_sent - sent_before == 5


class TestPersist:
    def test_zero_window_probe(self):
        pair = make_pair()
        pair.proto_b.listen(9000)
        conn = pair.proto_a.connect("B", 9000)
        pair.sim.run(until=2.0)
        conn.peer_wnd = 0  # simulate a zero-window advertisement
        conn.app_send(1000)
        before = conn.stats.segments_sent
        pair.sim.run(until=4.0)
        # Persist probes went out (1-byte segments on slow ticks).
        assert conn.stats.segments_sent > before


class TestTracing:
    def test_trace_records_cover_figure2_elements(self):
        pair = make_pair()
        tracer = ConnectionTracer("t")
        run_transfer(pair, 50 * 1024, tracer=tracer)
        assert tracer.count(Kind.SEND) >= 50
        assert tracer.count(Kind.ACK_RX) >= 10
        assert tracer.count(Kind.TIMER_CHECK) >= 2  # the diamonds
        assert tracer.count(Kind.CWND) >= 5
        assert tracer.count(Kind.ESTABLISHED) == 1

    def test_disabled_tracer_records_nothing(self):
        pair = make_pair()
        tracer = ConnectionTracer("t", enabled=False)
        run_transfer(pair, 10 * 1024, tracer=tracer)
        assert len(tracer) == 0
