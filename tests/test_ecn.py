"""Tests for explicit congestion notification (RED marking + TCP)."""

import random

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.reno import RenoCC
from repro.net.packet import Packet
from repro.net.red import REDQueue
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tcp.protocol import TCPProtocol
from repro.units import kbps, mb, ms

from fakes import FakeConnection


class TestREDMarking:
    def _queue(self, **kwargs):
        defaults = dict(capacity=20, rng=random.Random(1), min_th=2,
                        max_th=6, max_p=0.5, weight=1.0, ecn=True)
        defaults.update(kwargs)
        return REDQueue(**defaults)

    def test_capable_packets_marked_not_dropped(self):
        queue = self._queue()
        outcomes = []
        for i in range(20):
            packet = Packet("A", "B", None, 1000, ecn_capable=True)
            outcomes.append((queue.offer(packet, 0.001 * i),
                             packet.ecn_marked))
            if len(queue) > 5:
                queue.poll(0.001 * i)
        assert queue.marks > 0
        assert queue.early_drops == 0
        # Marked packets were still accepted.
        assert all(accepted for accepted, marked in outcomes if marked)

    def test_incapable_packets_still_dropped(self):
        queue = self._queue()
        dropped = 0
        for i in range(20):
            packet = Packet("A", "B", None, 1000)  # not ECN-capable
            if not queue.offer(packet, 0.001 * i):
                dropped += 1
            if len(queue) > 5:
                queue.poll(0.001 * i)
        assert dropped > 0
        assert queue.marks == 0

    def test_full_queue_drops_even_capable(self):
        queue = self._queue(capacity=3)
        results = [queue.offer(Packet("A", "B", None, 1000,
                                      ecn_capable=True), 0.0)
                   for _ in range(10)]
        assert not all(results)


class TestRenoEcnResponse:
    def test_halves_once_per_window(self):
        conn = FakeConnection()
        cc = RenoCC()
        cc.attach(conn)
        cc.cwnd = 16 * conn.mss
        conn.snd_nxt = 16 * conn.mss
        cc.on_ecn_echo(1.0)
        assert cc.cwnd == 8 * conn.mss
        assert cc.ecn_reactions == 1
        # Further echoes within the same window are ignored.
        cc.on_ecn_echo(1.1)
        assert cc.cwnd == 8 * conn.mss
        # After the window is acked, a new echo acts again.
        conn.snd_una = conn.snd_nxt
        conn.snd_nxt += 8 * conn.mss
        cc.on_ecn_echo(2.0)
        assert cc.ecn_reactions == 2

    def test_no_reaction_in_recovery(self):
        conn = FakeConnection()
        cc = RenoCC()
        cc.attach(conn)
        cc.cwnd = 8 * conn.mss
        cc.in_recovery = True
        cc.on_ecn_echo(1.0)
        assert cc.ecn_reactions == 0


class TestEcnEndToEnd:
    def _run(self, ecn):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("A"), topo.add_host("B")
        r1, r2 = topo.add_router("R1"), topo.add_router("R2")
        topo.add_lan([a, r1])
        topo.add_lan([r2, b])
        rng = random.Random(5)
        factory = lambda name: REDQueue(10, rng, min_th=2, max_th=8,
                                        max_p=0.1, weight=0.02, ecn=ecn,
                                        name=name)
        link = topo.add_link(r1, r2, bandwidth=kbps(200), delay=ms(50),
                             queue_capacity=10, queue_factory=factory)
        topo.build_routes()
        pa, pb = TCPProtocol(a), TCPProtocol(b)
        BulkSink(pb, 9000, ecn=ecn)
        transfer = BulkTransfer(pa, "B", 9000, mb(1), cc=RenoCC(), ecn=ecn)
        sim.run(until=180.0)
        assert transfer.done
        return transfer, link.channel_from(r1).queue

    def test_ecn_reduces_retransmissions_under_red(self):
        plain, plain_queue = self._run(ecn=False)
        ecn, ecn_queue = self._run(ecn=True)
        assert ecn_queue.marks > 0
        assert ecn.conn.ecn_echoes_received > 0
        assert ecn.conn.cc.ecn_reactions > 0
        # Marks replace early drops, so fewer bytes get retransmitted.
        assert (ecn.conn.stats.retransmitted_kb()
                < plain.conn.stats.retransmitted_kb())

    def test_ecn_does_not_hurt_throughput(self):
        plain, _ = self._run(ecn=False)
        ecn, _ = self._run(ecn=True)
        assert (ecn.conn.stats.throughput_kbps()
                >= 0.9 * plain.conn.stats.throughput_kbps())
