"""Differential tests: Vegas vs Reno/Tahoe/NewReno on identical
seeded scenarios.

The paper's central quantitative claims are *orderings* — Vegas
achieves better throughput with fewer retransmissions than Reno — and
orderings survive simulator evolution far better than absolute
numbers.  Every scheme here sees byte-identical network conditions
(same topology, same seed, and under fault injection the same
per-channel fault schedule), so any difference in outcome is
attributable to the congestion-control policy alone.
"""

import pytest

from repro.checks import checking
from repro.core.registry import make_cc
from repro.experiments.transfers import run_solo_transfer
from repro.faults import injecting
from repro.harness.registry import Cell, run_cell
from repro.units import kb

from helpers import make_pair, run_transfer

SCHEMES = ("reno", "tahoe", "newreno", "vegas")

#: Identical seeded fault scenario applied to every scheme.
FAULT_SPEC = "drop=0.01,seed=5"


@pytest.fixture(scope="module")
def solo():
    """One clean 256KB Figure-5 transfer per scheme, same seed."""
    return {cc: run_solo_transfer(cc, size=kb(256), buffers=10, seed=0)
            for cc in SCHEMES}


@pytest.fixture(scope="module")
def faulted():
    """One 128KB transfer per scheme under identical seeded faults."""
    results = {}
    for cc in SCHEMES:
        with injecting(FAULT_SPEC):
            pair = make_pair()
            transfer = run_transfer(pair, kb(128), cc=make_cc(cc))
        results[cc] = transfer
    return results


class TestCleanDifferential:
    def test_every_scheme_completes(self, solo):
        for cc, result in solo.items():
            assert result.done, cc

    def test_vegas_retransmits_no_more_than_reno(self, solo):
        assert solo["vegas"].retransmitted_kb <= solo["reno"].retransmitted_kb

    def test_vegas_throughput_at_least_reno(self, solo):
        assert solo["vegas"].throughput_kbps >= solo["reno"].throughput_kbps

    def test_vegas_coarse_timeouts_no_more_than_reno(self, solo):
        assert solo["vegas"].coarse_timeouts <= solo["reno"].coarse_timeouts

    def test_vegas_beats_tahoe_as_well(self, solo):
        assert solo["vegas"].retransmitted_kb <= \
            solo["tahoe"].retransmitted_kb
        assert solo["vegas"].throughput_kbps >= solo["tahoe"].throughput_kbps

    def test_newreno_improves_on_reno(self, solo):
        # Partial-ACK recovery avoids the multi-drop timeout pathology
        # plain Reno suffers (§3.1), so NewReno retransmits less.
        assert solo["newreno"].retransmitted_kb <= \
            solo["reno"].retransmitted_kb
        assert solo["newreno"].coarse_timeouts <= \
            solo["reno"].coarse_timeouts

    def test_same_seed_reproduces_exactly(self):
        a = run_solo_transfer("vegas", size=kb(64), buffers=10, seed=7)
        b = run_solo_transfer("vegas", size=kb(64), buffers=10, seed=7)
        assert a.throughput_kbps == b.throughput_kbps
        assert a.retransmitted_kb == b.retransmitted_kb
        assert a.coarse_timeouts == b.coarse_timeouts


class TestFaultedDifferential:
    def test_every_scheme_survives_the_faults(self, faulted):
        for cc, transfer in faulted.items():
            assert transfer.done, cc

    def test_vegas_retransmits_no_more_than_reno(self, faulted):
        assert faulted["vegas"].conn.stats.retransmitted_kb() <= \
            faulted["reno"].conn.stats.retransmitted_kb()

    def test_vegas_throughput_at_least_reno(self, faulted):
        assert faulted["vegas"].throughput_kbps >= \
            faulted["reno"].throughput_kbps

    def test_vegas_timeouts_no_more_than_reno(self, faulted):
        assert faulted["vegas"].conn.stats.coarse_timeouts <= \
            faulted["reno"].conn.stats.coarse_timeouts


class TestFigureCells:
    """The paper's Figure 6 (Reno) vs Figure 7 (Vegas) head-to-head,
    through the registry cells the harness and CI sweep."""

    @pytest.fixture(scope="class")
    def figures(self):
        return {name: run_cell(Cell.make(name, seed=0), checks=True)
                for name in ("figure6", "figure7")}

    def test_vegas_trace_beats_reno_trace(self, figures):
        reno, vegas = figures["figure6"], figures["figure7"]
        assert vegas["throughput_kbps"] > reno["throughput_kbps"]
        assert vegas["retransmit_kb"] < reno["retransmit_kb"]

    def test_checked_figure_cells_have_no_violations(self, figures):
        for name, metrics in figures.items():
            assert metrics["invariant_violations"] == 0.0, name
