"""Tests for the extension features: NewReno and paced slow start."""

import pytest

from repro.core.newreno import NewRenoCC
from repro.core.registry import make_cc
from repro.core.reno import RenoCC
from repro.core.vegas import VegasCC

from fakes import FakeConnection
from helpers import make_pair, run_transfer


class TestNewRenoUnit:
    def _enter_recovery(self):
        conn = FakeConnection()
        cc = NewRenoCC()
        cc.attach(conn)
        cc.cwnd = 10 * conn.mss
        for _ in range(10):
            conn.send(cc)
        conn.first_unacked_ts = 0.0
        for count in (1, 2, 3):
            cc.on_dup_ack(count, 1.0)
        return conn, cc

    def test_recover_marks_snd_nxt(self):
        conn, cc = self._enter_recovery()
        assert cc.in_recovery
        assert cc.recover == conn.snd_nxt

    def test_partial_ack_retransmits_and_stays_in_recovery(self):
        conn, cc = self._enter_recovery()
        conn.retransmissions.clear()
        conn.ack(cc, 3 * conn.mss)  # partial: below recover point
        assert conn.retransmissions == ["fast"]
        assert cc.in_recovery
        assert cc.partial_ack_retransmits == 1

    def test_full_ack_ends_recovery(self):
        conn, cc = self._enter_recovery()
        conn.ack(cc, 10 * conn.mss)  # covers recover
        assert not cc.in_recovery

    def test_registry_name(self):
        assert isinstance(make_cc("newreno"), NewRenoCC)


class TestNewRenoEndToEnd:
    def test_double_loss_recovers_without_timeout(self):
        """The multi-drop window that stalls plain Reno (Figure 4's
        pathology) is recovered in-window by NewReno."""
        from repro.apps.bulk import BulkSink, BulkTransfer

        def run(cc):
            pair = make_pair(queue_capacity=30)
            BulkSink(pair.proto_b, 9000)
            transfer = BulkTransfer(pair.proto_a, "B", 9000, 128 * 1024,
                                    cc=cc, sndbuf=6 * 1024,
                                    rcvbuf=6 * 1024)
            queue = pair.forward_queue
            original = queue.offer
            state = {"drops": 0}

            def lossy(packet, now):
                if state["drops"] < 2 and now > 2.6 and packet.size > 500:
                    state["drops"] += 1
                    return False
                return original(packet, now)

            queue.offer = lossy
            pair.sim.run(until=120.0)
            assert transfer.done
            return transfer.conn.stats

        reno = run(RenoCC())
        newreno = run(NewRenoCC())
        assert reno.coarse_timeouts >= 1
        assert newreno.coarse_timeouts == 0
        assert newreno.transfer_seconds < reno.transfer_seconds


class TestPacedSlowStart:
    def test_pacing_rate_active_only_in_slow_start(self):
        conn = FakeConnection()
        cc = VegasCC(paced_slow_start=True)
        cc.attach(conn)
        assert cc.pacing_rate() is None  # no BaseRTT yet
        conn.fine_rtt.update(0.1)
        assert cc.pacing_rate() == pytest.approx(cc.cwnd / 0.1)
        cc.mode = "linear"
        assert cc.pacing_rate() is None

    def test_disabled_by_default(self):
        conn = FakeConnection()
        cc = VegasCC()
        cc.attach(conn)
        conn.fine_rtt.update(0.1)
        assert cc.pacing_rate() is None

    def test_paced_transfer_completes_losslessly(self):
        pair = make_pair()
        transfer = run_transfer(pair, 512 * 1024,
                                cc=VegasCC(paced_slow_start=True))
        assert transfer.done
        assert transfer.conn.stats.retransmitted_kb() <= 2.0
        assert transfer.conn.stats.coarse_timeouts == 0

    def test_paced_registry_variant(self):
        cc = make_cc("vegas-paced")
        assert isinstance(cc, VegasCC)
        assert cc.paced_slow_start

    def test_pacing_spreads_sends(self):
        """With pacing, back-to-back sends inside a window are spaced;
        the peak short-interval burst shrinks."""
        from repro.trace.records import Kind
        from repro.trace.tracer import ConnectionTracer

        def burstiness(cc):
            pair = make_pair(queue_capacity=30)
            tracer = ConnectionTracer("t")
            run_transfer(pair, 256 * 1024, cc=cc, tracer=tracer)
            sends = [r.time for r in tracer.of_kind(Kind.SEND)]
            # Count sends closer than 1 ms to their predecessor.
            return sum(1 for a, b in zip(sends, sends[1:]) if b - a < 1e-3)

        plain = burstiness(VegasCC())
        paced = burstiness(VegasCC(paced_slow_start=True))
        assert paced < plain
