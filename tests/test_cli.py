"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_solo_defaults(self):
        args = build_parser().parse_args(["solo"])
        assert args.cc == "vegas"
        assert args.size_kb == 1024
        assert args.buffers == 10


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vegas" in out and "reno" in out and "tri-s" in out

    def test_solo_prints_metrics(self, capsys):
        assert main(["solo", "--cc", "reno", "--size-kb", "64"]) == 0
        out = capsys.readouterr().out
        assert "KB/s" in out and "reno" in out

    def test_solo_vegas_variant(self, capsys):
        assert main(["solo", "--cc", "vegas-1,3", "--size-kb", "64",
                     "--buffers", "15"]) == 0
        assert "vegas-1,3" in capsys.readouterr().out

    def test_figure6(self, capsys):
        assert main(["figure6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "windows" in out

    def test_figure7(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "CAM" in out

    def test_table1_quick(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "reno/vegas" in out and "(paper)" in out

    @pytest.mark.slow
    def test_table2_small(self, capsys):
        assert main(["table2", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "vegas-1,3" in out and "Coarse timeouts" in out

    def test_sendbuf(self, capsys):
        assert main(["sendbuf"]) == 0
        out = capsys.readouterr().out
        assert "sndbuf" in out and "50KB" in out
