"""Thin setup.py shim.

The execution environment's setuptools predates PEP 660 editable-wheel
support (and the ``wheel`` package is absent), so ``pip install -e .``
falls back to this legacy path via ``--no-use-pep517``.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
