"""§4.3 bullet 1: one-on-one transfers *with* background traffic.

"The results were similar.  Again, Reno did better when running
against Vegas than against itself, but this time its losses increased
by only 6% (versus 43%) in the Reno/Vegas case."
"""

from repro.experiments.one_on_one import run_one_on_one, table1

from _report import report

_cache = {}


def _grid():
    if "table" not in _cache:
        _cache["table"], _ = table1(buffers=(15, 20),
                                    delays=(0.0, 1.0, 2.0),
                                    with_background=True)
    return _cache["table"]


def test_one_on_one_with_background(benchmark):
    table = _grid()
    benchmark.pedantic(
        lambda: run_one_on_one("reno", "vegas", delay=1.0, buffers=15,
                               with_background=True),
        rounds=3, iterations=1)

    # Reno's large transfer still does at least as well against Vegas.
    base = table.mean("Large throughput (KB/s)", "reno/reno")
    vs_vegas = table.mean("Large throughput (KB/s)", "vegas/reno")
    assert vs_vegas > 0.75 * base
    # Combined losses still drop when Vegas replaces a Reno.
    assert (table.mean("Combined retransmits (KB)", "vegas/vegas")
            < table.mean("Combined retransmits (KB)", "reno/reno"))

    from repro.metrics.tables import format_table
    report("s43_one_on_one_background", format_table(
        "§4.3: One-on-one transfers with tcplib background traffic",
        table,
        ratios_for={"Small throughput (KB/s)": "reno/reno",
                    "Large throughput (KB/s)": "reno/reno"}))
