"""Ablation: α/β threshold sensitivity beyond the paper's two settings.

Table 2 varies only (1,3) and (2,4) and finds "little difference".
This sweep adds wider and narrower bands on the solo Figure-5 run to
map where the thresholds start to matter: very small β under-uses the
link, very large β queues more and risks loss.
"""

from repro.core.vegas import VegasCC
from repro.experiments.transfers import run_solo_transfer

from _report import report

SETTINGS = ((1, 3), (2, 4), (1, 2), (4, 6), (6, 10))

_cache = {}


def _sweep():
    if "rows" not in _cache:
        rows = []
        for alpha, beta in SETTINGS:
            result = run_solo_transfer(
                lambda a=alpha, b=beta: VegasCC(alpha=a, beta=b), seed=0)
            rows.append((alpha, beta, result))
        _cache["rows"] = rows
    return _cache["rows"]


def test_threshold_sensitivity(benchmark):
    rows = _sweep()
    benchmark.pedantic(
        lambda: run_solo_transfer(lambda: VegasCC(alpha=2, beta=4), seed=1),
        rounds=3, iterations=1)

    by_setting = {(a, b): r for a, b, r in rows}
    t13 = by_setting[(1, 3)].throughput_kbps
    t24 = by_setting[(2, 4)].throughput_kbps
    # The paper's two settings are close (Table 2: 89.4 vs 91.8).
    assert abs(t13 - t24) < 0.2 * max(t13, t24)
    # Every setting stays lossless or near-lossless on the clean net.
    assert all(r.retransmitted_kb < 10 for _, _, r in rows)

    lines = ["alpha,beta | KB/s   | retx KB | timeouts"]
    for alpha, beta, r in rows:
        lines.append(f"{alpha:5.0f},{beta:<4.0f} | {r.throughput_kbps:6.1f} |"
                     f" {r.retransmitted_kb:7.1f} | {r.coarse_timeouts:8d}")
    report("ablation_thresholds", "\n".join(lines))
