"""§6: the all-Vegas world, across router buffer counts.

Two claims from the discussion section:

* with enough buffers, an all-Vegas world delivers "a higher
  throughput and a faster response time" than an all-Reno world;
* with scarce buffers, "Vegas's congestion avoidance mechanisms are
  not as effective, and Vegas starts to behave more like Reno" — the
  advantage compresses.
"""

from repro.experiments.allvegas import buffer_sweep, run_world

from _report import report

_cache = {}


def _sweep():
    if "rows" not in _cache:
        _cache["rows"] = buffer_sweep(buffer_counts=(4, 10, 20),
                                      seeds=(0, 1))
    return _cache["rows"]


def test_allvegas_world(benchmark):
    rows = _sweep()
    benchmark.pedantic(lambda: run_world("vegas", buffers=10, seed=2,
                                         duration=60.0),
                       rounds=3, iterations=1)
    by_key = {(r.cc_name, r.buffers): r for r in rows}

    # With ample buffers (20) the Vegas world delivers more with far
    # fewer retransmissions.
    vegas20, reno20 = by_key[("vegas", 20)], by_key[("reno", 20)]
    assert vegas20.retransmit_kb < reno20.retransmit_kb
    assert vegas20.goodput_kbps >= 0.95 * reno20.goodput_kbps
    # At the canonical 10-buffer configuration the Vegas world's
    # interactive response is also faster (the §6 ~25% claim).
    vegas10, reno10 = by_key[("vegas", 10)], by_key[("reno", 10)]
    assert vegas10.telnet_mean_response < reno10.telnet_mean_response

    # With scarce buffers (4), Vegas degenerates toward Reno: its
    # retransmission advantage compresses.
    vegas4, reno4 = by_key[("vegas", 4)], by_key[("reno", 4)]

    def ratio(v, r):
        return v.retransmit_kb / max(1.0, r.retransmit_kb)

    assert ratio(vegas4, reno4) > ratio(vegas20, reno20)

    lines = ["buffers | world | goodput KB/s | retx KB | timeouts | "
             "telnet ms"]
    for r in rows:
        lines.append(f"{r.buffers:7d} | {r.cc_name:5s} | "
                     f"{r.goodput_kbps:12.1f} | {r.retransmit_kb:7.1f} | "
                     f"{r.coarse_timeouts:8d} | "
                     f"{r.telnet_mean_response * 1000:9.1f}")
    report("s6_allvegas_world", "\n".join(lines))
