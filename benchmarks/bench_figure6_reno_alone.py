"""Figure 6: TCP Reno with no other traffic (paper: 105 KB/s).

Regenerates the traced Reno-alone run and checks its qualitative
content: Reno's window saws between overflow and recovery, segments
are lost to the 10-buffer queue, and throughput lands well below the
200 KB/s bottleneck.
"""

from repro.experiments.traces import figure6
from repro.trace import series as S

from _report import report


def _run():
    return figure6(seed=0)


def test_figure6_reno_alone(benchmark):
    graph, result = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert result.done
    assert graph.losses() > 10
    assert S.sawtooth_count(graph.windows.congestion_window) >= 2
    assert len(graph.common.timer_diamonds) > 5
    assert 60.0 < result.throughput_kbps < 200.0
    report("figure6_reno_alone", "\n".join([
        f"throughput:      {result.throughput_kbps:6.1f} KB/s   (paper: 105)",
        f"retransmitted:   {result.retransmitted_kb:6.1f} KB",
        f"coarse timeouts: {result.coarse_timeouts:6d}",
        f"lost segments:   {graph.losses():6d}",
        f"cwnd sawteeth:   {S.sawtooth_count(graph.windows.congestion_window):6d}",
    ]))
