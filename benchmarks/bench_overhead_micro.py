"""§3.2 footnote 3: the CPU overhead of Vegas' bookkeeping.

The authors measured "the penalty to be less than 5%" on SparcStations.
CPU cost of 1994 hardware is not reproducible, but the analogous
question for this implementation is: how much more per-event work does
Vegas' congestion control do than Reno's?  The measurement itself
lives in :func:`repro.perf.micro.vegas_overhead` — the same comparison
``python -m repro bench`` publishes as the ``micro`` section of
``BENCH_engine.json`` — so this benchmark and the BENCH artifact can
never drift apart.  Here we drive it through the pytest-benchmark
harness and report the table.
"""

from repro.perf.micro import vegas_overhead

from _report import report


def test_vegas_bookkeeping_overhead(benchmark):
    result = benchmark.pedantic(lambda: vegas_overhead(rounds=3),
                                rounds=1, iterations=1)

    # Deterministic sanity: both transfers completed and their event
    # counts are comparable (Vegas finishes the same 512KB in a
    # slightly different number of simulated events).
    assert result["reno_events"] > 0
    assert result["vegas_events"] > 0

    # Generous bound: Vegas' per-ACK work (clock reads, one dict insert,
    # a min update) must not blow up simulation cost.  Note the Vegas
    # run can also *transfer faster* (fewer simulated events), so the
    # overhead can legitimately be negative.
    assert result["vegas_wall_s"] < result["reno_wall_s"] * 2.0
    report("overhead_micro", "\n".join([
        f"Reno  512KB solo run: {result['reno_wall_s'] * 1000:7.1f} ms wall"
        f"   ({result['reno_events']} events, "
        f"{result['reno_events_per_sec']:,.0f} ev/s)",
        f"Vegas 512KB solo run: {result['vegas_wall_s'] * 1000:7.1f} ms wall"
        f"   ({result['vegas_events']} events, "
        f"{result['vegas_events_per_sec']:,.0f} ev/s)",
        f"relative cost: {result['overhead_pct']:+.1f}%   "
        f"(paper's CPU penalty: <5%)",
    ]))
