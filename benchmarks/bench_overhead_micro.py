"""§3.2 footnote 3: the CPU overhead of Vegas' bookkeeping.

The authors measured "the penalty to be less than 5%" on SparcStations.
CPU cost of 1994 hardware is not reproducible, but the analogous
question for this implementation is: how much more per-event work does
Vegas' congestion control do than Reno's?  This micro-benchmark runs
identical solo transfers under both controllers and compares simulated
protocol events and wall-clock simulation cost.
"""

import time

from repro.experiments.transfers import run_solo_transfer
from repro.units import kb

from _report import report


def _run(cc):
    return run_solo_transfer(cc, size=kb(512), buffers=30, seed=0)


def test_vegas_bookkeeping_overhead(benchmark):
    # Warm-up / correctness.
    reno = _run("reno")
    vegas = _run("vegas")
    assert reno.done and vegas.done

    start = time.perf_counter()
    for _ in range(3):
        _run("reno")
    reno_wall = (time.perf_counter() - start) / 3

    vegas_result = benchmark.pedantic(lambda: _run("vegas"),
                                      rounds=3, iterations=1)
    assert vegas_result.done

    start = time.perf_counter()
    for _ in range(3):
        _run("vegas")
    vegas_wall = (time.perf_counter() - start) / 3

    overhead = (vegas_wall - reno_wall) / reno_wall * 100
    # Generous bound: Vegas' per-ACK work (clock reads, one dict insert,
    # a min update) must not blow up simulation cost.  Note the Vegas
    # run also *transfers faster* (fewer simulated events), so this can
    # legitimately be negative.
    assert vegas_wall < reno_wall * 2.0
    report("overhead_micro", "\n".join([
        f"Reno  512KB solo run: {reno_wall * 1000:7.1f} ms wall",
        f"Vegas 512KB solo run: {vegas_wall * 1000:7.1f} ms wall",
        f"relative cost: {overhead:+.1f}%   (paper's CPU penalty: <5%)",
    ]))
