"""Shared reporting for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
reports the comparison.  ``report`` writes the text both to the real
stdout (bypassing pytest's capture, so ``pytest benchmarks/
--benchmark-only`` shows the tables inline) and to
``benchmarks/results/<name>.txt`` for later inspection.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str) -> None:
    """Emit a reproduction table to the console and results directory."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
