"""§4.3 bullet 3: different TCP send-buffer sizes (50 KB down to 5 KB).

Paper: "Vegas' throughput and losses stayed unchanged between 50KB and
20KB; from that point on, as the buffer decreased, so did the
throughput. ... Reno's throughput initially increased as the buffers
got smaller, and then it decreased.  It always remained under the
throughput measured for Vegas."
"""

from repro.experiments.sendbuf import sendbuf_sweep
from repro.experiments.transfers import run_solo_transfer
from repro.units import kb

from _report import report

SIZES = (5, 10, 15, 20, 30, 40, 50)

_cache = {}


def _sweeps():
    if "reno" not in _cache:
        _cache["reno"] = sendbuf_sweep("reno", sizes_kb=SIZES,
                                       seeds=(0, 1))
        _cache["vegas"] = sendbuf_sweep("vegas", sizes_kb=SIZES,
                                        seeds=(0, 1))
    return _cache["reno"], _cache["vegas"]


def test_sendbuf_sweep(benchmark):
    reno, vegas = _sweeps()
    benchmark.pedantic(
        lambda: run_solo_transfer("reno", sndbuf=kb(20), seed=2),
        rounds=3, iterations=1)

    # Vegas flat between 20 and 50 KB.
    assert vegas[20].throughput_kbps > 0.85 * vegas[50].throughput_kbps
    # Both protocols starve with a 5 KB buffer (pipe not full).
    assert vegas[5].throughput_kbps < 0.6 * vegas[50].throughput_kbps
    assert reno[5].throughput_kbps < 0.6 * vegas[50].throughput_kbps
    # Reno's non-monotonicity: some smaller buffer beats 50 KB.
    assert max(reno[s].throughput_kbps for s in (15, 20, 30)) \
        > reno[50].throughput_kbps
    # Reno stays at or below Vegas at each buffer size (a sndbuf that
    # equals the BDP pins Reno's window externally, so a near-tie
    # there is expected — that is the paper's point: the small buffer
    # does for Reno what Vegas does for itself).
    for size in SIZES:
        assert (reno[size].throughput_kbps
                <= vegas[size].throughput_kbps * 1.10)

    lines = ["sndbuf | Reno KB/s (retx KB) | Vegas KB/s (retx KB)"]
    for size in SIZES:
        lines.append(
            f"{size:4d}KB | {reno[size].throughput_kbps:9.1f} "
            f"({reno[size].retransmitted_kb:5.1f})   | "
            f"{vegas[size].throughput_kbps:9.1f} "
            f"({vegas[size].retransmitted_kb:5.1f})")
    report("s43_sendbuf", "\n".join(lines))
