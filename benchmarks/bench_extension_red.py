"""Extension: RED at the router vs Vegas at the end host.

The paper's simulator supports pluggable queueing disciplines; RED
(Floyd & Jacobson 1993) is the era's router-side answer to the same
problem Vegas solves end-to-end — keeping bottleneck queues short.
This bench runs the Figure-6/7 solo scenario three ways:

* Reno over drop-tail (the paper's baseline),
* Reno over RED (router-assisted early feedback),
* Vegas over drop-tail (end-host restraint).

Expected structure: RED shortens Reno's average queue (lower latency)
at some throughput cost from the early drops; Vegas achieves the
short queue *and* the highest throughput with no drops at all.
"""

import random

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.registry import make_cc
from repro.net.red import REDQueue
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tcp.protocol import TCPProtocol
from repro.trace.tracer import RouterTracer
from repro.units import kbps, mb, ms

from _report import report

_cache = {}


def _run(cc_name, red):
    sim = Simulator()
    topo = Topology(sim)
    a, b = topo.add_host("A"), topo.add_host("B")
    r1, r2 = topo.add_router("R1"), topo.add_router("R2")
    topo.add_lan([a, r1])
    topo.add_lan([r2, b])
    factory = None
    if red:
        rng = random.Random(11)
        factory = lambda name: REDQueue(10, rng, min_th=2, max_th=8,
                                        max_p=0.1, weight=0.02, name=name)
    link = topo.add_link(r1, r2, bandwidth=kbps(200), delay=ms(50),
                         queue_capacity=10, queue_factory=factory)
    topo.build_routes()
    pa, pb = TCPProtocol(a), TCPProtocol(b)
    BulkSink(pb, 9000)
    transfer = BulkTransfer(pa, "B", 9000, mb(1), cc=make_cc(cc_name))
    tracer = RouterTracer(link.channel_from(r1).queue)
    sim.run(until=120.0)
    assert transfer.done
    stats = transfer.conn.stats
    return (stats.throughput_kbps(), stats.retransmitted_kb(),
            stats.coarse_timeouts, tracer.mean_depth(1.0),
            tracer.max_depth())


def _results():
    if "rows" not in _cache:
        _cache["rows"] = [
            ("reno / drop-tail", _run("reno", red=False)),
            ("reno / RED", _run("reno", red=True)),
            ("vegas / drop-tail", _run("vegas", red=False)),
        ]
    return _cache["rows"]


def test_red_vs_vegas(benchmark):
    rows = _results()
    benchmark.pedantic(lambda: _run("reno", red=True), rounds=3,
                       iterations=1)
    by_name = dict(rows)

    reno_dt = by_name["reno / drop-tail"]
    reno_red = by_name["reno / RED"]
    vegas_dt = by_name["vegas / drop-tail"]
    # RED shortens Reno's standing queue (router-side early feedback).
    assert reno_red[3] < reno_dt[3]
    # Reno over drop-tail fills the buffers to the brim ("Reno
    # increases its window size until there are losses — which means
    # all the router buffers are being used", §6); Vegas never does.
    assert reno_dt[4] >= 10
    assert vegas_dt[4] < reno_dt[4]
    # Vegas beats both Reno variants on throughput, with no losses.
    assert vegas_dt[0] > reno_dt[0] and vegas_dt[0] > reno_red[0]
    assert vegas_dt[1] <= 2.0

    lines = ["configuration     | KB/s   | retx KB | timeouts | "
             "mean queue | max queue"]
    for name, (tput, retx, to, depth, peak) in rows:
        lines.append(f"{name:17s} | {tput:6.1f} | {retx:7.1f} | "
                     f"{to:8d} | {depth:10.2f} | {peak:9d}")
    lines.append("")
    lines.append("Reno's low *mean* queue is an artifact of its "
                 "oscillation (full -> loss -> drained); its *peak* is "
                 "the full buffer.  Vegas holds a steady alpha..beta "
                 "segments — short peaks and no loss — while RED buys "
                 "Reno a shorter queue at a throughput cost.")
    report("extension_red", "\n".join(lines))
