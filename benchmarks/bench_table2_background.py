"""Table 2: 1 MB transfer with tcplib-generated background Reno traffic.

Protocols: Reno, Vegas-1,3, Vegas-2,4; averaged over seeds x router
buffers {10, 15, 20}, as in the paper (which used 57 runs).  Checked
claims: Vegas throughput ≳ 1.3x Reno with roughly half the retransmits
and far fewer coarse timeouts, and the two threshold settings barely
differ.
"""

from repro.experiments.background import (
    PAPER_TABLE2,
    run_with_background,
    table2,
)
from repro.metrics.tables import format_table

from _report import report

_cache = {}


def _full_table():
    if "table" not in _cache:
        _cache["table"], _cache["runs"] = table2(seeds=range(4),
                                                 buffers=(10, 15, 20))
    return _cache["table"]


def test_table2_background_traffic(benchmark):
    table = _full_table()
    benchmark.pedantic(lambda: run_with_background("vegas-1,3", seed=99),
                       rounds=3, iterations=1)

    reno_tput = table.mean("Throughput (KB/s)", "reno")
    v13_tput = table.mean("Throughput (KB/s)", "vegas-1,3")
    v24_tput = table.mean("Throughput (KB/s)", "vegas-2,4")
    assert v13_tput > 1.25 * reno_tput   # paper: 1.53x
    assert v24_tput > 1.25 * reno_tput   # paper: 1.58x
    # "There is little difference between Vegas-1,3 and Vegas-2,4."
    assert abs(v13_tput - v24_tput) < 0.2 * max(v13_tput, v24_tput)

    reno_retx = table.mean("Retransmissions (KB)", "reno")
    v13_retx = table.mean("Retransmissions (KB)", "vegas-1,3")
    assert v13_retx < 0.75 * reno_retx   # paper ratio: 0.49

    reno_to = table.mean("Coarse timeouts", "reno")
    v13_to = table.mean("Coarse timeouts", "vegas-1,3")
    assert v13_to < reno_to              # paper: 5.6 -> 0.9

    report("table2_background", format_table(
        "Table 2: 1MB transfer with tcplib background Reno traffic "
        "(seeds x buffers 10/15/20)",
        table,
        ratios_for={"Throughput (KB/s)": "reno",
                    "Retransmissions (KB)": "reno"},
        paper=PAPER_TABLE2))
