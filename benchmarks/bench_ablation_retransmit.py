"""Ablation: Vegas without the fine-grained retransmit (technique 1).

§3.1 credits the new retransmission mechanism with recovering losses
that would otherwise wait for the coarse timer.  Two probes:

* the deterministic double-loss scenario of Figure 4 (two segments
  dropped from a small window) — with the mechanism ablated, Vegas
  must fall back to a coarse timeout exactly like Reno;
* the lossy 1 MB Internet transfers, where ablation should not
  *reduce* coarse timeouts.
"""

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.vegas import VegasCC
from repro.experiments.figure5 import build_figure5
from repro.experiments.internet import run_internet_transfer
from repro.units import kb

from _report import report


def _double_loss(cc):
    net = build_figure5(buffers=30, seed=3)
    BulkSink(net.protocol("Host1b"), 7001)
    transfer = BulkTransfer(net.protocol("Host1a"), "Host1b", 7001,
                            128 * 1024, cc=cc,
                            sndbuf=6 * 1024, rcvbuf=6 * 1024)
    queue = net.forward_queue
    original = queue.offer
    state = {"drops": 0}

    def lossy(packet, now):
        if (state["drops"] < 2 and now > 2.6
                and packet.src == "Host1a" and packet.size > 500):
            state["drops"] += 1
            return False
        return original(packet, now)

    queue.offer = lossy
    net.sim.run(until=120.0)
    assert transfer.done
    return transfer.conn.stats


def _internet_mean(factory, seeds=range(6)):
    runs = [run_internet_transfer(factory, size=kb(1024), seed=s)
            for s in seeds]
    n = len(runs)
    return (sum(r.throughput_kbps for r in runs) / n,
            sum(r.retransmitted_kb for r in runs) / n,
            sum(r.coarse_timeouts for r in runs) / n,
            sum(r.fine_retransmits for r in runs) / n)

_cache = {}


def _results():
    if "full" not in _cache:
        _cache["full"] = _double_loss(VegasCC())
        _cache["ablated"] = _double_loss(
            VegasCC(enable_fine_retransmit=False))
        _cache["inet_full"] = _internet_mean(
            lambda: VegasCC(alpha=1, beta=3))
        _cache["inet_ablated"] = _internet_mean(
            lambda: VegasCC(alpha=1, beta=3, enable_fine_retransmit=False))
    return _cache


def test_ablation_fine_retransmit(benchmark):
    results = _results()
    benchmark.pedantic(
        lambda: _double_loss(VegasCC(enable_fine_retransmit=False)),
        rounds=3, iterations=1)

    full, ablated = results["full"], results["ablated"]
    # With the mechanism, the double loss recovers without a timeout;
    # without it, Vegas degenerates to Reno's coarse-timeout recovery.
    assert full.coarse_timeouts == 0 and full.fine_retransmits >= 1
    assert ablated.coarse_timeouts >= 1 and ablated.fine_retransmits == 0
    assert full.transfer_seconds < ablated.transfer_seconds

    # The Internet aggregate is informational: per-run timeout counts
    # are small (0-2), so 6 seeds cannot separate the variants
    # statistically — the deterministic probe above is the assertion.
    inet_full, inet_ablated = results["inet_full"], results["inet_ablated"]
    assert inet_ablated[3] == 0.0

    report("ablation_retransmit", "\n".join([
        "double-loss scenario (128 KB, 6 KB window, 2 drops):",
        f"  full Vegas        : {full.transfer_seconds:5.2f} s, "
        f"timeouts={full.coarse_timeouts}, fine retx={full.fine_retransmits}",
        f"  no fine retransmit: {ablated.transfer_seconds:5.2f} s, "
        f"timeouts={ablated.coarse_timeouts}, "
        f"fine retx={ablated.fine_retransmits}",
        "",
        "Internet 1 MB transfers (6 runs):",
        "  variant            | KB/s   | retx KB | timeouts | fine retx",
        f"  full Vegas         | {inet_full[0]:6.1f} | {inet_full[1]:7.1f} |"
        f" {inet_full[2]:8.1f} | {inet_full[3]:9.1f}",
        f"  no fine retransmit | {inet_ablated[0]:6.1f} | "
        f"{inet_ablated[1]:7.1f} | {inet_ablated[2]:8.1f} | "
        f"{inet_ablated[3]:9.1f}",
    ]))
