"""Future work (§3.3), implemented and evaluated: rate-controlled
slow start.

"One [solution] is to use rate control during slow-start, using a rate
defined by the current window size and the BaseRTT."

We implement the sketch faithfully (pace transmissions at
``cwnd / BaseRTT`` while in slow start) and evaluate it.  The outcome
is a genuine — and instructive — negative result: pacing does remove
the per-ACK bursts of two (verified below), but on an under-buffered
bottleneck those bursts are precisely what builds the transient queue
that the γ detector reads.  Smoothing them *delays* the congestion
signal, so the window overshoots further before slow start exits.
The paper's caveat ("Vegas' slow-start with congestion detection may
lose segments before getting any feedback" when buffers are scarce)
is not repaired by this sketch; available bandwidth is simply not
observable before the pipe fills.  On the default (adequately
buffered) network the feature is performance-neutral.
"""

from repro.core.vegas import VegasCC
from repro.experiments.transfers import run_solo_transfer
from repro.trace.records import Kind
from repro.trace.tracer import ConnectionTracer

from _report import report

_cache = {}


def _mean(factory, buffers, seeds=(0, 1, 2)):
    runs = [run_solo_transfer(factory, buffers=buffers, seed=s)
            for s in seeds]
    n = len(runs)
    return (sum(r.throughput_kbps for r in runs) / n,
            sum(r.retransmitted_kb for r in runs) / n,
            sum(r.coarse_timeouts for r in runs) / n)


def _burst_count(factory):
    """Sends spaced < 1 ms from their predecessor during one run."""
    tracer = ConnectionTracer("b")
    run_solo_transfer(factory, buffers=30, seed=0, tracer=tracer)
    sends = [r.time for r in tracer.of_kind(Kind.SEND)]
    return sum(1 for a, b in zip(sends, sends[1:]) if b - a < 1e-3)


def _results():
    if "rows" not in _cache:
        rows = []
        for buffers in (4, 10):
            rows.append((buffers, "plain Vegas", _mean(VegasCC, buffers)))
            rows.append((buffers, "paced slow start",
                         _mean(lambda: VegasCC(paced_slow_start=True),
                               buffers)))
        _cache["rows"] = rows
        _cache["bursts"] = (_burst_count(VegasCC),
                            _burst_count(lambda: VegasCC(
                                paced_slow_start=True)))
    return _cache


def test_paced_slow_start_evaluation(benchmark):
    results = _results()
    benchmark.pedantic(
        lambda: run_solo_transfer(lambda: VegasCC(paced_slow_start=True),
                                  buffers=10, seed=3),
        rounds=3, iterations=1)

    rows = results["rows"]
    by_key = {(buffers, label): data for buffers, label, data in rows}
    plain_bursts, paced_bursts = results["bursts"]

    # The mechanism works as specified: per-ACK bursts are removed.
    assert paced_bursts < plain_bursts
    # It is performance-neutral on the adequately buffered default.
    assert (by_key[(10, "paced slow start")][0]
            > 0.85 * by_key[(10, "plain Vegas")][0])
    # The documented negative result: it does NOT reduce losses on the
    # under-buffered bottleneck (smoothing delays the γ signal).
    negative_result = (by_key[(4, "paced slow start")][1]
                       >= by_key[(4, "plain Vegas")][1])

    lines = ["buffers | variant          | KB/s   | retx KB | timeouts"]
    for buffers, label, (tput, retx, to) in rows:
        lines.append(f"{buffers:7d} | {label:16s} | {tput:6.1f} | "
                     f"{retx:7.1f} | {to:8.1f}")
    lines.append("")
    lines.append(f"back-to-back (<1 ms) sends: plain={plain_bursts}, "
                 f"paced={paced_bursts}")
    lines.append("negative result confirmed: pacing does not fix "
                 f"under-buffered slow-start losses ({negative_result})")
    report("futurework_paced_slowstart", "\n".join(lines))
