"""§6 extension: selective acknowledgements vs (and with) Vegas.

The paper's §6 makes three testable observations about SACK:

1. "It only relates to Vegas' retransmission mechanism" — SACK's win
   shows on multi-loss recovery, not on clean paths.
2. "There is little reason to believe that selective ACKs can
   significantly improve on Vegas in terms of unnecessary
   retransmissions, as there were only 6KB per MB unnecessarily
   retransmitted by Vegas in our Internet experiments."
3. "It would be interesting to see how Vegas and the selective ACK
   mechanism work in tandem."

This bench runs the scattered-multi-loss scenario for reno, newreno,
reno-sack, vegas, and vegas-sack, and measures unnecessary
retransmissions (segments arriving at the receiver entirely below its
cumulative ACK point) on the Internet path.
"""

import os
import sys

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.registry import make_cc

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))

from _report import report  # noqa: E402
from helpers import make_pair  # noqa: E402

VARIANTS = (("reno", False), ("newreno", False), ("reno-sack", True),
            ("vegas", False), ("vegas-sack", True))

_cache = {}


def _scattered_loss(cc_name, sack, drops=(5, 9, 13, 17)):
    pair = make_pair(queue_capacity=30)
    sink = BulkSink(pair.proto_b, 9000, sack=sack)
    transfer = BulkTransfer(pair.proto_a, "B", 9000, 256 * 1024,
                            cc=make_cc(cc_name), sack=sack)
    queue = pair.forward_queue
    original = queue.offer
    state = {"n": 0}
    dropset = set(drops)

    def lossy(packet, now):
        if now > 0.8 and packet.size > 500:
            state["n"] += 1
            if state["n"] in dropset:
                return False
        return original(packet, now)

    queue.offer = lossy
    pair.sim.run(until=120.0)
    assert transfer.done
    receiver = sink.connections[0]
    return transfer.conn.stats, receiver.recv.duplicate_segments


def _results():
    if "rows" not in _cache:
        _cache["rows"] = [(name, sack) + _scattered_loss(name, sack)
                          for name, sack in VARIANTS]
    return _cache["rows"]


def test_sack_extension(benchmark):
    rows = _results()
    benchmark.pedantic(lambda: _scattered_loss("vegas-sack", True),
                       rounds=3, iterations=1)
    by_name = {name: (stats, dups) for name, _, stats, dups in rows}

    # Observation 3: the tandem works — vegas-sack recovers the
    # scattered losses without a coarse timeout and at least as fast
    # as any other variant here.
    tandem, _ = by_name["vegas-sack"]
    assert tandem.coarse_timeouts == 0
    fastest = min(stats.transfer_seconds for _, _, stats, _ in rows)
    assert tandem.transfer_seconds <= fastest * 1.05

    # Observation 1: SACK's benefit is in recovery: plain reno takes a
    # timeout here, reno-sack does not.
    assert by_name["reno"][0].coarse_timeouts >= 1
    assert by_name["reno-sack"][0].coarse_timeouts == 0

    # Observation 2: unnecessary retransmissions (duplicate segments
    # at the receiver) are a tiny fraction of the transfer for plain
    # Vegas (the paper: 6 KB per MB), and SACK reduces them further.
    assert by_name["vegas"][1] <= 0.04 * 256  # <= 4% of the segments
    assert by_name["vegas-sack"][1] <= by_name["vegas"][1]

    lines = ["variant    | time s | timeouts | retx KB | dup segs at rcvr"]
    for name, sack, stats, dups in rows:
        lines.append(f"{name:10s} | {stats.transfer_seconds:6.2f} | "
                     f"{stats.coarse_timeouts:8d} | "
                     f"{stats.retransmitted_kb():7.1f} | {dups:5d}")
    lines.append("")
    lines.append("(256 KB transfer, four scattered losses; §6: SACK only "
                 "relates to the retransmission mechanism, and Vegas "
                 "already retransmits little unnecessarily)")
    report("extension_sack", "\n".join(lines))
