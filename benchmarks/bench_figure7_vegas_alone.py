"""Figure 7: TCP Vegas with no other traffic (paper: 169 KB/s).

Vegas finds the bandwidth without losses: near-zero retransmissions,
no coarse timeouts, a stable window, and a CAM panel where Actual
tracks Expected inside the α/β band.
"""

from repro.experiments.traces import figure6, figure7

from _report import report


def _run():
    return figure7(seed=0)


def test_figure7_vegas_alone(benchmark):
    graph, result = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert result.done
    assert result.retransmitted_kb <= 2.0
    assert result.coarse_timeouts == 0
    assert graph.cam is not None and len(graph.cam.expected) > 20

    _, reno = figure6(seed=0)
    ratio = result.throughput_kbps / reno.throughput_kbps
    assert ratio > 1.3  # paper: 169/105 = 1.61
    report("figure7_vegas_alone", "\n".join([
        f"throughput:      {result.throughput_kbps:6.1f} KB/s   (paper: 169)",
        f"vs Reno alone:   {ratio:6.2f}x        (paper: 1.61x)",
        f"retransmitted:   {result.retransmitted_kb:6.1f} KB     (paper: ~0)",
        f"coarse timeouts: {result.coarse_timeouts:6d}        (paper: 0)",
        f"CAM decisions:   {len(graph.cam.expected):6d}",
    ]))
