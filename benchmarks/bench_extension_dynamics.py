"""Extension: sharing and reactivity dynamics (join/leave scenarios).

Quantifies two claims woven through the paper:

* §1/§4.1 — Vegas' gains are "not achieved by an aggressive
  retransmission strategy that effectively steals bandwidth from TCP
  connections": when a second flow joins, Vegas pairs split the link
  far more evenly than Reno pairs.
* §3.2 — keeping α..β extra segments in the network lets a connection
  "respond rapidly enough to transient increases in the available
  network bandwidth": when a competitor finishes, Vegas absorbs the
  freed capacity faster than Reno.
"""

from repro.experiments.convergence import run_join_scenario, run_leave_scenario

from _report import report

_cache = {}


def _results():
    if "rows" not in _cache:
        _cache["join"] = {cc: run_join_scenario(cc, seed=0)
                          for cc in ("reno", "vegas")}
        _cache["leave"] = {cc: run_leave_scenario(cc, seed=0)
                           for cc in ("reno", "vegas")}
        _cache["rows"] = True
    return _cache


def test_dynamics(benchmark):
    results = _results()
    benchmark.pedantic(lambda: run_leave_scenario("vegas", seed=1),
                       rounds=3, iterations=1)
    join, leave = results["join"], results["leave"]

    assert join["vegas"].share_balance > join["reno"].share_balance
    assert leave["vegas"].takeover_rate > leave["reno"].takeover_rate
    assert leave["vegas"].settled_rate > 150.0

    lines = ["JOIN (flow B joins at t=8s):",
             "cc    | solo A | shared A | shared B | balance"]
    for cc in ("reno", "vegas"):
        r = join[cc]
        lines.append(f"{cc:5s} | {r.solo_rate:6.1f} | {r.shared_rate_a:8.1f}"
                     f" | {r.shared_rate_b:8.1f} | {r.share_balance:7.2f}")
    lines.append("")
    lines.append("LEAVE (flow A finishes, B absorbs the link):")
    lines.append("cc    | shared | takeover (0-3s) | settled (3-8s)")
    for cc in ("reno", "vegas"):
        r = leave[cc]
        lines.append(f"{cc:5s} | {r.shared_rate:6.1f} | "
                     f"{r.takeover_rate:15.1f} | {r.settled_rate:14.1f}")
    report("extension_dynamics", "\n".join(lines))
