"""§6: TELNET response time in an all-Vegas vs all-Reno world.

"Simulations running tcplib traffic over both Reno and Vegas show that
the average response time in TELNET connections is around 25% faster
when using Vegas as compared to Reno."  The effect comes from queueing
delay: Reno keeps the bottleneck buffers full, so every interactive
packet waits behind them; Vegas holds only α..β extra segments there.
"""

import statistics

from repro.experiments.telnet_response import run_telnet_response

from _report import report

#: Heavier-than-Table-2 load so the bottleneck queue actually matters
#: to interactive packets: at this arrival rate the bulk conversations
#: keep the link near saturation, so the Reno-world queue sits near
#: full while the Vegas-world queue holds only a few segments.
ARRIVAL_MEAN = 0.22

_cache = {}


def _samples():
    if "reno" not in _cache:
        pooled = {"reno": [], "vegas": []}
        for cc in ("reno", "vegas"):
            for seed in range(3):
                result = run_telnet_response(cc, seed=seed,
                                             arrival_mean=ARRIVAL_MEAN,
                                             duration=120.0)
                pooled[cc].extend(result.samples)
        _cache.update(pooled)
    return _cache["reno"], _cache["vegas"]


def test_telnet_response_time(benchmark):
    reno, vegas = _samples()
    benchmark.pedantic(
        lambda: run_telnet_response("vegas", seed=9,
                                    arrival_mean=ARRIVAL_MEAN,
                                    duration=30.0),
        rounds=3, iterations=1)

    assert len(reno) > 50 and len(vegas) > 50
    reno_mean = statistics.fmean(reno)
    vegas_mean = statistics.fmean(vegas)
    # Vegas-world interactive response is faster (paper: ~25%).
    assert vegas_mean < reno_mean

    speedup = (reno_mean - vegas_mean) / reno_mean * 100
    report("s6_telnet_response", "\n".join([
        f"all-Reno  mean response: {reno_mean * 1000:7.1f} ms "
        f"(median {statistics.median(reno) * 1000:6.1f} ms, n={len(reno)})",
        f"all-Vegas mean response: {vegas_mean * 1000:7.1f} ms "
        f"(median {statistics.median(vegas) * 1000:6.1f} ms, n={len(vegas)})",
        f"Vegas speedup: {speedup:4.1f}%   (paper: ~25%)",
    ]))
