"""Extension: explicit congestion notification vs Vegas.

The era's three answers to "don't fill the queue until it drops":

* Vegas — the end host infers congestion from delay (this paper);
* RED — the router drops early (Floyd & Jacobson 1993);
* RED+ECN — the router *marks* instead of dropping (DECbit lineage,
  later RFC 3168), and the sender backs off without loss.

This bench runs the solo bottleneck scenario for Reno/RED,
Reno/RED+ECN and Vegas/drop-tail.  Expected structure: ECN removes
RED's retransmissions while keeping its short queue; Vegas matches the
no-loss property without any router support and reaches the highest
throughput.
"""

import random

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.registry import make_cc
from repro.net.red import REDQueue
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tcp.protocol import TCPProtocol
from repro.trace.tracer import RouterTracer
from repro.units import kbps, mb, ms

from _report import report

_cache = {}


def _run(cc_name, red, ecn):
    sim = Simulator()
    topo = Topology(sim)
    a, b = topo.add_host("A"), topo.add_host("B")
    r1, r2 = topo.add_router("R1"), topo.add_router("R2")
    topo.add_lan([a, r1])
    topo.add_lan([r2, b])
    factory = None
    if red:
        rng = random.Random(11)
        factory = lambda name: REDQueue(10, rng, min_th=2, max_th=8,
                                        max_p=0.1, weight=0.02, ecn=ecn,
                                        name=name)
    link = topo.add_link(r1, r2, bandwidth=kbps(200), delay=ms(50),
                         queue_capacity=10, queue_factory=factory)
    topo.build_routes()
    pa, pb = TCPProtocol(a), TCPProtocol(b)
    BulkSink(pb, 9000, ecn=ecn)
    transfer = BulkTransfer(pa, "B", 9000, mb(1), cc=make_cc(cc_name),
                            ecn=ecn)
    tracer = RouterTracer(link.channel_from(r1).queue)
    sim.run(until=180.0)
    assert transfer.done
    stats = transfer.conn.stats
    queue = link.channel_from(r1).queue
    marks = getattr(queue, "marks", 0)
    return (stats.throughput_kbps(), stats.retransmitted_kb(),
            stats.coarse_timeouts, tracer.max_depth(), marks)


def _results():
    if "rows" not in _cache:
        _cache["rows"] = [
            ("reno / RED", _run("reno", red=True, ecn=False)),
            ("reno / RED+ECN", _run("reno", red=True, ecn=True)),
            ("vegas / drop-tail", _run("vegas", red=False, ecn=False)),
        ]
    return _cache["rows"]


def test_ecn_vs_vegas(benchmark):
    rows = _results()
    benchmark.pedantic(lambda: _run("reno", red=True, ecn=True),
                       rounds=3, iterations=1)
    by_name = dict(rows)

    red = by_name["reno / RED"]
    ecn = by_name["reno / RED+ECN"]
    vegas = by_name["vegas / drop-tail"]
    # ECN converts RED's early drops into marks: fewer retransmissions.
    assert ecn[4] > 0
    assert ecn[1] < red[1]
    # Vegas achieves near-zero loss with no router support and the
    # highest throughput of the three.
    assert vegas[1] <= 2.0
    assert vegas[0] > red[0] and vegas[0] > ecn[0]

    lines = ["configuration     | KB/s   | retx KB | timeouts | "
             "max queue | marks"]
    for name, (tput, retx, to, peak, marks) in rows:
        lines.append(f"{name:17s} | {tput:6.1f} | {retx:7.1f} | "
                     f"{to:8d} | {peak:9d} | {marks:5d}")
    report("extension_ecn", "\n".join(lines))
