"""Ablation: the §3.2 prior delay-based schemes vs Vegas.

DUAL, CARD and Tri-S — implemented from the paper's descriptions — run
the same solo Figure-5 transfer as Figures 6/7.  The point the paper
makes qualitatively: all of them are less effective than comparing
measured against *expected* throughput the way Vegas does.
"""

from repro.experiments.transfers import run_solo_transfer

from _report import report

SCHEMES = ("reno", "tahoe", "dual", "card", "tri-s", "vegas")

_cache = {}


def _results():
    if "rows" not in _cache:
        _cache["rows"] = [(name, run_solo_transfer(name, seed=0))
                          for name in SCHEMES]
    return _cache["rows"]


def test_prior_schemes_comparison(benchmark):
    rows = _results()
    benchmark.pedantic(lambda: run_solo_transfer("dual", seed=1),
                       rounds=3, iterations=1)

    by_name = {name: r for name, r in rows}
    assert all(r.done for _, r in rows)
    # Vegas achieves the best throughput of the set on the clean net.
    vegas = by_name["vegas"].throughput_kbps
    for name, result in rows:
        if name != "vegas":
            assert vegas >= result.throughput_kbps * 0.98
    # And (near-)lossless operation, unlike the loss-driven baselines.
    assert by_name["vegas"].retransmitted_kb < 5
    assert by_name["reno"].retransmitted_kb > 10
    assert by_name["tahoe"].retransmitted_kb > 10

    lines = ["scheme | KB/s   | retx KB | timeouts"]
    for name, r in rows:
        lines.append(f"{name:6s} | {r.throughput_kbps:6.1f} | "
                     f"{r.retransmitted_kb:7.1f} | {r.coarse_timeouts:8d}")
    report("ablation_prior_schemes", "\n".join(lines))
