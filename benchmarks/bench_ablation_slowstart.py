"""Ablation: Vegas without the modified slow start (technique 3).

§3.3 argues modified slow start is what removes the slow-start losses
dominating small transfers (Table 5's analysis).  Disabling it should
restore Reno-like doubling and its overshoot losses, most visibly on
small transfers over the Internet path.
"""

from repro.core.vegas import VegasCC
from repro.experiments.internet import run_internet_transfer
from repro.units import kb

from _report import report

_cache = {}


def _mean(factory, size, seeds=range(5)):
    runs = [run_internet_transfer(factory, size=size, seed=s) for s in seeds]
    n = len(runs)
    return (sum(r.throughput_kbps for r in runs) / n,
            sum(r.retransmitted_kb for r in runs) / n,
            sum(r.coarse_timeouts for r in runs) / n)


def _results():
    if "full" not in _cache:
        _cache["full"] = {
            size: _mean(lambda: VegasCC(alpha=1, beta=3), kb(size))
            for size in (512, 128)}
        _cache["ablated"] = {
            size: _mean(lambda: VegasCC(alpha=1, beta=3,
                                        enable_modified_slowstart=False),
                        kb(size))
            for size in (512, 128)}
    return _cache["full"], _cache["ablated"]


def test_ablation_modified_slowstart(benchmark):
    full, ablated = _results()
    benchmark.pedantic(
        lambda: run_internet_transfer(
            lambda: VegasCC(enable_modified_slowstart=False),
            size=kb(128), seed=11),
        rounds=3, iterations=1)

    # Removing the modified slow start increases losses on small
    # transfers (the slow-start overshoot comes back).
    assert ablated[128][1] > full[128][1]

    lines = ["size  | variant          | KB/s   | retx KB | timeouts"]
    for size in (512, 128):
        for label, data in (("full Vegas", full), ("no mod. slow-start",
                                                   ablated)):
            tput, retx, to = data[size]
            lines.append(f"{size:4d}K | {label:16s} | {tput:6.1f} | "
                         f"{retx:7.1f} | {to:8.1f}")
    report("ablation_slowstart", "\n".join(lines))
