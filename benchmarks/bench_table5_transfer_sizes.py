"""Table 5: effects of transfer size over the (emulated) Internet.

Transfers of 1024, 512 and 128 KB for Reno and Vegas-1,3.  Checked
claims: Vegas wins at every size; Reno's retransmitted kilobytes
*flatten* as transfers shrink (the ~20 KB slow-start loss floor the
paper derives), while Vegas' losses scale down roughly linearly —
evidence that the modified slow start eliminates those losses.
"""

from repro.experiments.internet import (
    PAPER_TABLE5,
    run_internet_transfer,
    table5,
)
from repro.metrics.tables import format_table
from repro.units import kb

from _report import report

_cache = {}


def _full_tables():
    if "t5" not in _cache:
        _cache["t5"] = table5(seeds=range(8))
    return _cache["t5"]


def test_table5_transfer_sizes(benchmark):
    tables = _full_tables()
    benchmark.pedantic(
        lambda: run_internet_transfer("reno", size=kb(128), seed=43),
        rounds=3, iterations=1)

    # Vegas wins at every size.
    for size, table in tables.items():
        assert (table.mean("Throughput (KB/s)", "vegas-1,3")
                >= table.mean("Throughput (KB/s)", "reno"))

    # Reno's retransmissions flatten: an 8x smaller transfer keeps far
    # more than 1/8 of the losses (the slow-start floor).
    reno_1024 = tables[kb(1024)].mean("Retransmissions (KB)", "reno")
    reno_128 = tables[kb(128)].mean("Retransmissions (KB)", "reno")
    assert reno_128 > reno_1024 / 8

    # Vegas' retransmissions scale roughly with size: its 128 KB losses
    # are a small fraction of its 1 MB losses.
    vegas_1024 = tables[kb(1024)].mean("Retransmissions (KB)", "vegas-1,3")
    vegas_128 = tables[kb(128)].mean("Retransmissions (KB)", "vegas-1,3")
    assert vegas_128 <= max(1.0, vegas_1024 / 3)

    # And at the smallest size, Vegas loses far less than Reno
    # (paper ratio: 0.17).
    assert vegas_128 < 0.5 * reno_128

    sections = []
    for size in sorted(tables, reverse=True):
        sections.append(format_table(
            f"Table 5 section: {size // 1024} KB transfers (8 runs)",
            tables[size],
            ratios_for={"Throughput (KB/s)": "reno",
                        "Retransmissions (KB)": "reno"},
            paper=PAPER_TABLE5[size]))
    report("table5_transfer_sizes", "\n\n".join(sections))
