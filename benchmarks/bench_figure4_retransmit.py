"""Figure 4: Vegas' fine-grained retransmission mechanism (§3.1).

The classic failure this technique repairs: *two* segments lost from
one window.  Plain Reno fast-retransmits the first loss, but the
partial ACK terminates fast recovery and there are never three more
duplicate ACKs for the second loss — so Reno stalls until the coarse
500 ms-granularity timer fires (the paper measured ~1100 ms for such
recoveries).  Vegas, "when a non-duplicate ACK is received, if it is
the first or second one after a retransmission", checks the next
segment's fine-grained clock and retransmits it immediately.

The bench drops two consecutive segments from a small-window transfer
and compares recovery.
"""

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.reno import RenoCC
from repro.core.vegas import VegasCC
from repro.experiments.figure5 import build_figure5

from _report import report


def _double_loss(cc):
    """Drop two back-to-back segments mid-transfer; return stats."""
    net = build_figure5(buffers=30, seed=3)
    BulkSink(net.protocol("Host1b"), 7001)
    transfer = BulkTransfer(net.protocol("Host1a"), "Host1b", 7001,
                            128 * 1024, cc=cc,
                            sndbuf=6 * 1024, rcvbuf=6 * 1024)
    queue = net.forward_queue
    original = queue.offer
    state = {"drops": 0}

    def lossy(packet, now):
        if (state["drops"] < 2 and now > 2.6
                and packet.src == "Host1a" and packet.size > 500):
            state["drops"] += 1
            return False
        return original(packet, now)

    queue.offer = lossy
    net.sim.run(until=120.0)
    assert transfer.done
    assert state["drops"] == 2
    return transfer.conn.stats


def test_figure4_early_retransmission(benchmark):
    reno_stats = _double_loss(RenoCC())
    vegas_stats = benchmark.pedantic(
        lambda: _double_loss(VegasCC()), rounds=3, iterations=1)

    # Reno: fast retransmit for the first loss, coarse timeout for the
    # second.  Vegas: the post-retransmission check catches it.
    assert reno_stats.coarse_timeouts >= 1
    assert vegas_stats.coarse_timeouts == 0
    assert vegas_stats.fine_retransmits >= 1

    reno_time = reno_stats.transfer_seconds
    vegas_time = vegas_stats.transfer_seconds
    assert vegas_time < reno_time
    report("figure4_retransmit_mechanism", "\n".join([
        "128 KB transfer, 6 KB window, two consecutive segments lost:",
        f"  Reno : {reno_time:6.2f} s total, coarse timeouts="
        f"{reno_stats.coarse_timeouts}, fast retx="
        f"{reno_stats.fast_retransmits}, fine retx="
        f"{reno_stats.fine_retransmits}",
        f"  Vegas: {vegas_time:6.2f} s total, coarse timeouts="
        f"{vegas_stats.coarse_timeouts}, fast retx="
        f"{vegas_stats.fast_retransmits}, fine retx="
        f"{vegas_stats.fine_retransmits}",
        "  (paper §3.1: Reno averaged 1100 ms for multi-drop recoveries;",
        "   less than 300 ms would have been correct with a fine clock)",
    ]))
