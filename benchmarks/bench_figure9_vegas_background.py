"""Figure 9: TCP Vegas with tcplib-generated background traffic.

The trace shows Vegas' congestion avoidance adapting its rate to the
changing background load while keeping losses low.
"""

from repro.experiments.traces import figure9

from _report import report


def _run():
    return figure9(seed=0)


def test_figure9_vegas_with_background(benchmark):
    graph, result = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert result.done
    assert graph.cam is not None
    # The CAM panel shows live adaptation: both increases and holds.
    diffs = [d for _, d in graph.cam.diff_buffers]
    assert len(diffs) > 20
    assert max(diffs) > min(diffs)  # the measured load varies
    # Vegas keeps its losses moderate even while competing (Table 2's
    # average for a 1 MB transfer under this load is ~29 KB).
    assert result.retransmitted_kb < 60.0
    report("figure9_vegas_background", "\n".join([
        f"throughput:      {result.throughput_kbps:6.1f} KB/s",
        f"retransmitted:   {result.retransmitted_kb:6.1f} KB",
        f"coarse timeouts: {result.coarse_timeouts:6d}",
        f"CAM decisions:   {len(diffs):6d}",
        f"diff range:      {min(diffs):5.2f} .. {max(diffs):5.2f} buffers",
    ]))
