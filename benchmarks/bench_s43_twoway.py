"""§4.3 bullet 2: two-way background traffic.

"The throughput ratio stayed the same, but the loss ratio was much
better: 0.29.  Reno resent more data and Vegas remained about the
same."  Reverse-direction tcplib traffic compresses ACKs, making
Reno's clocking burstier while Vegas is largely unaffected.
"""

from repro.experiments.background import run_with_background
from repro.experiments.twoway import table_twoway
from repro.metrics.tables import format_table

from _report import report

_cache = {}


def _grid():
    if "table" not in _cache:
        _cache["table"], _ = table_twoway(seeds=range(3),
                                          buffers=(10, 15, 20))
    return _cache["table"]


def test_twoway_background_traffic(benchmark):
    table = _grid()
    benchmark.pedantic(
        lambda: run_with_background("vegas", seed=88, two_way=True),
        rounds=3, iterations=1)

    reno_tput = table.mean("Throughput (KB/s)", "reno")
    vegas_tput = table.mean("Throughput (KB/s)", "vegas")
    assert vegas_tput > 1.2 * reno_tput

    reno_retx = table.mean("Retransmissions (KB)", "reno")
    vegas_retx = table.mean("Retransmissions (KB)", "vegas")
    loss_ratio = vegas_retx / max(reno_retx, 0.01)
    assert loss_ratio < 0.7  # paper: 0.29

    report("s43_twoway", format_table(
        "§4.3: 1MB transfer with two-way tcplib background traffic",
        table,
        ratios_for={"Throughput (KB/s)": "reno",
                    "Retransmissions (KB)": "reno"})
        + f"\n\nloss ratio vegas/reno: {loss_ratio:.2f}   (paper: 0.29)")
