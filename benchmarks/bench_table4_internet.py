"""Table 4: 1 MB transfers over the (emulated) Internet path.

UA→NIH 17-hop chain with run-to-run varying cross traffic (see
DESIGN.md's substitution note).  Checked claims: Vegas-1,3 and
Vegas-2,4 beat Reno's throughput by ≳25% (paper: 37–42%) with fewer
retransmitted kilobytes and fewer coarse timeouts.
"""

from repro.experiments.internet import (
    PAPER_TABLE4,
    run_internet_transfer,
    table4,
)
from repro.metrics.tables import format_table
from repro.units import kb

from _report import report

_cache = {}


def _full_table():
    if "t4" not in _cache:
        _cache["t4"] = table4(seeds=range(8))
    return _cache["t4"]


def test_table4_internet_1mb(benchmark):
    table = _full_table()
    benchmark.pedantic(
        lambda: run_internet_transfer("vegas-1,3", size=kb(256), seed=42),
        rounds=3, iterations=1)

    reno = table.mean("Throughput (KB/s)", "reno")
    v13 = table.mean("Throughput (KB/s)", "vegas-1,3")
    v24 = table.mean("Throughput (KB/s)", "vegas-2,4")
    assert v13 > 1.15 * reno            # paper: 1.37x
    assert v24 > 1.15 * reno            # paper: 1.42x

    assert (table.mean("Retransmissions (KB)", "vegas-1,3")
            < table.mean("Retransmissions (KB)", "reno"))
    assert (table.mean("Coarse timeouts", "vegas-1,3")
            <= table.mean("Coarse timeouts", "reno"))

    report("table4_internet", format_table(
        "Table 4: 1MB transfers over the emulated UA->NIH path (8 runs)",
        table,
        ratios_for={"Throughput (KB/s)": "reno",
                    "Retransmissions (KB)": "reno"},
        paper=PAPER_TABLE4))
