"""Table 1: one-on-one (300 KB and 1 MB) transfers.

Regenerates the 4-combination grid (reno/reno, reno/vegas, vegas/reno,
vegas/vegas) over the paper's parameters — router buffers of 15 and
20, small-transfer start delays 0–2.5 s — and prints it alongside the
paper's numbers.  The qualitative claims checked: Vegas does not hurt
Reno's throughput, combined retransmissions fall when Vegas is
involved, and vegas/vegas retransmits almost nothing.
"""

from repro.experiments.one_on_one import PAPER_TABLE1, run_one_on_one, table1
from repro.metrics.tables import format_table

from _report import report

_cache = {}


def _full_table():
    if "table" not in _cache:
        _cache["table"], _cache["results"] = table1(
            buffers=(15, 20), delays=(0.0, 0.5, 1.0, 1.5, 2.0, 2.5))
    return _cache["table"]


def test_table1_one_on_one(benchmark):
    table = _full_table()
    # Time one representative run.
    benchmark.pedantic(
        lambda: run_one_on_one("vegas", "reno", delay=1.0, buffers=15),
        rounds=3, iterations=1)

    reno_large_base = table.mean("Large throughput (KB/s)", "reno/reno")
    reno_large_vs_vegas = table.mean("Large throughput (KB/s)", "vegas/reno")
    # "Vegas does not adversely affect Reno's throughput" (paper: 1.09x).
    assert reno_large_vs_vegas > 0.8 * reno_large_base

    combined_base = table.mean("Combined retransmits (KB)", "reno/reno")
    combined_vegas_reno = table.mean("Combined retransmits (KB)",
                                     "vegas/reno")
    combined_all_vegas = table.mean("Combined retransmits (KB)",
                                    "vegas/vegas")
    # Paper: 52 KB -> 19 KB -> <1 KB.
    assert combined_vegas_reno < combined_base
    assert combined_all_vegas < 0.25 * combined_base

    report("table1_one_on_one", format_table(
        "Table 1: One-on-One (300KB small / 1MB large) transfers, "
        "12 runs each",
        table,
        ratios_for={"Small throughput (KB/s)": "reno/reno",
                    "Large throughput (KB/s)": "reno/reno"},
        paper=PAPER_TABLE1))
