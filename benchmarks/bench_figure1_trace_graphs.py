"""Figures 1-3: the trace facility and its graph elements.

Figure 1 is a Reno trace under tcplib background; Figures 2 and 3 key
the common elements and the windows panel.  This bench regenerates the
trace and verifies every keyed element is present, then times the
graph-extraction pipeline itself (the paper stresses the facility's
low overhead).
"""

from repro.experiments.traces import figure1
from repro.trace.graphs import build_trace_graph

from _report import report

_cache = {}


def _trace():
    if "graph" not in _cache:
        _cache["graph"], _cache["result"] = figure1(seed=0)
    return _cache["graph"], _cache["result"]


def test_figure1_trace_graph_elements(benchmark):
    graph, result = _trace()
    # Figure 2's keyed elements:
    assert graph.common.ack_marks          # 1: ACK hash marks
    assert graph.common.send_marks         # 2: send hash marks
    assert graph.common.kilobyte_marks     # 3: KB progress labels
    assert graph.common.timer_diamonds     # 4: coarse timer checks
    # 5/6 (timeout circles, loss lines) appear when Reno loses, which
    # it does under background load:
    assert graph.common.loss_lines
    # Figure 3's windows panel:
    assert graph.windows.congestion_window
    assert graph.windows.send_window
    assert graph.windows.bytes_in_transit
    assert graph.windows.threshold_window
    assert graph.sending_rate

    # Benchmark the analysis pipeline: records -> panels.
    tracer_records = len(graph.common.send_marks)
    rebuilt = benchmark.pedantic(
        lambda: build_trace_graph(_raw_tracer(), name="fig1"),
        rounds=5, iterations=1)
    assert rebuilt.common.send_marks == graph.common.send_marks
    report("figure1_trace_graphs", "\n".join([
        f"send marks:      {len(graph.common.send_marks):6d}",
        f"ack marks:       {len(graph.common.ack_marks):6d}",
        f"timer diamonds:  {len(graph.common.timer_diamonds):6d}",
        f"timeout circles: {len(graph.common.timeout_circles):6d}",
        f"loss lines:      {len(graph.common.loss_lines):6d}",
        f"KB labels:       {len(graph.common.kilobyte_marks):6d}",
        f"throughput:      {result.throughput_kbps:6.1f} KB/s",
    ]))


def _raw_tracer():
    from repro.trace.tracer import ConnectionTracer
    from repro.experiments.background import run_with_background

    if "tracer" not in _cache:
        tracer = ConnectionTracer("fig1")
        run_with_background("reno", seed=0, tracer=tracer)
        _cache["tracer"] = tracer
    return _cache["tracer"]
