"""Table 3: throughput of background traffic vs. the 1 MB transfer's CC.

The paper's point: when the competing 1 MB transfer runs Vegas instead
of Reno, the *background* traffic's throughput rises (68 -> 84 KB/s
with Reno background), and with Vegas background it is insensitive to
the transfer's protocol — Vegas is less aggressive toward shared
router buffers.
"""

from repro.experiments.background import (
    PAPER_TABLE3,
    run_with_background,
    table3,
)

from _report import report

_cache = {}


def _full_table():
    if "t3" not in _cache:
        _cache["t3"] = table3(seeds=range(3), buffers=(10, 15, 20))
    return _cache["t3"]


def test_table3_background_throughput(benchmark):
    results = _full_table()
    benchmark.pedantic(
        lambda: run_with_background("reno", background_cc="vegas", seed=97),
        rounds=3, iterations=1)

    # Background (Reno) does better against a Vegas transfer than
    # against a Reno transfer (paper: 68 vs 84 KB/s).
    assert results[("reno", "vegas")] > results[("reno", "reno")]

    lines = ["background CC | transfer CC | background KB/s | paper"]
    for (bg, xfer), value in sorted(results.items()):
        paper_value = PAPER_TABLE3[(bg, xfer)]
        lines.append(f"{bg:>13} | {xfer:>11} | {value:15.1f} | {paper_value:5.0f}")
    report("table3_background_throughput", "\n".join(lines))
