"""§4.3 bullet 4: multiple competing connections (2, 4, 16).

Jain's fairness index over equal- and mixed-propagation-delay
configurations; plus the stability claim — "there were no stability
problems in the case of 16 connections sharing the bottleneck link,
even though there were only 20 buffers at the router", with Vegas
suffering about half the coarse timeouts thanks to its retransmit
mechanism.
"""

from repro.experiments.fairness_exp import run_competing_connections
from repro.units import kb, mb

from _report import report

_cache = {}

#: Seeds averaged per configuration — single 16-connection runs have
#: ±0.03 Jain-index noise, swamping the Reno/Vegas difference (the
#: paper itself calls its fairness results "preliminary").
SEEDS = (0, 1, 2)


class _AveragedResult:
    """Seed-averaged view of several FairnessResult runs."""

    def __init__(self, runs):
        self.runs = runs
        n = len(runs)
        self.fairness_index = sum(r.fairness_index for r in runs) / n
        self.coarse_timeouts = round(sum(r.coarse_timeouts
                                         for r in runs) / n)
        self.total_retransmit_kb = sum(r.total_retransmit_kb
                                       for r in runs) / n
        self.all_done = all(r.all_done for r in runs)


def _grid():
    if "rows" not in _cache:
        rows = []
        for count, size in ((2, mb(2)), (4, mb(2)), (16, kb(512))):
            for cc in ("reno", "vegas"):
                for mixed in (False, True):
                    runs = [run_competing_connections(
                        cc, count, transfer_bytes=size, mixed_delays=mixed,
                        buffers=20, seed=seed) for seed in SEEDS]
                    rows.append((count, cc, mixed, _AveragedResult(runs)))
        _cache["rows"] = rows
    return _cache["rows"]


def test_fairness_and_stability(benchmark):
    rows = _grid()
    benchmark.pedantic(
        lambda: run_competing_connections("vegas", 4, transfer_bytes=kb(512),
                                          seed=1),
        rounds=3, iterations=1)

    by_key = {(count, cc, mixed): result
              for count, cc, mixed, result in rows}

    # Stability: every transfer completes in every configuration and
    # every seed.
    assert all(result.all_done for _, _, _, result in rows)

    # With 16 connections Vegas is at least as fair as Reno (paper:
    # "Vegas was more fair than Reno in all experiments" at 16),
    # comparing seed-averaged indices.
    for mixed in (False, True):
        assert (by_key[(16, "vegas", mixed)].fairness_index
                >= by_key[(16, "reno", mixed)].fairness_index - 0.02)

    # Mixed-delay: Vegas at least as fair as Reno (paper's claim).
    assert (by_key[(4, "vegas", True)].fairness_index
            >= by_key[(4, "reno", True)].fairness_index - 0.05)

    # Vegas has no more coarse timeouts than Reno at 16 connections.
    for mixed in (False, True):
        assert (by_key[(16, "vegas", mixed)].coarse_timeouts
                <= by_key[(16, "reno", mixed)].coarse_timeouts)

    lines = ["conns | delays | CC    | Jain index | timeouts | retx KB"]
    for count, cc, mixed, result in rows:
        delays = "2:1  " if mixed else "equal"
        lines.append(f"{count:5d} | {delays} | {cc:5s} | "
                     f"{result.fairness_index:10.3f} | "
                     f"{result.coarse_timeouts:8d} | "
                     f"{result.total_retransmit_kb:7.1f}")
    report("s43_fairness", "\n".join(lines))
