"""Ablation: BaseRTT sensitivity (§6).

"Vegas' congestion detection algorithm depends on an accurate value
for BaseRTT.  If our estimate for the BaseRTT is too small, then the
protocol's throughput will stay below the available bandwidth; if it
is too large, then it will overrun the connection."

We force mis-estimated BaseRTT values via a controller subclass that
pins the estimate after the handshake, and measure the predicted
asymmetry on the solo Figure-5 run.
"""

from repro.core.vegas import VegasCC
from repro.experiments.transfers import run_solo_transfer

from _report import report


class PinnedBaseRttVegas(VegasCC):
    """Vegas with BaseRTT forced to a multiple of the true minimum.

    The pin is enforced on every ACK (tracking the true minimum sample
    ourselves), so neither the estimator's min-tracking nor CAM's own
    BaseRTT reset can undo the injected mis-estimate.
    """

    def __init__(self, scale: float, **kwargs):
        super().__init__(**kwargs)
        self.scale = scale
        self._true_min = None

    def on_new_ack(self, acked_bytes, now, rtt_sample):
        if rtt_sample is not None and (self._true_min is None
                                       or rtt_sample < self._true_min):
            self._true_min = rtt_sample
        if self._true_min is not None:
            self.conn.fine_rtt.set_base_rtt(self._true_min * self.scale)
        super().on_new_ack(acked_bytes, now, rtt_sample)


SCALES = (0.5, 0.8, 1.0, 1.3, 1.8)

_cache = {}


def _sweep():
    if "rows" not in _cache:
        _cache["rows"] = [
            (scale, run_solo_transfer(
                lambda s=scale: PinnedBaseRttVegas(s), seed=0))
            for scale in SCALES]
    return _cache["rows"]


def test_basertt_sensitivity(benchmark):
    rows = _sweep()
    benchmark.pedantic(
        lambda: run_solo_transfer(lambda: PinnedBaseRttVegas(0.5), seed=1),
        rounds=3, iterations=1)

    by_scale = {scale: r for scale, r in rows}
    accurate = by_scale[1.0]
    # Too-small BaseRTT: throughput stays below available bandwidth.
    assert by_scale[0.5].throughput_kbps < accurate.throughput_kbps
    # Too-large BaseRTT: the connection overruns — more losses than the
    # accurate setting.
    assert (by_scale[1.8].retransmitted_kb
            >= accurate.retransmitted_kb)

    lines = ["BaseRTT scale | KB/s   | retx KB | timeouts"]
    for scale, r in rows:
        lines.append(f"{scale:13.1f} | {r.throughput_kbps:6.1f} | "
                     f"{r.retransmitted_kb:7.1f} | {r.coarse_timeouts:8d}")
    report("ablation_basertt", "\n".join(lines))
