"""``python -m repro`` — the package's command-line entry point.

Dispatches to :mod:`repro.cli`, so ``python -m repro bench`` and
``python -m repro run-all ...`` are equivalent to the longer
``python -m repro.cli`` spelling.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
