"""Unit conventions shared by the whole library.

The paper reports sizes in kilobytes and rates in KB/s, where one
kilobyte is 1024 bytes.  Time is kept in float seconds throughout the
simulator.  This module centralises those conventions together with a
handful of small conversion helpers so the rest of the code never has
magic constants sprinkled through it.
"""

from __future__ import annotations

#: Bytes per kilobyte, following the paper's convention (1 KB = 1024 B).
KB = 1024

#: Bytes per megabyte.
MB = 1024 * KB

#: Seconds per millisecond.
MS = 1e-3

#: Seconds per microsecond.
US = 1e-6


def kb(n: float) -> int:
    """Return *n* kilobytes expressed in bytes (rounded to whole bytes)."""
    return int(round(n * KB))


def mb(n: float) -> int:
    """Return *n* megabytes expressed in bytes (rounded to whole bytes)."""
    return int(round(n * MB))


def kbps(n: float) -> float:
    """Return a rate of *n* KB/s expressed in bytes per second."""
    return n * KB


def mbps(n: float) -> float:
    """Return a rate of *n* megabits per second in bytes per second."""
    return n * 1e6 / 8.0


def ms(n: float) -> float:
    """Return *n* milliseconds expressed in seconds."""
    return n * MS


def bytes_to_kb(n: float) -> float:
    """Convert a byte count to kilobytes (float, paper convention)."""
    return n / KB


def rate_kbps(nbytes: float, seconds: float) -> float:
    """Throughput in KB/s for *nbytes* transferred in *seconds*.

    Returns 0.0 when the elapsed time is not positive, which happens
    for degenerate zero-length transfers.
    """
    if seconds <= 0:
        return 0.0
    return nbytes / KB / seconds
