"""repro — a reproduction of *TCP Vegas: New Techniques for Congestion
Detection and Avoidance* (Brakmo, O'Malley & Peterson, SIGCOMM 1994).

The package is a packet-level discrete-event network simulator with a
full BSD-style TCP implementation whose sender-side congestion control
is pluggable.  It ships the paper's contribution (:class:`VegasCC`),
the Reno/Tahoe baselines, the prior delay-based schemes the paper
discusses (DUAL, CARD, Tri-S), the tcplib-style TRAFFIC workload
generator, the trace facility behind the paper's graphs, and drivers
for every table and figure in the evaluation.

Quickstart::

    from repro import Simulator, Topology, TCPProtocol, VegasCC
    from repro.apps import BulkSink, BulkTransfer
    from repro.units import kbps, mb, ms

    sim = Simulator()
    topo = Topology(sim)
    a, b = topo.add_host("A"), topo.add_host("B")
    r1, r2 = topo.add_router("R1"), topo.add_router("R2")
    topo.add_lan([a, r1]); topo.add_lan([r2, b])
    topo.add_link(r1, r2, bandwidth=kbps(200), delay=ms(50),
                  queue_capacity=10)
    topo.build_routes()
    sender, receiver = TCPProtocol(a), TCPProtocol(b)
    BulkSink(receiver, 7001)
    transfer = BulkTransfer(sender, "B", 7001, mb(1), cc=VegasCC())
    sim.run(until=60)
    print(transfer.conn.stats.summary())
"""

from repro.core import (
    CardCC,
    CongestionControl,
    DualCC,
    RenoCC,
    TahoeCC,
    TriSCC,
    VegasCC,
    make_cc,
)
from repro.metrics import FlowStats, jain_fairness_index
from repro.net import Topology
from repro.sim import Simulator
from repro.tcp import TCPConnection, TCPProtocol
from repro.trace import ConnectionTracer, RouterTracer, build_trace_graph

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Topology",
    "TCPProtocol",
    "TCPConnection",
    "CongestionControl",
    "RenoCC",
    "TahoeCC",
    "VegasCC",
    "DualCC",
    "CardCC",
    "TriSCC",
    "make_cc",
    "FlowStats",
    "jain_fairness_index",
    "ConnectionTracer",
    "RouterTracer",
    "build_trace_graph",
    "__version__",
]
