"""Name-based congestion-control registry.

Experiments refer to protocols by name ("reno", "vegas", "vegas-1,3",
...), mirroring the paper's table headings.  :func:`make_cc` turns a
name into a fresh controller instance; :func:`cc_factory` returns a
zero-argument callable for listener-side use.

Beyond construction, the registry carries per-scheme capability
metadata (:class:`SchemeInfo`): which congestion *signal* a scheme
reacts to (loss vs delay), whether it repairs holes with SACK, and
whether a name is a parameter variant of another scheme.  The arena
(:mod:`repro.arena`) uses this to build its tournament roster —
:func:`arena_roster` — without hard-coding the scheme list a second
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.base import CongestionControl
from repro.core.card import CardCC
from repro.core.dual import DualCC
from repro.core.newreno import NewRenoCC
from repro.core.reno import RenoCC
from repro.core.sack import SackRenoCC, SackVegasCC
from repro.core.tahoe import TahoeCC
from repro.core.tris import TriSCC
from repro.core.vegas import VegasCC
from repro.errors import ConfigurationError

_BUILDERS: Dict[str, Callable[[], CongestionControl]] = {
    "fixed": CongestionControl,
    "reno": RenoCC,
    "newreno": NewRenoCC,
    "tahoe": TahoeCC,
    "vegas": VegasCC,
    "vegas-1,3": lambda: VegasCC(alpha=1.0, beta=3.0),
    "vegas-2,4": lambda: VegasCC(alpha=2.0, beta=4.0),
    "vegas-paced": lambda: VegasCC(paced_slow_start=True),
    "reno-sack": SackRenoCC,
    "vegas-sack": SackVegasCC,
    "dual": DualCC,
    "card": CardCC,
    "tri-s": TriSCC,
}


@dataclass(frozen=True)
class SchemeInfo:
    """Capability metadata for one registered scheme.

    ``signal`` is the congestion signal the scheme's avoidance policy
    reacts to: ``"loss"`` (Reno-family probing), ``"delay"`` (Vegas'
    expected-vs-actual throughput, DUAL/CARD RTT trends, Tri-S
    gradients), or ``"none"`` (the fixed-window base).  ``variant_of``
    names the scheme a registry entry merely re-parameterizes
    ("vegas-1,3" is Vegas with a different α/β band) — variants are
    excluded from the arena roster so the tournament compares
    *algorithms*, not parameter settings.
    """

    name: str
    signal: str                       # "loss" | "delay" | "none"
    sack: bool = False                # repairs holes with SACK blocks
    variant_of: Optional[str] = None  # parameter variant of this scheme


_INFO: Dict[str, SchemeInfo] = {info.name: info for info in (
    SchemeInfo("fixed", "none"),
    SchemeInfo("reno", "loss"),
    SchemeInfo("newreno", "loss"),
    SchemeInfo("tahoe", "loss"),
    SchemeInfo("vegas", "delay"),
    SchemeInfo("vegas-1,3", "delay", variant_of="vegas"),
    SchemeInfo("vegas-2,4", "delay", variant_of="vegas"),
    SchemeInfo("vegas-paced", "delay", variant_of="vegas"),
    SchemeInfo("reno-sack", "loss", sack=True),
    SchemeInfo("vegas-sack", "delay", sack=True, variant_of="vegas"),
    SchemeInfo("dual", "delay"),
    SchemeInfo("card", "delay"),
    SchemeInfo("tri-s", "delay"),
)}


def register(name: str, builder: Callable[[], CongestionControl],
             info: Optional[SchemeInfo] = None) -> None:
    """Register a custom controller under *name* (overwrites allowed).

    *info*, when given, attaches capability metadata so the custom
    scheme participates in introspection (and, if eligible, the arena
    roster); without it the scheme is constructible but reported as an
    unclassified ``signal="none"`` entry.
    """
    _BUILDERS[name] = builder
    if info is not None:
        _INFO[name] = info
    elif name not in _INFO:
        _INFO[name] = SchemeInfo(name, "none")


def available() -> list:
    """Sorted list of registered controller names."""
    return sorted(_BUILDERS)


def scheme_info(name: str) -> SchemeInfo:
    """Capability metadata for the named scheme."""
    if name not in _BUILDERS:
        raise ConfigurationError(
            f"unknown congestion control {name!r}; available: {available()}")
    return _INFO[name]


def arena_roster() -> List[str]:
    """The tournament roster: every distinct congestion *algorithm*.

    Excludes the fixed-window base (no congestion reaction to compare)
    and parameter variants (``variant_of`` set), leaving the paper's
    eight: Reno, NewReno, Tahoe, SACK-Reno, Vegas, DUAL, CARD, Tri-S.
    """
    return [name for name in available()
            if _INFO[name].signal != "none" and _INFO[name].variant_of is None]


def cc_factory(name: str) -> Callable[[], CongestionControl]:
    """Return a zero-argument factory for the named controller."""
    try:
        return _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown congestion control {name!r}; available: {available()}"
        ) from None


def make_cc(name: str) -> CongestionControl:
    """Instantiate the named controller."""
    return cc_factory(name)()
