"""Name-based congestion-control registry.

Experiments refer to protocols by name ("reno", "vegas", "vegas-1,3",
...), mirroring the paper's table headings.  :func:`make_cc` turns a
name into a fresh controller instance; :func:`cc_factory` returns a
zero-argument callable for listener-side use.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.base import CongestionControl
from repro.core.card import CardCC
from repro.core.dual import DualCC
from repro.core.newreno import NewRenoCC
from repro.core.reno import RenoCC
from repro.core.sack import SackRenoCC, SackVegasCC
from repro.core.tahoe import TahoeCC
from repro.core.tris import TriSCC
from repro.core.vegas import VegasCC
from repro.errors import ConfigurationError

_BUILDERS: Dict[str, Callable[[], CongestionControl]] = {
    "fixed": CongestionControl,
    "reno": RenoCC,
    "newreno": NewRenoCC,
    "tahoe": TahoeCC,
    "vegas": VegasCC,
    "vegas-1,3": lambda: VegasCC(alpha=1.0, beta=3.0),
    "vegas-2,4": lambda: VegasCC(alpha=2.0, beta=4.0),
    "vegas-paced": lambda: VegasCC(paced_slow_start=True),
    "reno-sack": SackRenoCC,
    "vegas-sack": SackVegasCC,
    "dual": DualCC,
    "card": CardCC,
    "tri-s": TriSCC,
}


def register(name: str, builder: Callable[[], CongestionControl]) -> None:
    """Register a custom controller under *name* (overwrites allowed)."""
    _BUILDERS[name] = builder


def available() -> list:
    """Sorted list of registered controller names."""
    return sorted(_BUILDERS)


def cc_factory(name: str) -> Callable[[], CongestionControl]:
    """Return a zero-argument factory for the named controller."""
    try:
        return _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown congestion control {name!r}; available: {available()}"
        ) from None


def make_cc(name: str) -> CongestionControl:
    """Instantiate the named controller."""
    return cc_factory(name)()
