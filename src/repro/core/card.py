"""Jain's CARD (Congestion Avoidance using Round-trip Delay).

Reconstructed from the paper's §3.2 description: the window is
adjusted once every two round-trip delays based on the *delay
gradient*::

    (WindowSize_now - WindowSize_old) x (RTT_now - RTT_old)

If the product is positive the window is decreased by one-eighth; if
negative or zero it is increased by one maximum segment size.  As the
paper notes, "the window changes during every adjustment, that is, it
oscillates around its optimal point."

Slow start and loss recovery are inherited from Reno; CARD replaces
only the congestion-avoidance growth rule (per-ACK linear growth is
disabled once out of slow start so the gradient probe is the only
window driver).
"""

from __future__ import annotations

from typing import Optional

from repro.core.epoch import RttEpochMixin
from repro.core.reno import RenoCC
from repro.tcp import constants as C


class CardCC(RttEpochMixin, RenoCC):
    """CARD: delay-gradient congestion avoidance over Reno."""

    name = "card"

    def __init__(self, decrease_factor: float = 0.875, **kwargs):
        super().__init__(**kwargs)
        self.decrease_factor = decrease_factor
        self._epoch_init()
        self._prev_window: Optional[int] = None
        self._prev_rtt: Optional[float] = None
        self.gradient_decreases = 0
        self.gradient_increases = 0

    def _grow_window(self, now: float) -> None:
        # Suppress Reno's per-ACK growth outside slow start: the
        # gradient probe is CARD's only window driver in avoidance.
        if self.cwnd < self.ssthresh:
            super()._grow_window(now)

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        super().on_new_ack(acked_bytes, now, rtt_sample)
        if not self._epoch_on_ack(now) or self.epoch_count % 2 != 0:
            return
        if rtt_sample is None:
            return
        if self._prev_window is not None and self._prev_rtt is not None:
            gradient = ((self.cwnd - self._prev_window)
                        * (rtt_sample - self._prev_rtt))
            mss = self.conn.mss
            if gradient > 0:
                reduced = int(self.cwnd * self.decrease_factor)
                self.gradient_decreases += 1
                self._set_cwnd(max(2 * mss, (reduced // mss) * mss), now)
            else:
                self.gradient_increases += 1
                self._set_cwnd(min(C.MAX_CWND, self.cwnd + mss), now)
        self._prev_window = self.cwnd
        self._prev_rtt = rtt_sample
