"""Wang & Crowcroft's DUAL congestion avoidance.

Reconstructed from the paper's §3.2 description: "The congestion
window normally increases as in Reno, but every two round-trip delays
the algorithm checks to see if the current RTT is greater than the
average of the minimum and maximum RTTs seen so far.  If it is, then
the algorithm decreases the congestion window by one-eighth."

Loss recovery (fast retransmit / fast recovery / coarse timeouts) is
inherited from Reno — DUAL is a congestion-*avoidance* overlay on the
standard machinery.
"""

from __future__ import annotations

from typing import Optional

from repro.core.epoch import RttEpochMixin
from repro.core.reno import RenoCC


class DualCC(RttEpochMixin, RenoCC):
    """DUAL: delay-threshold congestion avoidance over Reno."""

    name = "dual"

    def __init__(self, decrease_factor: float = 0.875, **kwargs):
        super().__init__(**kwargs)
        self.decrease_factor = decrease_factor
        self._epoch_init()
        self.rtt_min_seen: Optional[float] = None
        self.rtt_max_seen: Optional[float] = None
        self.delay_decreases = 0

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        if rtt_sample is not None:
            if self.rtt_min_seen is None or rtt_sample < self.rtt_min_seen:
                self.rtt_min_seen = rtt_sample
            if self.rtt_max_seen is None or rtt_sample > self.rtt_max_seen:
                self.rtt_max_seen = rtt_sample
        super().on_new_ack(acked_bytes, now, rtt_sample)
        if not self._epoch_on_ack(now):
            return
        if self.epoch_count % 2 != 0:
            return  # check every *two* round trips
        if (rtt_sample is not None and self.rtt_min_seen is not None
                and self.rtt_max_seen is not None):
            threshold = (self.rtt_min_seen + self.rtt_max_seen) / 2.0
            if rtt_sample > threshold:
                mss = self.conn.mss
                reduced = int(self.cwnd * self.decrease_factor)
                self.delay_decreases += 1
                self._set_cwnd(max(2 * mss, (reduced // mss) * mss), now)
