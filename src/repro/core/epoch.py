"""Round-trip epoch tracking shared by the delay-based schemes.

DUAL, CARD and Tri-S all adjust their windows "every (two) round-trip
delay(s)".  This mixin detects RTT boundaries the standard way: mark
``snd_nxt``, and when ``snd_una`` catches up one round trip has
elapsed.  It also measures per-epoch goodput, which Tri-S needs.
"""

from __future__ import annotations

from typing import Optional


class RttEpochMixin:
    """Detect round-trip boundaries from acknowledgement progress."""

    def _epoch_init(self) -> None:
        self._epoch_mark: Optional[int] = None
        self._epoch_start_time = 0.0
        self._epoch_start_acked = 0
        self.epoch_count = 0
        self._epoch_bytes = 0
        self._epoch_seconds = 0.0

    def _epoch_on_ack(self, now: float) -> bool:
        """Return True exactly once per round trip.

        On a boundary, ``self._epoch_bytes`` / ``self._epoch_seconds``
        describe the just-finished round trip.
        """
        conn = self.conn
        if self._epoch_mark is None:
            self._epoch_mark = conn.snd_nxt
            self._epoch_start_time = now
            self._epoch_start_acked = conn.stats.app_bytes_acked
            return False
        if conn.snd_una < self._epoch_mark:
            return False
        self.epoch_count += 1
        self._epoch_bytes = conn.stats.app_bytes_acked - self._epoch_start_acked
        self._epoch_seconds = max(1e-9, now - self._epoch_start_time)
        self._epoch_mark = conn.snd_nxt
        self._epoch_start_time = now
        self._epoch_start_acked = conn.stats.app_bytes_acked
        return True

    @property
    def epoch_throughput(self) -> float:
        """Goodput (bytes/second) over the last completed round trip."""
        return self._epoch_bytes / self._epoch_seconds
