"""Congestion-control policies: Vegas (the paper's contribution),
Reno/Tahoe baselines, and the §3.2 prior delay-based schemes."""

from repro.core.base import CongestionControl
from repro.core.card import CardCC
from repro.core.dual import DualCC
from repro.core.newreno import NewRenoCC
from repro.core.registry import (
    SchemeInfo,
    arena_roster,
    available,
    cc_factory,
    make_cc,
    register,
    scheme_info,
)
from repro.core.reno import RenoCC
from repro.core.sack import SackRenoCC, SackVegasCC
from repro.core.tahoe import TahoeCC
from repro.core.tris import TriSCC
from repro.core.vegas import VegasCC

__all__ = [
    "CongestionControl",
    "RenoCC",
    "NewRenoCC",
    "SackRenoCC",
    "SackVegasCC",
    "TahoeCC",
    "VegasCC",
    "DualCC",
    "CardCC",
    "TriSCC",
    "SchemeInfo",
    "arena_roster",
    "available",
    "cc_factory",
    "make_cc",
    "register",
    "scheme_info",
]
