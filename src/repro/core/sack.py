"""SACK-based loss recovery (the §6 comparison point).

The paper's §6 weighs selective acknowledgements against Vegas'
retransmission mechanism and asks "how Vegas and the selective ACK
mechanism work in tandem".  Two controllers answer that:

* :class:`SackRenoCC` — Reno whose fast recovery is scoreboard-driven:
  on entering recovery it halves the window once, then fills *holes*
  (un-SACKed ranges below the highest SACKed byte) instead of blindly
  resending from ``snd_una``, and partial ACKs do not abort recovery.
  This is a simplified RFC 3517-style sender with a ``HighRxt`` mark
  so each hole is retransmitted once per recovery episode.

* :class:`SackVegasCC` — Vegas with the same hole repair grafted onto
  its loss paths: the fine-grained clocks still decide *when* loss has
  happened and how the window reacts; the scoreboard tells the sender
  *which* segments above ``snd_una`` also need repair, so multi-loss
  windows heal in one round trip instead of one loss per RTT.

Both require the connection to be opened with ``sack=True`` on both
endpoints (the receiver must generate blocks).
"""

from __future__ import annotations

from typing import Optional

from repro.core.reno import RenoCC
from repro.core.vegas import VegasCC
from repro.tcp import constants as C


class HoleRepairMixin:
    """Scoreboard-guided retransmission with a HighRxt guard."""

    def _holes_init(self) -> None:
        self.high_rxt = 0
        self.hole_retransmits = 0

    def _repair_next_hole(self, limit: Optional[int] = None) -> bool:
        """Retransmit the first not-yet-repaired hole; True if sent.

        ``limit`` bounds the repair to sequence numbers below it (the
        recovery point); ``HighRxt`` ensures each hole is sent once.
        """
        conn = self.conn
        start = max(conn.snd_una, self.high_rxt)
        hole = conn.sack_board.next_hole(start, conn.mss)
        if hole is None:
            return False
        seq, length = hole
        if limit is not None and seq >= limit:
            return False
        self.high_rxt = seq + length
        self.hole_retransmits += 1
        conn.retransmit_hole(seq, length)
        return True

    def _holes_note_ack(self) -> None:
        if self.conn.snd_una > self.high_rxt:
            self.high_rxt = self.conn.snd_una

    def _holes_reset(self) -> None:
        self.high_rxt = self.conn.snd_una
        self.conn.sack_board.clear()  # RFC 2018: SACK info is advisory


class SackRenoCC(HoleRepairMixin, RenoCC):
    """Reno with scoreboard-driven (RFC 3517-style) fast recovery."""

    name = "reno-sack"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.recovery_point = 0
        self._holes_init()

    def on_dup_ack(self, count: int, now: float) -> None:
        conn = self.conn
        if not self.in_recovery and (count >= self.dupack_threshold
                                     or conn.sack_board.sacked_bytes()
                                     > self.dupack_threshold * conn.mss):
            # Enter recovery: one multiplicative decrease, then fill
            # holes under the scoreboard's guidance.
            self.recovery_point = conn.snd_nxt
            self._set_ssthresh(self.half_window(), now)
            self.in_recovery = True
            self._set_cwnd(self.ssthresh + self.dupack_threshold * conn.mss,
                           now)
            if not self._repair_next_hole(self.recovery_point):
                conn.retransmit_first_unacked("fast")
                self.high_rxt = max(self.high_rxt,
                                    conn.snd_una + conn.mss)
            return
        if self.in_recovery:
            # Each further dup ACK: inflate and repair the next hole.
            self._set_cwnd(min(C.MAX_CWND, self.cwnd + conn.mss), now)
            self._repair_next_hole(self.recovery_point)

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        self._holes_note_ack()
        if self.in_recovery and self.conn.snd_una < self.recovery_point:
            # Partial ACK: stay in recovery, repair the next hole.
            if not self._repair_next_hole(self.recovery_point):
                self.conn.retransmit_first_unacked("fast")
                self.high_rxt = max(self.high_rxt,
                                    self.conn.snd_una + self.conn.mss)
            deflated = max(self.ssthresh,
                           self.cwnd - acked_bytes + self.conn.mss)
            self._set_cwnd(min(C.MAX_CWND, deflated), now)
            return
        super().on_new_ack(acked_bytes, now, rtt_sample)

    def on_coarse_timeout(self, now: float) -> None:
        self._holes_reset()
        super().on_coarse_timeout(now)


class SackVegasCC(HoleRepairMixin, VegasCC):
    """Vegas working in tandem with selective acknowledgements.

    Vegas' own mechanisms are unchanged — the fine-grained clocks
    still detect losses and apply the epoch-guarded decreases — but
    whenever duplicate or partial ACKs reveal holes *beyond* the first
    unacknowledged segment, the scoreboard repairs them immediately
    instead of one-per-round-trip through the §3.1 ACK checks.
    """

    name = "vegas-sack"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._holes_init()

    def on_dup_ack(self, count: int, now: float) -> None:
        super().on_dup_ack(count, now)
        conn = self.conn
        # Repair one hole per duplicate ACK beyond the first segment
        # (which Vegas' fast/fine paths own).
        start = max(conn.snd_una + conn.mss, self.high_rxt)
        hole = conn.sack_board.next_hole(start, conn.mss)
        if hole is not None:
            seq, length = hole
            self.high_rxt = seq + length
            self.hole_retransmits += 1
            conn.retransmit_hole(seq, length)

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        self._holes_note_ack()
        super().on_new_ack(acked_bytes, now, rtt_sample)
        # After a retransmission, partial ACKs expose remaining holes;
        # repair one per ACK while the post-retransmit window is open.
        if self.acks_after_retx > 0:
            self._repair_next_hole()

    def on_coarse_timeout(self, now: float) -> None:
        self._holes_reset()
        super().on_coarse_timeout(now)
