"""TCP Vegas congestion control — the paper's contribution.

Implements the three techniques of §3:

**Technique 1 — new retransmission mechanism (§3.1).**  The sender
reads the clock for every segment transmitted (the connection keeps
per-segment fine timestamps).  On a *duplicate* ACK, if the first
unacknowledged segment has been outstanding longer than the
fine-grained RTO, it is retransmitted immediately — no need to wait
for three duplicates.  On the first or second *non-duplicate* ACK
after a retransmission, the same check runs again, catching further
segments lost before the retransmission.  The congestion window is
decreased only for losses that occurred at the current sending rate:
a retransmission triggers a decrease only if the lost segment was
(re)sent after the previous decrease.

**Technique 2 — congestion avoidance mechanism, CAM (§3.2).**  Once
per RTT a distinguished segment is timed; when its ACK arrives the
sender computes::

    Expected = WindowSize / BaseRTT
    Actual   = bytes transmitted during the RTT / sampled RTT
    Diff     = Expected - Actual        (>= 0 by definition)

expressed in router buffers (``Diff * BaseRTT / MSS``).  When
``Diff < α`` the window grows by one segment over the next RTT; when
``Diff > β`` it shrinks by one segment; otherwise it stays put.  The
connection thus tries to keep between α and β extra segments queued
in the network.  ``BaseRTT`` is the minimum RTT observed; if Actual
ever exceeds Expected, BaseRTT is reset to the latest sample, exactly
as the paper prescribes.

**Technique 3 — modified slow-start (§3.3).**  During slow start the
window doubles only every *other* RTT; in between it stays fixed so a
valid Expected/Actual comparison can be made.  When ``Diff`` exceeds
the ``γ`` threshold, Vegas leaves slow start for the linear
increase/decrease mode (trimming the window by 1/8 — the SIGCOMM text
does not give the factor; this follows the authors' follow-up
description and is configurable).

All three techniques can be disabled individually (``enable_*``
flags), which the ablation benchmarks use to attribute Vegas' gains.
Vegas retains Reno's coarse-grained timeout as a last resort — under
heavy congestion it "falls back" to Reno, as §6 discusses.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import CongestionControl
from repro.tcp import constants as C
from repro.trace.records import Kind

#: Mode tags.
SLOW_START = "slow-start"
LINEAR = "linear"


class VegasCC(CongestionControl):
    """Vegas: proactive delay-based congestion control.

    Args:
        alpha: lower CAM threshold in router buffers (paper: 1 or 2).
        beta: upper CAM threshold in router buffers (paper: 3 or 4).
        gamma: slow-start exit threshold in router buffers.
        enable_cam: technique 2 on/off (ablation hook).
        enable_fine_retransmit: technique 1 on/off (ablation hook).
        enable_modified_slowstart: technique 3 on/off (ablation hook).
        fine_loss_factor: multiplicative window cut when a loss is
            detected by the fine-grained mechanism (3/4; gentler than
            Reno's 1/2 because detection is earlier and surer).
        ss_exit_factor: window trim on leaving slow start via γ.
        paced_slow_start: §3.3's future work, implemented: "use rate
            control during slow-start, using a rate defined by the
            current window size and the BaseRTT".  During slow start
            transmissions are paced at ``cwnd / BaseRTT`` instead of
            being clocked out in back-to-back bursts of two per ACK,
            which removes the burst overshoot at under-buffered
            bottlenecks.
    """

    name = "vegas"

    def __init__(self, alpha: float = 2.0, beta: float = 4.0,
                 gamma: float = 1.0,
                 initial_cwnd_segments: int = 1,
                 dupack_threshold: int = C.DUPACK_THRESHOLD,
                 enable_cam: bool = True,
                 enable_fine_retransmit: bool = True,
                 enable_modified_slowstart: bool = True,
                 fine_loss_factor: float = 0.75,
                 ss_exit_factor: float = 0.875,
                 paced_slow_start: bool = False):
        super().__init__(initial_cwnd_segments)
        if not alpha < beta:
            raise ValueError("Vegas requires alpha < beta")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.dupack_threshold = dupack_threshold
        self.enable_cam = enable_cam
        self.enable_fine_retransmit = enable_fine_retransmit
        self.enable_modified_slowstart = enable_modified_slowstart
        self.fine_loss_factor = fine_loss_factor
        self.ss_exit_factor = ss_exit_factor
        self.paced_slow_start = paced_slow_start

        self.mode = SLOW_START
        self.ss_grow = True               # exponential growth allowed this RTT
        self.in_recovery = False
        self.last_decrease_time = float("-inf")
        self.acks_after_retx = 0          # §3.1 second bullet counter
        # Distinguished-segment measurement state (one per RTT) lives
        # in the flat store slot shared with the connection (columns
        # cam_end/cam_sent/cam_window/cam_bytes_base/cam_cwnd0/
        # cam_max_flight/cam_samples); see CongestionControl.attach.
        # Counters for analysis/tests.
        self.cam_decisions = 0
        self.cam_increases = 0
        self.cam_decreases = 0
        self.early_retransmits = 0

    # ------------------------------------------------------------------
    # CAM accumulator accessors (hot code reads the store directly)
    # ------------------------------------------------------------------
    @property
    def _cam_end_seq(self) -> Optional[int]:
        """Distinguished segment end for this epoch (``None`` if idle)."""
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        v = fs.cam_end[self._fi]
        return None if v < 0 else v

    @_cam_end_seq.setter
    def _cam_end_seq(self, value: Optional[int]) -> None:
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        fs.cam_end[self._fi] = -1 if value is None else value

    @property
    def _cam_rtt_samples(self) -> list:
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        return fs.cam_samples[self._fi]

    @_cam_rtt_samples.setter
    def _cam_rtt_samples(self, value: list) -> None:
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        fs.cam_samples[self._fi] = value

    # ------------------------------------------------------------------
    # Sending: distinguished-segment selection
    # ------------------------------------------------------------------
    def on_segment_sent(self, seq: int, length: int, end_seq: int,
                        is_retransmit: bool, now: float) -> None:
        if length == 0:
            return
        fs = self._fs
        i = self._fi
        cam_end = fs.cam_end[i]
        if is_retransmit:
            # A retransmission overlapping the distinguished segment
            # invalidates the measurement.
            if cam_end >= 0 and seq < cam_end <= end_seq:
                fs.cam_end[i] = -1
            return
        if cam_end < 0:
            fs.cam_end[i] = end_seq
            fs.cam_sent[i] = now
            # Expected = WindowSize / BaseRTT with WindowSize "the size
            # of the current congestion window" (§3.2).
            cwnd = fs.cwnd[i]
            fs.cam_window[i] = cwnd
            # Count the distinguished segment itself among the bytes
            # transmitted during its RTT.
            fs.cam_bytes_base[i] = self.conn.stats.bytes_sent_total - length
            fs.cam_cwnd0[i] = cwnd
            fs.cam_max_flight[i] = self.conn.flight_size()
            fs.cam_samples[i] = []
        else:
            flight = self.conn.flight_size()
            if flight > fs.cam_max_flight[i]:
                fs.cam_max_flight[i] = flight

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        fs = self._fs
        i = self._fi
        mss = self.conn.mss
        # Collect per-segment clock samples for the current CAM epoch.
        # A robust summary of them drives the rate comparison: single
        # samples can be inflated by up to 200 ms by delayed ACKs,
        # which at small windows would read as phantom queueing.
        if rtt_sample is not None and fs.cam_end[i] >= 0:
            fs.cam_samples[i].append(rtt_sample)
        if self.in_recovery:
            # Recovery ACK (Reno-style deflation after a 3-dup-ack event).
            self.in_recovery = False
            self._set_cwnd(max(fs.ssthresh[i], 2 * mss), now)

        # §3.1, second bullet: on the first/second non-duplicate ACK
        # after a retransmission, check the next unacked segment's age.
        if self.enable_fine_retransmit and self.acks_after_retx > 0:
            self.acks_after_retx -= 1
            self._check_stale_first_unacked(now, path=2)

        # Once-per-RTT congestion-avoidance decision.
        cam_end = fs.cam_end[i]
        if cam_end >= 0 and self.conn.snd_una >= cam_end:
            self._cam_decision(now)
            fs.cam_end[i] = -1

        # Per-ACK window growth applies only in slow start.
        if self.mode == SLOW_START and not self.in_recovery:
            cwnd = fs.cwnd[i]
            if cwnd >= fs.ssthresh[i]:
                # Reno's own slow-start exit (relevant after timeouts).
                self._leave_slow_start(now, trim=False)
            elif (not self.enable_modified_slowstart) or self.ss_grow:
                self._set_cwnd(min(C.MAX_CWND, cwnd + mss), now)
        elif self.mode == LINEAR and not self.enable_cam:
            # CAM ablated: fall back to Reno congestion avoidance.
            cwnd = fs.cwnd[i]
            self._set_cwnd(min(C.MAX_CWND,
                               cwnd + max(1, mss * mss // cwnd)),
                           now)

    def _leave_slow_start(self, now: float, trim: bool) -> None:
        if self.mode == SLOW_START:
            self.mode = LINEAR
            if trim:
                trimmed = int(self.cwnd * self.ss_exit_factor)
                self._set_cwnd(max(2 * self.conn.mss,
                                   (trimmed // self.conn.mss) * self.conn.mss),
                               now)
            self.conn.tracer.record(now, Kind.SS_MODE, 0)

    # ------------------------------------------------------------------
    # Technique 2: the CAM decision (once per RTT)
    # ------------------------------------------------------------------
    def _cam_decision(self, now: float) -> None:
        fs = self._fs
        i = self._fi
        fine = self.conn.fine_rtt
        base_rtt = fine.base_rtt
        # The RTT used for the rate comparison is the *lower median* of
        # the epoch's per-segment clock samples.  The minimum would be
        # blind to a standing queue (one lucky sample reads diff = 0);
        # the mean is skewed by the one delayed-ACK-inflated sample per
        # window (up to +200 ms).  The lower median is robust to both —
        # the same reason production Vegas implementations filter their
        # per-ACK samples rather than using any single one.
        rtt = self._epoch_rtt()
        cam_window = fs.cam_window[i]
        if base_rtt is None or rtt is None or rtt <= 0 \
                or cam_window <= 0:
            return
        mss = self.conn.mss
        # "A valid comparison of the expected and actual rates" (§3.3)
        # requires the window to have stayed fixed over the
        # measurement.
        valid = (fs.cwnd[i] == fs.cam_cwnd0[i])
        # An application-limited flow never fills its window; comparing
        # its Actual against a window-based Expected would shrink the
        # window without any congestion.  Skip such measurements.
        cwnd_limited = fs.cam_max_flight[i] + mss >= cam_window
        if not cwnd_limited:
            return
        # Diff computed from the distinguished segment's window and the
        # epoch-minimum RTT sample: Expected - Actual = W/base - W/rtt,
        # i.e. W x (1 - base/rtt) bytes of the connection's own data
        # sitting in router queues.
        expected = cam_window / base_rtt
        actual = cam_window / rtt
        if actual > expected:
            # "Actual > Expected implies that we need to change BaseRTT
            # to the latest sampled RTT."  (With min-tracking BaseRTT
            # this only fires on genuine new minimums.)
            fine.set_base_rtt(rtt)
            expected = actual
        diff_rate = max(0.0, expected - actual)
        diff_buffers = diff_rate * fine.base_rtt / mss
        self.cam_decisions += 1
        self.conn.tracer.record(now, Kind.CAM, expected, actual)

        if self.mode == SLOW_START and self.enable_modified_slowstart:
            # Alternation between doubling RTTs and fixed RTTs emerges
            # from measurement validity: a measurement taken while the
            # window grew marks the next RTT as a hold; the hold RTT
            # yields a valid measurement and the γ check, after which
            # growth resumes.
            if valid:
                if diff_buffers > self.gamma:
                    # γ crossed: the pipe is filling — stop doubling.
                    self._leave_slow_start(now, trim=True)
                else:
                    self.ss_grow = True
            else:
                self.ss_grow = False
            self.conn.tracer.record(now, Kind.CAM_DECISION,
                                    diff_buffers * 1000.0, 0)
            return
        if self.mode != LINEAR or not self.enable_cam:
            return
        if not valid:
            # The window changed during this measurement (the
            # adjustment made one RTT ago); hold this RTT.
            return
        if diff_buffers < self.alpha:
            self.cam_increases += 1
            self._set_cwnd(min(C.MAX_CWND, fs.cwnd[i] + mss), now)
            action = 1
        elif diff_buffers > self.beta:
            self.cam_decreases += 1
            self._set_cwnd(max(2 * mss, fs.cwnd[i] - mss), now)
            action = -1
        else:
            action = 0
        checker = getattr(self.conn, "_checker", None)
        if checker is not None:
            checker.on_cam_decision(self, diff_buffers, action, now)
        self.conn.tracer.record(now, Kind.CAM_DECISION,
                                diff_buffers * 1000.0, action)

    def pacing_rate(self) -> Optional[float]:
        """Rate-controlled slow start (§3.3 future work).

        Active only in slow-start mode with a measured BaseRTT: pace
        at one window per BaseRTT — "a rate defined by the current
        window size and the BaseRTT" — so segments enter the
        bottleneck smoothly instead of in per-ACK bursts of two.
        """
        if not self.paced_slow_start or self.mode != SLOW_START:
            return None
        base_rtt = self.conn.fine_rtt.base_rtt
        if base_rtt is None or base_rtt <= 0:
            return None
        return self.cwnd / base_rtt

    def _epoch_rtt(self) -> Optional[float]:
        """Lower median of the current epoch's RTT samples."""
        samples = self._fs.cam_samples[self._fi]
        if not samples:
            return None
        ordered = sorted(samples)
        return ordered[(len(ordered) - 1) // 2]

    # ------------------------------------------------------------------
    # Technique 1: fine-grained retransmission
    # ------------------------------------------------------------------
    def on_dup_ack(self, count: int, now: float) -> None:
        retransmitted_now = False
        if self.enable_fine_retransmit:
            retransmitted_now = self._check_stale_first_unacked(now, path=1)
        if (count == self.dupack_threshold and not self.in_recovery
                and not retransmitted_now):
            # Standard fast retransmit, with Vegas' epoch guard on the
            # window decrease.
            lost_sent_at = self.conn.first_unacked_send_time()
            self.conn.retransmit_first_unacked("fast")
            self.acks_after_retx = 2
            if self._decrease_allowed(lost_sent_at):
                self._set_ssthresh(self.half_window(), now)
                self.in_recovery = True
                self._set_cwnd(self.ssthresh + self.dupack_threshold * self.conn.mss,
                               now)
                self.last_decrease_time = now
                self._leave_slow_start(now, trim=False)
        elif count > self.dupack_threshold and self.in_recovery:
            self._set_cwnd(min(C.MAX_CWND, self.cwnd + self.conn.mss), now)

    def _check_stale_first_unacked(self, now: float, path: int) -> bool:
        """Retransmit the first unacked segment if older than the fine RTO.

        Returns True when a retransmission was performed.
        """
        sent_at = self.conn.first_unacked_send_time()
        if sent_at is None or now - sent_at <= self.conn.fine_rtt.rto:
            return False
        self.early_retransmits += 1
        reason = "fine-dupack" if path == 1 else "fine-ack"
        self.conn.retransmit_first_unacked(reason)
        self.acks_after_retx = 2
        if self._decrease_allowed(sent_at):
            mss = self.conn.mss
            cut = int(self.cwnd * self.fine_loss_factor)
            cut = max(2 * mss, (cut // mss) * mss)
            self._set_cwnd(cut, now)
            self._set_ssthresh(max(2 * mss, cut), now)
            self.last_decrease_time = now
            self._leave_slow_start(now, trim=False)
        return True

    def _decrease_allowed(self, lost_segment_sent_at: Optional[float]) -> bool:
        """§3.1: decrease only for losses at the *current* sending rate."""
        return (lost_segment_sent_at is not None
                and lost_segment_sent_at > self.last_decrease_time)

    # ------------------------------------------------------------------
    # Coarse timeout: fall back to Reno behaviour
    # ------------------------------------------------------------------
    def on_coarse_timeout(self, now: float) -> None:
        # A timeout opens a new loss epoch: recovery (if any) ends
        # before the window is cut, so every ssthresh decrease happens
        # outside recovery (the invariant the runtime checker audits).
        self.in_recovery = False
        self._set_ssthresh(self.half_window(), now)
        self._set_cwnd(self.conn.mss, now)
        self.mode = SLOW_START
        self.ss_grow = True
        self.acks_after_retx = 0
        self.last_decrease_time = now
        self._fs.cam_end[self._fi] = -1
        self.conn.tracer.record(now, Kind.SS_MODE, 1)
