"""Wang & Crowcroft's Tri-S (Slow Start and Search).

Reconstructed from the paper's §3.2 description: "Every RTT, they
increase the window size by one segment and compare the throughput
achieved to the throughput when the window was one segment smaller.
If the difference is less than one-half the throughput achieved when
only one segment was in transit — as was the case at the beginning of
the connection — they decrease the window by one segment.  Tri-S
calculates the throughput by dividing the number of bytes outstanding
in the network by the RTT."

The paper observes Vegas is "most similar to Tri-S" but compares
measured against *expected* throughput instead of looking at the
throughput slope.  Loss recovery is inherited from Reno.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.epoch import RttEpochMixin
from repro.core.reno import RenoCC
from repro.tcp import constants as C


class TriSCC(RttEpochMixin, RenoCC):
    """Tri-S: throughput-slope probing over Reno."""

    name = "tri-s"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._epoch_init()
        #: Throughput observed with a single segment in transit (the
        #: slope reference).
        self.base_throughput: Optional[float] = None
        self._throughput_at_window: Dict[int, float] = {}
        self.slope_increases = 0
        self.slope_decreases = 0

    def _grow_window(self, now: float) -> None:
        # Outside slow start the throughput-slope probe is the only
        # window driver; suppress Reno's per-ACK linear growth.
        if self.cwnd < self.ssthresh:
            super()._grow_window(now)

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        super().on_new_ack(acked_bytes, now, rtt_sample)
        if not self._epoch_on_ack(now) or rtt_sample is None:
            return
        mss = self.conn.mss
        # Throughput = bytes outstanding / RTT (the paper's formula).
        throughput = self.conn.flight_size() / rtt_sample
        window_segments = max(1, self.cwnd // mss)
        if self.base_throughput is None:
            # First full round trip: one segment in transit.
            self.base_throughput = max(throughput, mss / rtt_sample)
        self._throughput_at_window[window_segments] = throughput
        if self.cwnd < self.ssthresh:
            return  # slow start handles growth until the threshold
        previous = self._throughput_at_window.get(window_segments - 1)
        if previous is not None and self.base_throughput is not None:
            if throughput - previous < 0.5 * self.base_throughput:
                self.slope_decreases += 1
                self._set_cwnd(max(2 * mss, self.cwnd - mss), now)
                return
        self.slope_increases += 1
        self._set_cwnd(min(C.MAX_CWND, self.cwnd + mss), now)
