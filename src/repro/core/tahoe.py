"""TCP Tahoe congestion control.

The pre-Reno BSD algorithm, kept as a secondary baseline (the paper
footnotes that it limits its comparison to Reno because Reno is "newer
and better performing than Tahoe").  Tahoe performs fast retransmit on
three duplicate ACKs but has no fast recovery: every detected loss
drops the window to one segment and re-enters slow start.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import CongestionControl
from repro.tcp import constants as C


class TahoeCC(CongestionControl):
    """Tahoe: fast retransmit, no fast recovery."""

    name = "tahoe"

    def __init__(self, initial_cwnd_segments: int = 1,
                 dupack_threshold: int = C.DUPACK_THRESHOLD):
        super().__init__(initial_cwnd_segments)
        self.dupack_threshold = dupack_threshold

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        mss = self.conn.mss
        if self.cwnd < self.ssthresh:
            increment = mss
        else:
            increment = max(1, mss * mss // self.cwnd)
        self._set_cwnd(min(C.MAX_CWND, self.cwnd + increment), now)

    def on_dup_ack(self, count: int, now: float) -> None:
        if count == self.dupack_threshold:
            self._set_ssthresh(self.half_window(), now)
            self.conn.retransmit_first_unacked("fast")
            self._set_cwnd(self.conn.mss, now)

    def on_coarse_timeout(self, now: float) -> None:
        self._set_ssthresh(self.half_window(), now)
        self._set_cwnd(self.conn.mss, now)
