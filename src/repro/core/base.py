"""Congestion-control plug-in interface.

All of the paper's sender-side policies — Reno, Tahoe, Vegas, and the
§3.2 prior schemes (DUAL, CARD, Tri-S) — implement this interface.
The TCP sender machinery (window arithmetic, timers, buffers) is
shared; what differs between protocols is *policy*: how the window
grows, when a loss is declared, and how the window reacts to it.
Those decisions live in the CongestionControl subclass.

The controller is given a reference to its connection at attach time
and may use the connection's documented sender-side services:

* ``conn.mss``, ``conn.snd_una``, ``conn.snd_nxt``, ``conn.flight_size()``
* ``conn.peer_wnd`` — the last advertised window
* ``conn.retransmit_first_unacked(reason)`` — resend the segment at
  ``snd_una``; returns its first sequence number
* ``conn.first_unacked_send_time()`` — latest transmission time of the
  first unacked segment (``None`` if nothing is outstanding)
* ``conn.fine_rtt`` — the fine-grained estimator (per-segment clocks)
* ``conn.stats`` — the connection's :class:`FlowStats`
* ``conn.tracer`` — trace sink
* ``conn.now`` — current simulated time
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.tcp import constants as C
from repro.tcp.flatstate import ConnStateStore
from repro.trace.records import Kind

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcp.connection import TCPConnection


class CongestionControl:
    """Base class: fixed window, no reaction to loss.

    Useful on its own as a "dumb" constant-window transport for tests
    and for generating deterministic cross-traffic; all real protocols
    override the event hooks.

    ``cwnd``/``ssthresh`` (and, for Vegas, the CAM epoch accumulators)
    live in a :class:`~repro.tcp.flatstate.ConnStateStore` slot.  At
    :meth:`attach` time the controller rebinds onto its connection's
    store and slot, so the window shares a cache line with the rest of
    that connection's hot sender state; before attach a private scratch
    slot keeps the accessors uniform.
    """

    name = "fixed"

    def __init__(self, initial_cwnd_segments: int = 1):
        self.conn: Optional["TCPConnection"] = None
        self._initial_cwnd_segments = initial_cwnd_segments
        # The store binding happens at attach(); the scratch slot is
        # only materialised if state is touched before then (standalone
        # controllers in tests), so the common construct-then-attach
        # path never builds a throwaway store.
        self._fs: Optional[ConnStateStore] = None
        self._fi: int = 0

    def _scratch_store(self) -> ConnStateStore:
        fs = ConnStateStore()
        self._fi = fs.alloc()
        self._fs = fs
        return fs

    @property
    def cwnd(self) -> int:
        """Congestion window, bytes."""
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        return fs.cwnd[self._fi]

    @cwnd.setter
    def cwnd(self, value: int) -> None:
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        fs.cwnd[self._fi] = int(value)

    @property
    def ssthresh(self) -> int:
        """Slow-start threshold, bytes."""
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        return fs.ssthresh[self._fi]

    @ssthresh.setter
    def ssthresh(self, value: int) -> None:
        fs = self._fs
        if fs is None:
            fs = self._scratch_store()
        fs.ssthresh[self._fi] = int(value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, conn: "TCPConnection") -> None:
        """Bind to *conn*; called once, before the handshake."""
        self.conn = conn
        store = getattr(conn, "_st", None)
        if store is not None:
            self._fs = store
            self._fi = conn._slot
        elif self._fs is None:
            # A fake connection without flat state (test double):
            # fall back to a private scratch slot.
            self._scratch_store()
        self.cwnd = self._initial_cwnd_segments * conn.mss
        self.ssthresh = C.MAX_CWND

    def on_established(self, now: float) -> None:
        """Handshake completed."""

    # ------------------------------------------------------------------
    # Event hooks (all no-ops in the fixed-window base)
    # ------------------------------------------------------------------
    def on_segment_sent(self, seq: int, length: int, end_seq: int,
                        is_retransmit: bool, now: float) -> None:
        """A data segment left the sender."""

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        """A new cumulative ACK advanced ``snd_una``.

        ``rtt_sample`` is the fine-grained RTT for the newly acked
        segment, or ``None`` when the measurement was ambiguous
        (segment retransmitted — Karn's rule).
        """

    def on_dup_ack(self, count: int, now: float) -> None:
        """A duplicate ACK arrived; *count* is the consecutive total."""

    def on_coarse_timeout(self, now: float) -> None:
        """The coarse-grained retransmit timer expired."""

    def on_ecn_echo(self, now: float) -> None:
        """The peer echoed a congestion mark (ECN, RFC 3168).

        Default: ignore.  Loss-based controllers treat this as a
        congestion signal equivalent to a loss, minus the retransmission.
        """

    def pacing_rate(self) -> Optional[float]:
        """Bytes/second to pace transmissions at, or ``None`` (no pacing).

        Consulted by the sender before each data segment; the default
        ack-clocked behaviour corresponds to ``None``.
        """
        return None

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _trace_cwnd(self, now: float) -> None:
        if self.conn is not None:
            self.conn.tracer.record(now, Kind.CWND, self.cwnd)

    def _trace_ssthresh(self, now: float) -> None:
        if self.conn is not None:
            self.conn.tracer.record(now, Kind.SSTHRESH, self.ssthresh)

    def _set_cwnd(self, value: int, now: float) -> None:
        value = int(value)
        old = self._fs.cwnd[self._fi]
        if value != old:
            self._fs.cwnd[self._fi] = value
            if self.conn is not None:
                self.conn.tracer.record(now, Kind.CWND, value)
            checker = getattr(self.conn, "_checker", None)
            if checker is not None:
                checker.on_cwnd(self, old, value, now)

    def _set_ssthresh(self, value: int, now: float) -> None:
        value = int(value)
        old = self._fs.ssthresh[self._fi]
        if value != old:
            self._fs.ssthresh[self._fi] = value
            if self.conn is not None:
                self.conn.tracer.record(now, Kind.SSTHRESH, value)
            checker = getattr(self.conn, "_checker", None)
            if checker is not None:
                checker.on_ssthresh(self, old, value, now)

    def half_window(self) -> int:
        """BSD's loss threshold: half of min(cwnd, peer window), floored
        at two segments and rounded down to a segment multiple."""
        assert self.conn is not None
        mss = self.conn.mss
        window = min(self.cwnd, max(self.conn.peer_wnd, mss))
        half_segments = max(2, (window // mss) // 2)
        return half_segments * mss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(cwnd={self.cwnd}, ssthresh={self.ssthresh})"
