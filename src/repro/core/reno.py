"""TCP Reno congestion control.

The baseline the paper measures against: Jacobson slow-start and
congestion avoidance, fast retransmit on three duplicate ACKs, and
fast recovery (window inflation during the duplicate-ACK stream,
deflation to ``ssthresh`` on the recovery ACK).  This is *plain* Reno,
not NewReno: a partial ACK terminates recovery, so windows with
multiple drops usually end in a coarse-grained timeout — precisely the
pathology §3.1 of the paper documents (an average of 1100 ms to
recover when ~300 ms would have sufficed).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import CongestionControl
from repro.tcp import constants as C


class RenoCC(CongestionControl):
    """Reno: reactive loss-based congestion control."""

    name = "reno"

    def __init__(self, initial_cwnd_segments: int = 1,
                 dupack_threshold: int = C.DUPACK_THRESHOLD):
        super().__init__(initial_cwnd_segments)
        self.dupack_threshold = dupack_threshold
        self.in_recovery = False
        self._ecn_reacted_until = 0  # once-per-window ECN response
        self.ecn_reactions = 0

    # ------------------------------------------------------------------
    # ACK clocking: slow start / congestion avoidance
    # ------------------------------------------------------------------
    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        fs = self._fs
        i = self._fi
        if self.in_recovery:
            # Recovery ACK: deflate the window back to ssthresh.
            self.in_recovery = False
            self._set_cwnd(max(fs.ssthresh[i], 2 * self.conn.mss), now)
            return
        self._grow_window(now)

    def _grow_window(self, now: float) -> None:
        fs = self._fs
        i = self._fi
        mss = self.conn.mss
        cwnd = fs.cwnd[i]
        if cwnd < fs.ssthresh[i]:
            # Slow start: one segment per ACK (exponential per RTT).
            increment = mss
        else:
            # Congestion avoidance: ~one segment per RTT.
            increment = max(1, mss * mss // cwnd)
        self._set_cwnd(min(C.MAX_CWND, cwnd + increment), now)

    # ------------------------------------------------------------------
    # Fast retransmit and fast recovery
    # ------------------------------------------------------------------
    def on_dup_ack(self, count: int, now: float) -> None:
        if count == self.dupack_threshold and not self.in_recovery:
            self._set_ssthresh(self.half_window(), now)
            self.conn.retransmit_first_unacked("fast")
            self.in_recovery = True
            self._set_cwnd(self.ssthresh + self.dupack_threshold * self.conn.mss,
                           now)
        elif count > self.dupack_threshold and self.in_recovery:
            # Each further duplicate ACK signals one more segment has
            # left the network: inflate so new data can be clocked out.
            self._set_cwnd(min(C.MAX_CWND, self.cwnd + self.conn.mss), now)

    # ------------------------------------------------------------------
    # Explicit congestion notification
    # ------------------------------------------------------------------
    def on_ecn_echo(self, now: float) -> None:
        """Congestion mark echoed: halve once per window (RFC 3168).

        The response mirrors a fast-retransmit window cut but without
        any retransmission — the data arrived; the router just asked
        us to slow down.
        """
        if self.conn.snd_una < self._ecn_reacted_until or self.in_recovery:
            return
        self._ecn_reacted_until = self.conn.snd_nxt
        self.ecn_reactions += 1
        self._set_ssthresh(self.half_window(), now)
        self._set_cwnd(max(2 * self.conn.mss, self.ssthresh), now)

    # ------------------------------------------------------------------
    # Coarse timeout
    # ------------------------------------------------------------------
    def on_coarse_timeout(self, now: float) -> None:
        # End any recovery before cutting: the timeout is a fresh loss
        # epoch, and keeping every ssthresh decrease outside recovery
        # is the invariant the runtime checker audits.
        self.in_recovery = False
        self._set_ssthresh(self.half_window(), now)
        self._set_cwnd(self.conn.mss, now)
