"""TCP NewReno congestion control.

Not part of the paper (it postdates it), but directly relevant to the
§6 discussion of better retransmission: NewReno fixes plain Reno's
multi-drop pathology *within* fast recovery — a partial ACK does not
terminate recovery; instead the next hole is retransmitted
immediately.  Comparing NewReno against Vegas' fine-grained mechanism
(which solves the same problem with per-segment clocks) makes a useful
extension study, analogous to the paper's selective-ACK remarks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.reno import RenoCC
from repro.tcp import constants as C


class NewRenoCC(RenoCC):
    """NewReno: fast recovery that survives partial ACKs."""

    name = "newreno"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        #: Highest sequence outstanding when recovery began; recovery
        #: ends only when it is acknowledged.
        self.recover = 0
        self.partial_ack_retransmits = 0

    def on_dup_ack(self, count: int, now: float) -> None:
        if count == self.dupack_threshold and not self.in_recovery:
            self.recover = self.conn.snd_nxt
        super().on_dup_ack(count, now)

    def on_new_ack(self, acked_bytes: int, now: float,
                   rtt_sample: Optional[float]) -> None:
        if self.in_recovery and self.conn.snd_una < self.recover:
            # Partial ACK: the next segment is also lost.  Retransmit
            # it, deflate by the amount acknowledged, and stay in
            # recovery (RFC 6582 behaviour).
            self.partial_ack_retransmits += 1
            self.conn.retransmit_first_unacked("fast")
            deflated = max(self.ssthresh,
                           self.cwnd - acked_bytes + self.conn.mss)
            self._set_cwnd(min(C.MAX_CWND, deflated), now)
            return
        super().on_new_ack(acked_bytes, now, rtt_sample)
