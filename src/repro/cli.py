"""Command-line interface: regenerate any of the paper's artifacts.

``python -m repro <cmd>`` is the single documented entry point.
Usage::

    python -m repro list
    python -m repro figure6
    python -m repro figure7 --seed 3
    python -m repro table1 --quick
    python -m repro table2 --seeds 4
    python -m repro table4
    python -m repro table5
    python -m repro sendbuf
    python -m repro fairness
    python -m repro telnet
    python -m repro solo --cc vegas-1,3 --size-kb 512 --buffers 15
    python -m repro run-all --quick --jobs 4 --json results.json
    python -m repro run-all --quick --watchdog --retries 2
    python -m repro run-all --only table4/proto=reno/seed=0 --no-timeout
    python -m repro run-all --quick --json r.json --telemetry run.jsonl
    python -m repro run-all --quick --backend dist --workers 4
    python -m repro dist run --quick --journal run.journal --json r.json
    python -m repro dist run --journal run.journal --resume --json r.json
    python -m repro dist worker --connect 127.0.0.1:7077
    python -m repro dist journal run.journal
    python -m repro check r.json baselines/expected.json --tolerance 0.15
    python -m repro report r.json --telemetry run.jsonl
    python -m repro arena --quick --json arena.json --out league.md
    python -m repro search --objective vegas_regret --strategy genetic --budget 40 --seed 1
    python -m repro search --objective fairness_cliff --quick --budget 6 --json search.json
    python -m repro traces
    python -m repro traces --scenario lte --seed 0
    python -m repro traces --scenario steps --export steps.trace
    python -m repro traces --load steps.trace
    python -m repro bench --rounds 3
    python -m repro profile table2_background --sort tottime

(``python -m repro.cli ...`` remains an equivalent legacy spelling.)

Each subcommand prints the regenerated table or trace summary, with
the paper's numbers alongside where the paper gives them.  ``run-all``
sweeps every experiment's cell grid in parallel (see
:mod:`repro.harness`), caching per-cell results under
``.repro-cache/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _cmd_list(args) -> int:
    from repro.core.registry import available

    print("Available congestion-control algorithms:")
    for name in available():
        print(f"  {name}")
    # Derived from the parser so this can never drift as commands are
    # added (see build_parser, which stashes the subparser action).
    print("\nSubcommands: " + ", ".join(args._subcommands))
    return 0


def _cmd_solo(args) -> int:
    from repro.experiments.transfers import run_solo_transfer
    from repro.units import kb

    result = run_solo_transfer(args.cc, size=kb(args.size_kb),
                               buffers=args.buffers, seed=args.seed)
    print(f"{args.cc}: {result.throughput_kbps:.1f} KB/s, "
          f"{result.retransmitted_kb:.1f} KB retransmitted, "
          f"{result.coarse_timeouts} coarse timeouts "
          f"({args.size_kb} KB over the Figure-5 bottleneck, "
          f"{args.buffers} buffers)")
    return 0


def _cmd_figure6(args) -> int:
    from repro.experiments.traces import figure6
    from repro.trace.ascii_plot import render_rate_panel, render_windows_panel

    graph, result = figure6(seed=args.seed)
    print("Figure 6 — Reno, no other traffic (paper: 105 KB/s)")
    print(f"measured: {result.throughput_kbps:.1f} KB/s, "
          f"{result.retransmitted_kb:.1f} KB retransmitted, "
          f"{result.coarse_timeouts} timeouts, "
          f"{graph.losses()} segments lost\n")
    print(render_windows_panel(graph))
    print(render_rate_panel(graph))
    return 0


def _cmd_figure7(args) -> int:
    from repro.experiments.traces import figure7
    from repro.trace.ascii_plot import render_cam_panel, render_windows_panel

    graph, result = figure7(seed=args.seed)
    print("Figure 7 — Vegas, no other traffic (paper: 169 KB/s)")
    print(f"measured: {result.throughput_kbps:.1f} KB/s, "
          f"{result.retransmitted_kb:.1f} KB retransmitted, "
          f"{result.coarse_timeouts} timeouts\n")
    print(render_windows_panel(graph))
    print(render_cam_panel(graph))
    return 0


def _cmd_figure9(args) -> int:
    from repro.experiments.traces import figure9
    from repro.trace.ascii_plot import render_cam_panel, render_windows_panel

    graph, result = figure9(seed=args.seed)
    print("Figure 9 — Vegas with tcplib background traffic")
    print(f"measured: {result.throughput_kbps:.1f} KB/s, "
          f"{result.retransmitted_kb:.1f} KB retransmitted\n")
    print(render_windows_panel(graph))
    print(render_cam_panel(graph))
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments.one_on_one import PAPER_TABLE1, table1
    from repro.metrics.tables import format_table

    delays = (0.0, 1.0, 2.0) if args.quick else (0.0, 0.5, 1.0, 1.5, 2.0, 2.5)
    table, _ = table1(buffers=(15, 20), delays=delays, seed=args.seed)
    print(format_table("Table 1: one-on-one transfers", table,
                       ratios_for={"Small throughput (KB/s)": "reno/reno",
                                   "Large throughput (KB/s)": "reno/reno"},
                       paper=PAPER_TABLE1))
    return 0


def _cmd_table2(args) -> int:
    from repro.experiments.background import PAPER_TABLE2, table2
    from repro.metrics.tables import format_table

    table, _ = table2(seeds=range(args.seeds), buffers=(10, 15, 20))
    print(format_table("Table 2: 1MB transfer vs tcplib background",
                       table,
                       ratios_for={"Throughput (KB/s)": "reno",
                                   "Retransmissions (KB)": "reno"},
                       paper=PAPER_TABLE2))
    return 0


def _cmd_table3(args) -> int:
    from repro.experiments.background import PAPER_TABLE3, table3

    results = table3(seeds=range(args.seeds), buffers=(10, 15, 20))
    print("Table 3: background throughput (KB/s)")
    print("background CC | transfer CC | measured | paper")
    for (bg, xfer), value in sorted(results.items()):
        print(f"{bg:>13} | {xfer:>11} | {value:8.1f} | "
              f"{PAPER_TABLE3[(bg, xfer)]:5.0f}")
    return 0


def _cmd_table4(args) -> int:
    from repro.experiments.internet import PAPER_TABLE4, table4
    from repro.metrics.tables import format_table

    table = table4(seeds=range(args.seeds))
    print(format_table("Table 4: 1MB over the emulated UA->NIH path",
                       table,
                       ratios_for={"Throughput (KB/s)": "reno",
                                   "Retransmissions (KB)": "reno"},
                       paper=PAPER_TABLE4))
    return 0


def _cmd_table5(args) -> int:
    from repro.experiments.internet import PAPER_TABLE5, table5
    from repro.metrics.tables import format_table

    tables = table5(seeds=range(args.seeds))
    for size in sorted(tables, reverse=True):
        print(format_table(f"Table 5 — {size // 1024} KB transfers",
                           tables[size],
                           ratios_for={"Throughput (KB/s)": "reno",
                                       "Retransmissions (KB)": "reno"},
                           paper=PAPER_TABLE5[size]))
        print()
    return 0


def _cmd_sendbuf(args) -> int:
    from repro.experiments.sendbuf import DEFAULT_SIZES_KB, sendbuf_sweep

    print("§4.3 send-buffer sweep (1 MB solo transfers)")
    print("sndbuf | Reno KB/s (retx) | Vegas KB/s (retx)")
    reno = sendbuf_sweep("reno", sizes_kb=DEFAULT_SIZES_KB, seeds=(args.seed,))
    vegas = sendbuf_sweep("vegas", sizes_kb=DEFAULT_SIZES_KB,
                          seeds=(args.seed,))
    for size in DEFAULT_SIZES_KB:
        print(f"{size:4d}KB | {reno[size].throughput_kbps:8.1f} "
              f"({reno[size].retransmitted_kb:5.1f}) | "
              f"{vegas[size].throughput_kbps:8.1f} "
              f"({vegas[size].retransmitted_kb:5.1f})")
    return 0


def _cmd_fairness(args) -> int:
    from repro.experiments.fairness_exp import run_competing_connections
    from repro.units import kb, mb

    print("§4.3 multiple competing connections (Jain index)")
    for count in (2, 4, 16):
        size = mb(2) if count <= 4 else kb(512)
        for cc in ("reno", "vegas"):
            for mixed in (False, True):
                result = run_competing_connections(
                    cc, count, transfer_bytes=size, mixed_delays=mixed,
                    buffers=20, seed=args.seed)
                delays = "2:1" if mixed else "equal"
                print(f"{count:3d} conns, {delays:5s} delays, {cc:5s}: "
                      f"Jain {result.fairness_index:.3f}, "
                      f"{result.coarse_timeouts} timeouts")
    return 0


def _cmd_twoway(args) -> int:
    from repro.experiments.twoway import table_twoway
    from repro.metrics.tables import format_table

    table, _ = table_twoway(seeds=range(args.seeds), buffers=(10, 15, 20))
    print(format_table("§4.3 two-way background traffic", table,
                       ratios_for={"Throughput (KB/s)": "reno",
                                   "Retransmissions (KB)": "reno"}))
    return 0


def _cmd_telnet(args) -> int:
    from repro.experiments.telnet_response import response_time_comparison

    means = response_time_comparison(seeds=range(args.seeds),
                                     arrival_mean=0.22, duration=120.0)
    reno, vegas = means["reno"], means["vegas"]
    speedup = (reno - vegas) / reno * 100 if reno else 0.0
    print("§6 TELNET response time (all-Reno vs all-Vegas world)")
    print(f"all-Reno : {reno * 1000:7.1f} ms mean")
    print(f"all-Vegas: {vegas * 1000:7.1f} ms mean "
          f"({speedup:+.1f}% vs Reno; paper: ~25% faster)")
    return 0


def _cmd_run_all(args) -> int:
    from repro.harness import aggregate, artifacts, cache as cache_mod
    from repro.harness import registry, runner

    experiments = None
    if args.experiments:
        experiments = [name.strip() for name in args.experiments.split(",")
                       if name.strip()]
    try:
        cells = registry.all_cells(quick=args.quick, experiments=experiments)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.only:
        wanted = [sel.strip() for sel in args.only.split(",") if sel.strip()]
        cells = [cell for cell in cells
                 if any(cell.key == sel or cell.key.startswith(sel + "/")
                        for sel in wanted)]
        if not cells:
            print(f"error: --only {args.only!r} matches no cell "
                  "(keys look like 'table2/buffers=10/proto=reno/seed=0')",
                  file=sys.stderr)
            return 2
    if args.jobs is not None and args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    timeout_s = None if args.no_timeout else args.timeout
    if timeout_s is not None and timeout_s <= 0:
        print(f"error: --timeout must be positive, got {timeout_s}",
              file=sys.stderr)
        return 2
    try:
        faults = registry.resolve_faults(args.faults)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    backend = getattr(args, "backend", "local")
    if backend != "dist" and (getattr(args, "journal", None)
                              or getattr(args, "resume", False)):
        print("error: --journal/--resume require --backend dist",
              file=sys.stderr)
        return 2

    src_hash = cache_mod.compute_src_hash()
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or cache_mod.default_cache_dir()
        cache = cache_mod.ResultCache(cache_dir, src_hash)

    dist_options = None
    if backend == "dist":
        if args.workers < 0:
            print(f"error: --workers must be >= 0, got {args.workers}",
                  file=sys.stderr)
            return 2
        dist_options = {"workers": args.workers, "journal": args.journal,
                        "resume": args.resume, "src_hash": src_hash,
                        "preload": args.preload,
                        "chaos_kill_after": args.chaos_kill_after}
        if args.bind:
            dist_options["bind"] = args.bind

    total = len(cells)
    done = [0]
    # Dist lifecycle notices (worker loss, chaos, resume/degrade
    # banners) don't settle a cell either.
    informational = ("worker ", "chaos:", "resume:", "warning:",
                     "dist master")

    def progress(line: str) -> None:
        # Retry notices don't settle a cell; only count terminal lines
        # so the counter ends at exactly total.
        if "retrying in" not in line and not line.startswith(informational):
            done[0] += 1
        print(f"[{done[0]}/{total}] {line}", file=sys.stderr)

    try:
        report = runner.run_cells(cells, jobs=args.jobs, cache=cache,
                                  progress=progress, checks=args.checks,
                                  faults=faults, timeout_s=timeout_s,
                                  retries=args.retries,
                                  watchdog=args.watchdog,
                                  telemetry=args.telemetry,
                                  backend=backend,
                                  dist_options=dist_options)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    doc = artifacts.build_document(
        report, mode="quick" if args.quick else "full", src_hash=src_hash,
        telemetry=args.telemetry)
    if args.json:
        artifacts.write_document(args.json, doc)

    print(aggregate.summarize(doc["cells"]))
    print()
    print(f"{total} cells, jobs={report.jobs}, "
          f"{report.elapsed_s:.1f}s elapsed "
          f"(cell wall clock {doc['run']['cell_wall_clock_s']:.1f}s); "
          f"cache: {report.cache_hits} hits / {report.cache_misses} misses")
    print(f"cell fingerprint: {artifacts.cells_fingerprint(doc)}")
    if report.failures:
        print(f"\nFAILED: {len(report.failures)} cell(s) quarantined "
              "(exit 3; reproduce with `run-all --only <key> --no-timeout`):")
        for failure in report.failures:
            print(f"  {failure.key} [{failure.kind}] "
                  f"after {failure.attempts} attempt(s): {failure.message}")
    if args.checks:
        violations = sum(int(r.metrics.get("invariant_violations", 0.0))
                         for r in report.results)
        print(f"invariant violations: {violations}")
        if violations and not report.failures:
            return 1
    if args.json:
        print(f"JSON artifact: {args.json}")
    if args.telemetry:
        print(f"telemetry: {args.telemetry}")
    if report.interrupted:
        settled = len(report.results) + len(report.failures)
        print(f"\nINTERRUPTED: sweep drained with {settled}/{total} cells "
              "settled; partial artifact and failure manifest flushed "
              "(exit 130)")
        if getattr(args, "journal", None):
            print(f"resume with: repro dist run --journal {args.journal} "
                  "--resume ...")
        return 130
    return 3 if report.failures else 0


def _cmd_check(args) -> int:
    from repro.harness import check as check_mod

    argv = [args.results, args.expected, "--tolerance", str(args.tolerance)]
    if args.telemetry:
        argv.extend(["--telemetry", args.telemetry])
    return check_mod.main(argv)


def _cmd_report(args) -> int:
    from repro.obs import report as report_mod

    argv = [args.results, "--top", str(args.top)]
    if args.telemetry:
        argv.extend(["--telemetry", args.telemetry])
    if args.out:
        argv.extend(["--out", args.out])
    return report_mod.main(argv)


_SPARK = "▁▂▃▄▅▆▇█"


def _trace_profile(trace, width: int = 64) -> str:
    """One-line sparkline of the rate profile over one cycle."""
    span = trace.period if trace.period is not None \
        else max(trace.times[-1], 1.0)
    top = trace.max_rate or 1.0
    cells = []
    for i in range(width):
        rate = trace.rate_at(i * span / width)
        cells.append(_SPARK[min(len(_SPARK) - 1,
                                int(rate / top * (len(_SPARK) - 1) + 0.5))])
    return "".join(cells)


def _trace_summary(trace) -> str:
    cyc = (f"cyclic, period {trace.period:g} s" if trace.period is not None
           else "non-cyclic")
    return (f"{len(trace.rates)} segment(s), {cyc}; "
            f"mean {trace.mean_rate / 1024:.1f} KB/s, "
            f"min {trace.min_rate / 1024:.1f}, "
            f"max {trace.max_rate / 1024:.1f}")


def _cmd_traces(args) -> int:
    from repro.arena.scenarios import SCENARIOS, get_scenario
    from repro.net.traces import load_mahimahi, save_mahimahi
    from repro.sim.rng import RngRegistry

    if args.load:
        trace = load_mahimahi(args.load)
        print(f"{args.load}: {_trace_summary(trace)}")
        print(f"  {_trace_profile(trace)}")
        return 0

    if not args.scenario:
        print("Time-varying arena scenarios "
              "(inspect one with --scenario NAME):")
        for name in sorted(SCENARIOS):
            spec = SCENARIOS[name]
            if not spec.time_varying:
                continue
            loss = f", loss {spec.loss:.1%}" if spec.loss else ""
            print(f"  {name:7s} {spec.trace.describe()}{loss}")
        return 0

    spec = get_scenario(args.scenario)
    if spec.trace is None:
        print(f"error: scenario {args.scenario!r} has a static "
              "bottleneck (no trace)", file=sys.stderr)
        return 2
    trace = spec.trace.build(RngRegistry(args.seed).stream("link-trace"))
    loss = f", loss {spec.loss:.1%}" if spec.loss else ""
    print(f"{args.scenario} (seed {args.seed}): "
          f"{spec.trace.describe()}{loss}")
    print(f"  {_trace_summary(trace)}")
    print(f"  {_trace_profile(trace)}")
    if args.export:
        written = save_mahimahi(trace, args.export,
                                duration=args.duration)
        print(f"  wrote {written} delivery opportunities "
              f"(mahimahi format) to {args.export}")
    return 0


def _cmd_bench(args) -> int:
    from repro.perf import bench

    argv = ["--rounds", str(args.rounds), "--json", args.json,
            "--baseline", args.baseline,
            "--max-regression", str(args.max_regression)]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.no_timing_gate:
        argv.append("--no-timing-gate")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.force:
        argv.append("--force")
    if args.cells:
        argv.extend(["--cells", args.cells])
    return bench.main(argv)


def _cmd_profile(args) -> int:
    from repro.perf import profile

    argv = [args.cell, "--sort", args.sort, "--limit", str(args.limit)]
    if args.out:
        argv.extend(["--out", args.out])
    return profile.main(argv)


def _cmd_dist_worker(args) -> int:
    from repro.harness.dist import worker as worker_mod

    argv = ["--connect", args.connect, "--heartbeat", str(args.heartbeat)]
    if args.worker_id:
        argv.extend(["--worker-id", args.worker_id])
    for module in args.preload:
        argv.extend(["--preload", module])
    return worker_mod.main(argv)


def _cmd_dist_journal(args) -> int:
    from repro.harness.dist import journal as journal_mod

    try:
        state = journal_mod.replay(args.journal)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    torn = " (torn trailing line dropped)" if state.truncated else ""
    print(f"journal: {args.journal}")
    print(f"records: {state.records}{torn}")
    print(f"src hash: {state.src_hash}")
    print(f"results: {len(state.results)}")
    print(f"quarantined: {len(state.failures)}")
    for key, failure in sorted(state.failures.items()):
        print(f"  {key} [{failure.get('kind')}] after "
              f"{failure.get('attempts')} attempt(s)")
    return 0


def _add_sweep_options(cmd, supervisor_mod) -> None:
    """The shared run-all/dist-run flag set (one sweep, any backend)."""
    cmd.add_argument("--quick", action="store_true",
                     help="reduced grids (the CI smoke configuration)")
    cmd.add_argument("--jobs", type=int, default=None,
                     help="worker processes (default: cpu count)")
    cmd.add_argument("--json", metavar="PATH",
                     help="write the sweep as a JSON artifact")
    cmd.add_argument("--experiments", metavar="A,B,...",
                     help="comma-separated subset (default: all)")
    cmd.add_argument("--no-cache", action="store_true",
                     help="ignore and do not update .repro-cache/")
    cmd.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="cache location (default: $REPRO_CACHE_DIR "
                          "or .repro-cache)")
    cmd.add_argument("--checks", nargs="?", const="raise",
                     choices=("raise", "collect"), default=False,
                     help="run with the runtime invariant checker "
                          "('raise' aborts a cell on the first "
                          "violation; 'collect' records them as the "
                          "invariant_violations metric)")
    cmd.add_argument("--faults", metavar="SPEC", default=None,
                     help="inject faults: a profile name "
                          "(light/heavy/flap) or 'drop=0.01,dup=...' "
                          "(see repro.faults.FaultPlan.parse)")
    cmd.add_argument("--only", metavar="KEY[,KEY...]", default=None,
                     help="run only the cells whose key equals (or is "
                          "prefixed by) a selector — the way to "
                          "reproduce one quarantined cell")
    cmd.add_argument("--timeout", type=float, metavar="SECONDS",
                     default=supervisor_mod.DEFAULT_TIMEOUT_S,
                     help="per-cell wall-clock deadline under the "
                          "supervised runner (default "
                          f"{supervisor_mod.DEFAULT_TIMEOUT_S:g}s); a "
                          "timed-out worker is killed, retried, and "
                          "finally quarantined into the failure "
                          "manifest; experiments with a registered "
                          "timeout hint get the larger of the two")
    cmd.add_argument("--no-timeout", action="store_true",
                     help="run unsupervised in-process (no deadline, no "
                          "quarantine) — crashes and hangs propagate "
                          "raw, for debugging a quarantined cell")
    cmd.add_argument("--retries", type=int, metavar="N",
                     default=supervisor_mod.DEFAULT_RETRIES,
                     help="re-executions of a failed cell before it is "
                          "quarantined (default "
                          f"{supervisor_mod.DEFAULT_RETRIES}; seeded "
                          "deterministic backoff between attempts)")
    cmd.add_argument("--watchdog", nargs="?", type=float,
                     metavar="STALL_SECONDS", const=True, default=False,
                     help="arm the simulation liveness watchdog: raise "
                          "a typed SimulationStalled (quarantined as "
                          "'divergence') when a cell makes zero "
                          "connection progress for STALL_SECONDS of "
                          "simulated time (default 30) or drains its "
                          "event queue mid-transfer")
    cmd.add_argument("--telemetry", metavar="PATH", default=None,
                     help="append a structured JSONL telemetry log: "
                          "sweep/cell spans, cache hits, retry and "
                          "quarantine events, plus periodic engine "
                          "gauges (cwnd/flight/queue depth); render "
                          "it with `repro report`")
    cmd.add_argument("--backend", choices=("local", "dist"),
                     default="local",
                     help="execution backend: 'local' runs cells in this "
                          "process's pool; 'dist' runs them on the "
                          "fault-tolerant distributed master (leases, "
                          "heartbeats, journal + resume)")
    cmd.add_argument("--workers", type=int, default=2, metavar="N",
                     help="[dist] local worker processes to spawn "
                          "(default 2; 0 = attach-only, wait for "
                          "`repro dist worker --connect` peers)")
    cmd.add_argument("--bind", metavar="HOST:PORT", default=None,
                     help="[dist] master listen address "
                          "(default 127.0.0.1 on an ephemeral port)")
    cmd.add_argument("--journal", metavar="PATH", default=None,
                     help="[dist] append every grant/result/failure to "
                          "this run journal; required for --resume")
    cmd.add_argument("--resume", action="store_true",
                     help="[dist] replay --journal and execute only the "
                          "cells it has not settled")
    cmd.add_argument("--preload", action="append", default=[],
                     metavar="MODULE",
                     help="[dist] import MODULE in every spawned worker "
                          "(runtime-registered experiments don't cross "
                          "the spawn boundary otherwise)")
    # CI fault injection: SIGKILL a busy worker after N results.
    cmd.add_argument("--chaos-kill-after", type=int, default=None,
                     help=argparse.SUPPRESS)


def build_parser() -> argparse.ArgumentParser:
    from repro.harness import supervisor as supervisor_mod
    from repro.harness.dist import protocol as protocol_mod

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from the TCP Vegas paper "
                    "(Brakmo, O'Malley & Peterson, SIGCOMM 1994).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_text, seeds=False, quick=False):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--seed", type=int, default=0,
                         help="root random seed")
        if seeds:
            cmd.add_argument("--seeds", type=int, default=3,
                             help="number of per-condition runs")
        if quick:
            cmd.add_argument("--quick", action="store_true",
                             help="fewer grid points")
        cmd.set_defaults(fn=fn)
        return cmd

    add("list", _cmd_list, "list algorithms and subcommands")
    solo = add("solo", _cmd_solo, "one transfer on the Figure-5 network")
    solo.add_argument("--cc", default="vegas",
                      help="congestion control (see `list`)")
    solo.add_argument("--size-kb", type=int, default=1024)
    solo.add_argument("--buffers", type=int, default=10)
    add("figure6", _cmd_figure6, "Reno solo trace")
    add("figure7", _cmd_figure7, "Vegas solo trace")
    add("figure9", _cmd_figure9, "Vegas + tcplib background trace")
    add("table1", _cmd_table1, "one-on-one transfers", quick=True)
    add("table2", _cmd_table2, "transfer vs background traffic", seeds=True)
    add("table3", _cmd_table3, "background throughput", seeds=True)
    add("table4", _cmd_table4, "Internet 1MB transfers", seeds=True)
    add("table5", _cmd_table5, "Internet transfer-size sweep", seeds=True)
    add("sendbuf", _cmd_sendbuf, "send-buffer sweep")
    add("fairness", _cmd_fairness, "competing connections")
    add("twoway", _cmd_twoway, "two-way background traffic", seeds=True)
    add("telnet", _cmd_telnet, "TELNET response time", seeds=True)

    run_all = sub.add_parser(
        "run-all",
        help="run every experiment's cell grid in parallel, with caching")
    _add_sweep_options(run_all, supervisor_mod)
    run_all.set_defaults(fn=_cmd_run_all)

    dist_cmd = sub.add_parser(
        "dist",
        help="distributed sweep backend: run a sweep across worker "
             "processes, attach a worker, or inspect a run journal")
    dist_sub = dist_cmd.add_subparsers(dest="dist_command", required=True)
    dist_run = dist_sub.add_parser(
        "run",
        help="run-all on the distributed backend "
             "(shorthand for `run-all --backend dist`)")
    _add_sweep_options(dist_run, supervisor_mod)
    dist_run.set_defaults(fn=_cmd_run_all, backend="dist")
    dist_worker = dist_sub.add_parser(
        "worker",
        help="attach one worker process to a listening dist master")
    dist_worker.add_argument("--connect", required=True,
                             metavar="HOST:PORT",
                             help="master address (a `dist run --workers 0 "
                                  "--bind ...` master prints it)")
    dist_worker.add_argument("--worker-id", default=None,
                             help="identity announced to the master "
                                  "(default: pid-derived)")
    dist_worker.add_argument(
        "--heartbeat", type=float, metavar="SECONDS",
        default=protocol_mod.DEFAULT_HEARTBEAT_INTERVAL_S,
        help="heartbeat interval (default "
             f"{protocol_mod.DEFAULT_HEARTBEAT_INTERVAL_S:g}s)")
    dist_worker.add_argument("--preload", action="append", default=[],
                             metavar="MODULE",
                             help="import MODULE before serving")
    dist_worker.set_defaults(fn=_cmd_dist_worker)
    dist_journal = dist_sub.add_parser(
        "journal",
        help="summarize a dist run journal: settled results, "
             "quarantines, resumability")
    dist_journal.add_argument("journal", help="journal file from "
                                              "`dist run --journal`")
    dist_journal.set_defaults(fn=_cmd_dist_journal)

    from repro.arena import command as arena_command

    arena_command.configure_parser(sub)

    from repro.search import command as search_command

    search_command.configure_parser(sub)

    check_cmd = sub.add_parser(
        "check",
        help="gate a run-all/arena JSON artifact against a committed "
             "baseline (exit 1 = drift, 3 = quarantined cells)")
    check_cmd.add_argument("results", help="artifact from run-all/arena "
                                           "--json")
    check_cmd.add_argument("expected", help="committed baseline artifact")
    check_cmd.add_argument("--tolerance", type=float, default=0.15,
                           help="relative tolerance per metric "
                                "(default 0.15)")
    check_cmd.add_argument("--telemetry", metavar="PATH", default=None,
                           help="append the gate verdict to this telemetry "
                                "JSONL")
    check_cmd.set_defaults(fn=_cmd_check)

    report_cmd = sub.add_parser(
        "report",
        help="render a Markdown run report from a run-all JSON artifact "
             "(plus optional --telemetry JSONL)")
    report_cmd.add_argument("results", help="artifact from run-all --json")
    report_cmd.add_argument("--telemetry", metavar="PATH", default=None,
                            help="telemetry JSONL from run-all --telemetry")
    report_cmd.add_argument("--top", type=int, default=10,
                            help="slowest cells to list (default 10)")
    report_cmd.add_argument("--out", metavar="PATH", default=None,
                            help="write the report to a file")
    report_cmd.set_defaults(fn=_cmd_report)

    traces_cmd = sub.add_parser(
        "traces",
        help="inspect the time-varying scenarios' bandwidth traces; "
             "export/import mahimahi delivery-opportunity files")
    traces_cmd.add_argument("--scenario", metavar="NAME", default=None,
                            help="build and summarize one scenario's trace "
                                 "(default: list the time-varying scenarios)")
    traces_cmd.add_argument("--seed", type=int, default=0,
                            help="root seed for stochastic trace kinds")
    traces_cmd.add_argument("--export", metavar="PATH", default=None,
                            help="write the built trace as a mahimahi "
                                 "delivery-opportunity file")
    traces_cmd.add_argument("--duration", type=float, default=None,
                            help="seconds of trace to export "
                                 "(default: one cycle)")
    traces_cmd.add_argument("--load", metavar="PATH", default=None,
                            help="summarize a mahimahi file instead")
    traces_cmd.set_defaults(fn=_cmd_traces)

    bench = sub.add_parser(
        "bench",
        help="run the engine benchmark suite; write BENCH_engine.json "
             "and gate against the committed baseline")
    bench.add_argument("--rounds", type=int, default=3,
                       help="runs per cell, median reported (default 3)")
    bench.add_argument("--json", metavar="PATH", default="BENCH_engine.json",
                       help="artifact path (default BENCH_engine.json)")
    bench.add_argument("--baseline", metavar="PATH",
                       default="baselines/bench_baseline.json",
                       help="committed bench baseline")
    bench.add_argument("--no-baseline", action="store_true",
                       help="skip the baseline comparison")
    bench.add_argument("--no-timing-gate", action="store_true",
                       help="gate only on bit-identical determinism "
                            "(events, peak_heap), not events/sec")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="events/sec drop that fails the timing gate")
    bench.add_argument("--update-baseline", action="store_true",
                       help="write this run as the new baseline (refused "
                            "from a dirty tree unless --force)")
    bench.add_argument("--force", action="store_true",
                       help="allow --update-baseline from a dirty tree")
    bench.add_argument("--cells", metavar="A,B,...", default=None,
                       help="run only these suite cells; the gate then "
                            "covers just the selection")
    bench.set_defaults(fn=_cmd_bench)

    profile_cmd = sub.add_parser(
        "profile",
        help="cProfile one cell (bench name or experiment/k=v/... key) "
             "and print hotspots plus per-component event counts")
    profile_cmd.add_argument("cell",
                             help="bench cell name (table2_background, "
                                  "many_flows_1000, ...) or full cell key")
    profile_cmd.add_argument("--sort", choices=("tottime", "cumulative",
                                                "ncalls"),
                             default="tottime", help="pstats sort key")
    profile_cmd.add_argument("--limit", type=int, default=25,
                             help="rows of profile output")
    profile_cmd.add_argument("--out", metavar="PATH", default=None,
                             help="dump raw pstats data to PATH")
    profile_cmd.set_defaults(fn=_cmd_profile)

    parser.set_defaults(_subcommands=tuple(sub.choices))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
