"""The ``python -m repro arena`` command.

Generates a scheme × scenario × seed matchup matrix (see
:mod:`repro.arena.matrix`), executes it through the supervised harness
— per-cell timeouts, retries, quarantine, content-hash result cache —
and renders the league tables (:mod:`repro.arena.league`).

::

    python -m repro arena --quick                       # 3x2x2 smoke matrix
    python -m repro arena --schemes vegas,reno --seeds 3
    python -m repro arena --scenarios classic,lfn --modes duel
    python -m repro arena --quick --json arena.json --out league.md
    python -m repro arena --dry-run                     # print cells, no runs

Exit codes mirror ``run-all``: 0 = every cell completed, 2 = bad
selection, 3 = cells quarantined (league still rendered from the
survivors).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.errors import ReproError


def configure_parser(sub) -> None:
    """Attach the ``arena`` subparser to *sub* (a subparsers action)."""
    from repro.harness import supervisor as supervisor_mod

    arena = sub.add_parser(
        "arena",
        help="tournament: every selected scheme x scenario x seed, solo, "
             "round-robin 1v1 and mixed-cohabitation, with league tables")
    arena.add_argument("--schemes", metavar="A,B,...|all", default=None,
                       help="scheme subset (default: the full 8-scheme "
                            "roster, or vegas,reno,tahoe with --quick)")
    arena.add_argument("--scenarios", metavar="A,B,...|all", default=None,
                       help="scenario subset (default: classic, shallow, "
                            "deep, lfn, metro; classic,shallow with --quick)")
    arena.add_argument("--seeds", type=int, default=None, metavar="N",
                       help="seeds per matchup, expanded to 0..N-1 "
                            "(default 3, or 2 with --quick)")
    arena.add_argument("--quick", action="store_true",
                       help="CI-sized default selection: 3 schemes x 2 "
                            "scenarios x 2 seeds")
    arena.add_argument("--modes", metavar="M,N,...", default=None,
                       help="matchup modes to include: solo, duel, mix "
                            "(default: all three)")
    arena.add_argument("--cross", default=None, metavar="SCHEME",
                       help="cross-traffic scheme for mix cells "
                            "(default reno)")
    arena.add_argument("--n-cross", type=int, default=None, metavar="N",
                       help="cross flows per mix cell (default 3)")
    arena.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: cpu count)")
    arena.add_argument("--json", metavar="PATH",
                       help="write the matrix results as a harness JSON "
                            "artifact (gate with `repro check`)")
    arena.add_argument("--out", metavar="PATH", default=None,
                       help="write the league-table Markdown here "
                            "(always printed to stdout)")
    arena.add_argument("--no-cache", action="store_true",
                       help="ignore and do not update .repro-cache/")
    arena.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="cache location (default: $REPRO_CACHE_DIR "
                            "or .repro-cache)")
    arena.add_argument("--timeout", type=float, metavar="SECONDS",
                       default=supervisor_mod.DEFAULT_TIMEOUT_S,
                       help="per-cell wall-clock deadline (default "
                            f"{supervisor_mod.DEFAULT_TIMEOUT_S:g}s)")
    arena.add_argument("--no-timeout", action="store_true",
                       help="run unsupervised in-process (crashes and "
                            "hangs propagate raw)")
    arena.add_argument("--retries", type=int, metavar="N",
                       default=supervisor_mod.DEFAULT_RETRIES,
                       help="re-executions before quarantine (default "
                            f"{supervisor_mod.DEFAULT_RETRIES})")
    arena.add_argument("--checks", nargs="?", const="raise",
                       choices=("raise", "collect"), default=False,
                       help="run with the runtime invariant checker")
    arena.add_argument("--telemetry", metavar="PATH", default=None,
                       help="append the sweep's JSONL telemetry log here")
    arena.add_argument("--dry-run", action="store_true",
                       help="print the generated cell keys and exit")
    arena.set_defaults(fn=main)


def main(args) -> int:
    from repro.arena import league, matrix
    from repro.harness import artifacts, cache as cache_mod, registry, runner

    seeds = args.seeds if args.seeds is not None else (2 if args.quick else 3)
    modes = (matrix.MODES if args.modes is None
             else tuple(m.strip() for m in args.modes.split(",")
                        if m.strip()))
    try:
        cells = registry.family_cells(
            "arena", schemes=args.schemes, scenarios=args.scenarios,
            seeds=seeds, modes=modes,
            cross=args.cross or matrix.DEFAULT_CROSS,
            n_cross=(args.n_cross if args.n_cross is not None
                     else matrix.DEFAULT_N_CROSS),
            quick=args.quick)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    timeout_s = None if args.no_timeout else args.timeout
    if timeout_s is not None and timeout_s <= 0:
        print(f"error: --timeout must be positive, got {timeout_s}",
              file=sys.stderr)
        return 2

    print(f"arena matrix: {matrix.describe_matrix(cells)}", file=sys.stderr)
    if args.dry_run:
        for cell in cells:
            print(cell.key)
        return 0

    src_hash = cache_mod.compute_src_hash()
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or cache_mod.default_cache_dir()
        cache = cache_mod.ResultCache(cache_dir, src_hash)

    total = len(cells)
    done = [0]

    def progress(line: str) -> None:
        if "retrying in" not in line:
            done[0] += 1
        print(f"[{done[0]}/{total}] {line}", file=sys.stderr)

    report = runner.run_cells(cells, jobs=args.jobs, cache=cache,
                              progress=progress, checks=args.checks,
                              timeout_s=timeout_s, retries=args.retries,
                              telemetry=args.telemetry)
    doc = artifacts.build_document(
        report, mode="arena-quick" if args.quick else "arena",
        src_hash=src_hash, telemetry=args.telemetry)
    if args.json:
        artifacts.write_document(args.json, doc)

    table = league.render_league(
        doc["cells"], title="Arena league"
        + (f" — {len(report.failures)} cell(s) quarantined"
           if report.failures else ""))
    print(table)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(table)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc}", file=sys.stderr)
            return 2
        print(f"league written to {args.out}", file=sys.stderr)

    print(f"{total} cells, jobs={report.jobs}, "
          f"{report.elapsed_s:.1f}s elapsed; "
          f"cache: {report.cache_hits} hits / {report.cache_misses} misses",
          file=sys.stderr)
    if args.json:
        print(f"JSON artifact: {args.json}", file=sys.stderr)
    if report.failures:
        print(f"\nFAILED: {len(report.failures)} cell(s) quarantined "
              "(exit 3; reproduce with `run-all --only <key> --no-timeout`):",
              file=sys.stderr)
        for failure in report.failures:
            print(f"  {failure.key} [{failure.kind}] "
                  f"after {failure.attempts} attempt(s): {failure.message}",
                  file=sys.stderr)
    if args.checks:
        violations = sum(int(r.metrics.get("invariant_violations", 0.0))
                         for r in report.results)
        print(f"invariant violations: {violations}", file=sys.stderr)
        if violations and not report.failures:
            return 1
    return 3 if report.failures else 0
