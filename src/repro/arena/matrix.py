"""Arena matrix generation: scheme × scenario × seed cell families.

Unlike the paper experiments' fixed quick/full grids, the arena's grid
is *parameterized*: callers select schemes, scenarios, seed counts and
matchup modes, and the generator expands the product into harness
:class:`~repro.harness.registry.Cell`\\ s — solo baselines, round-robin
1v1 duels, and mixed-cohabitation cells.  The harness registry exposes
this as the ``arena`` cell family (:func:`repro.harness.registry.
family_cells`), so the supervised runner, content-hash cache and
quarantine machinery apply unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.arena.scenarios import (
    DEFAULT_SCENARIOS,
    QUICK_SCENARIOS,
    get_scenario,
)
from repro.core.registry import arena_roster, cc_factory
from repro.errors import ConfigurationError
from repro.harness.registry import Cell

#: Matchup modes, in generation order.
MODES = ("solo", "duel", "mix")

#: The ``--quick`` scheme trio: the paper's protagonists plus the
#: oldest baseline, spanning the delay/loss signal split.
QUICK_SCHEMES = ("vegas", "reno", "tahoe")

#: Default cross-traffic scheme and cohort size for mix cells: the
#: deployed-world incumbent the paper measures against.
DEFAULT_CROSS = "reno"
DEFAULT_N_CROSS = 3


def _split_csv(value: str) -> List[str]:
    return [token.strip() for token in value.split(",") if token.strip()]


def resolve_schemes(schemes: Optional[object],
                    quick: bool = False) -> List[str]:
    """Normalise a scheme selection to a validated name list.

    Accepts ``None`` (the quick trio or the full roster), the string
    ``"all"`` (full roster), a comma-separated string, or an iterable
    of names.  Every name must be constructible via the registry.
    Note the comma split: parameter variants whose *names* contain a
    comma ("vegas-1,3") must be selected programmatically.
    """
    if schemes is None:
        names = list(QUICK_SCHEMES) if quick else arena_roster()
    elif isinstance(schemes, str):
        names = arena_roster() if schemes == "all" else _split_csv(schemes)
    else:
        names = list(schemes)
    if not names:
        raise ConfigurationError("arena needs at least one scheme")
    for name in names:
        cc_factory(name)  # raises ConfigurationError on unknown names
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheme in selection: {names}")
    return names


def resolve_scenarios(scenarios: Optional[object],
                      quick: bool = False) -> List[str]:
    """Normalise a scenario selection (same shapes as schemes)."""
    if scenarios is None:
        names = list(QUICK_SCENARIOS if quick else DEFAULT_SCENARIOS)
    elif isinstance(scenarios, str):
        names = (list(DEFAULT_SCENARIOS) if scenarios == "all"
                 else _split_csv(scenarios))
    else:
        names = list(scenarios)
    if not names:
        raise ConfigurationError("arena needs at least one scenario")
    for name in names:
        get_scenario(name)
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scenario in selection: {names}")
    return names


def generate_matrix(schemes: Optional[object] = None,
                    scenarios: Optional[object] = None,
                    seeds: int = 2,
                    modes: Sequence[str] = MODES,
                    cross: str = DEFAULT_CROSS,
                    n_cross: int = DEFAULT_N_CROSS,
                    quick: bool = False) -> List[Cell]:
    """Expand a selection into the arena's cell list.

    * ``solo``: every scheme × scenario × seed;
    * ``duel``: every unordered scheme pair (round-robin) × scenario ×
      seed, the pair name-sorted so ``a``/``b`` assignment — and hence
      the cell key — is order-independent;
    * ``mix``: every scheme × scenario × seed cohabiting with
      ``n_cross`` flows of ``cross`` (the cross scheme itself included
      as its own homogeneous control group when selected).

    ``seeds`` is a count, expanded to ``0..seeds-1``: arena seeds are
    dense by construction so CI matrices stay describable as "N seeds".
    """
    scheme_names = resolve_schemes(schemes, quick=quick)
    scenario_names = resolve_scenarios(scenarios, quick=quick)
    if seeds < 1:
        raise ConfigurationError(f"seeds must be >= 1, got {seeds}")
    unknown = [m for m in modes if m not in MODES]
    if unknown:
        raise ConfigurationError(
            f"unknown arena mode(s) {unknown}; known: {list(MODES)}")
    if "mix" in modes:
        cc_factory(cross)
        if n_cross < 1:
            raise ConfigurationError(f"n_cross must be >= 1, got {n_cross}")

    cells: List[Cell] = []
    seed_range = range(seeds)
    for scenario in scenario_names:
        if "solo" in modes:
            cells.extend(
                Cell.make("arena_solo", scheme=scheme, scenario=scenario,
                          seed=seed)
                for scheme in scheme_names for seed in seed_range)
        if "duel" in modes:
            for i, first in enumerate(scheme_names):
                for second in scheme_names[i + 1:]:
                    a, b = sorted((first, second))
                    cells.extend(
                        Cell.make("arena_duel", a=a, b=b, scenario=scenario,
                                  seed=seed)
                        for seed in seed_range)
        if "mix" in modes:
            cells.extend(
                Cell.make("arena_mix", scheme=scheme, cross=cross,
                          n_cross=n_cross, scenario=scenario, seed=seed)
                for scheme in scheme_names for seed in seed_range)
    return cells


def describe_matrix(cells: Iterable[Cell]) -> str:
    """One-line shape summary ("12 solo + 12 duel + 12 mix = 36 cells")."""
    counts: Dict[str, int] = {}
    for cell in cells:
        counts[cell.experiment] = counts.get(cell.experiment, 0) + 1
    total = sum(counts.values())
    parts = [f"{counts[f'arena_{mode}']} {mode}"
             for mode in MODES if f"arena_{mode}" in counts]
    return " + ".join(parts) + f" = {total} cells" if parts else "0 cells"
