"""Arena scenario templates.

A **scenario** is a named bottleneck configuration every matchup runs
over: bandwidth, propagation delay, router buffering, per-flow
transfer size, and a simulation horizon.  The set deliberately spans
the regimes where the paper's §3.2 schemes differentiate — the
Figure-5 classic (half-to-one BDP of buffering), a starved queue where
loss-based probing thrashes, a deep queue where delay-based schemes
shine, a long-fat path, and a short-haul metro path.

Scenarios reuse the canonical :mod:`repro.experiments.defaults`
numbers where they overlap (``classic`` *is* the Figure-5 bottleneck)
so the arena and the paper experiments stay mutually calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments import defaults as DFLT
from repro.net.traces import TraceSpec
from repro.units import kb, kbps, ms


@dataclass(frozen=True)
class Scenario:
    """One named bottleneck configuration for arena matchups."""

    name: str
    description: str
    bandwidth: float        # bottleneck bandwidth, bytes/second
    delay: float            # bottleneck one-way propagation, seconds
    buffers: int            # bottleneck queue capacity, packets
    access_delay: float     # per-flow access-link propagation, seconds
    transfer_bytes: int     # per-flow bulk transfer size
    horizon: float          # simulated seconds before the run is cut
    #: Optional time-varying bandwidth recipe; when set, the bottleneck
    #: drains along the built trace and ``bandwidth`` is only the
    #: nominal (cycle-mean) figure shown in tables.
    trace: Optional[TraceSpec] = None
    #: Stochastic per-packet loss on the bottleneck, independent of
    #: queue drops (seeded per cell; see VariableRateChannel).
    loss: float = 0.0

    @property
    def transfer_kb(self) -> int:
        return self.transfer_bytes // 1024

    @property
    def time_varying(self) -> bool:
        """True when the bottleneck is trace-driven or lossy."""
        return self.trace is not None or self.loss > 0.0


SCENARIOS: Dict[str, Scenario] = {s.name: s for s in (
    Scenario("classic",
             "the paper's Figure-5 bottleneck: 200 KB/s, 50 ms, 10 buffers",
             bandwidth=DFLT.BOTTLENECK_BANDWIDTH,
             delay=DFLT.BOTTLENECK_DELAY,
             buffers=DFLT.DEFAULT_BUFFERS,
             access_delay=ms(10), transfer_bytes=kb(300), horizon=180.0),
    Scenario("shallow",
             "starved queue: Figure-5 link with only 4 buffers",
             bandwidth=DFLT.BOTTLENECK_BANDWIDTH,
             delay=DFLT.BOTTLENECK_DELAY,
             buffers=4,
             access_delay=ms(10), transfer_bytes=kb(300), horizon=180.0),
    Scenario("deep",
             "over-buffered queue: Figure-5 link with 40 buffers (~2 BDP)",
             bandwidth=DFLT.BOTTLENECK_BANDWIDTH,
             delay=DFLT.BOTTLENECK_DELAY,
             buffers=40,
             access_delay=ms(10), transfer_bytes=kb(300), horizon=180.0),
    Scenario("lfn",
             "long fat network: 600 KB/s, 100 ms one-way, 25 buffers",
             bandwidth=kbps(600), delay=ms(100), buffers=25,
             access_delay=ms(10), transfer_bytes=kb(600), horizon=180.0),
    Scenario("metro",
             "short-haul fast path: 1 MB/s, 5 ms one-way, 10 buffers",
             bandwidth=kbps(1000), delay=ms(5), buffers=10,
             access_delay=ms(1), transfer_bytes=kb(600), horizon=120.0),
    # ------------------------------------------------------------------
    # Time-varying bottlenecks (trace-driven links; see repro.net.traces)
    # ------------------------------------------------------------------
    Scenario("steps",
             "square-wave capacity: 300<->100 KB/s every 8 s, 50 ms, "
             "20 buffers",
             bandwidth=kbps(200), delay=DFLT.BOTTLENECK_DELAY, buffers=20,
             access_delay=ms(10), transfer_bytes=kb(300), horizon=120.0,
             trace=TraceSpec.make(
                 "steps", steps=((8.0, kbps(300)), (8.0, kbps(100))))),
    Scenario("lte",
             "cellular sawtooth: 1 MB/s peak fading to 100 KB/s with "
             "deep fades, 30 ms, 50 buffers",
             bandwidth=kbps(550), delay=ms(30), buffers=50,
             access_delay=ms(10), transfer_bytes=kb(600), horizon=120.0,
             trace=TraceSpec.make(
                 "cellular", peak=kbps(1000), trough=kbps(100))),
    Scenario("wifi",
             "random-walk capacity around 500 KB/s plus 0.5% stochastic "
             "loss, 10 ms, 25 buffers",
             bandwidth=kbps(500), delay=ms(10), buffers=25,
             access_delay=ms(5), transfer_bytes=kb(600), horizon=120.0,
             trace=TraceSpec.make(
                 "random-walk", mean=kbps(500), step=kbps(60)),
             loss=0.005),
    Scenario("outage",
             "250 KB/s link that goes dark 2 s out of every 15 s, "
             "50 ms, 20 buffers",
             bandwidth=kbps(250), delay=DFLT.BOTTLENECK_DELAY, buffers=20,
             access_delay=ms(10), transfer_bytes=kb(300), horizon=120.0,
             trace=TraceSpec.make(
                 "outage", rate=kbps(250), period=15.0, down=2.0)),
    # Tiny grid point for tests and the CI registry-completeness suite;
    # not part of any default selection.
    Scenario("smoke",
             "test-sized classic bottleneck: 64 KB transfers",
             bandwidth=DFLT.BOTTLENECK_BANDWIDTH,
             delay=DFLT.BOTTLENECK_DELAY,
             buffers=DFLT.DEFAULT_BUFFERS,
             access_delay=ms(10), transfer_bytes=kb(64), horizon=60.0),
)}

#: Default full-matrix selection (every scenario except ``smoke``).
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "classic", "shallow", "deep", "lfn", "metro",
    "steps", "lte", "wifi", "outage")

#: The trace-driven subset of the matrix.
TIME_VARYING_SCENARIOS: Tuple[str, ...] = ("steps", "lte", "wifi", "outage")

#: The ``--quick`` selection: two contrasting buffer regimes.
QUICK_SCENARIOS: Tuple[str, ...] = ("classic", "shallow")


def available_scenarios() -> List[str]:
    """Sorted list of scenario names."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown arena scenario {name!r}; "
            f"available: {available_scenarios()}") from None


def custom_scenario(bandwidth_kbps: float, delay_ms: float, buffers: int,
                    transfer_kb: int, loss: float = 0.0,
                    horizon: Optional[float] = None,
                    name: str = "custom") -> Scenario:
    """Build an anonymous :class:`Scenario` from raw point parameters.

    This is the parameterized-construction path the scenario-search
    driver (:mod:`repro.search`) uses: a search point names bandwidth /
    latency / queue / transfer size directly instead of picking from
    :data:`SCENARIOS`.  Validation mirrors what the named scenarios
    guarantee by construction; the horizon, when not given, is sized so
    the cohort could drain ~4x its total bytes at the bottleneck rate
    (clamped to keep pathological corners bounded).
    """
    if not bandwidth_kbps > 0:
        raise ConfigurationError(
            f"scenario bandwidth must be positive, got {bandwidth_kbps!r}")
    if not delay_ms >= 0:
        raise ConfigurationError(
            f"scenario delay must be >= 0 ms, got {delay_ms!r}")
    if buffers < 1:
        raise ConfigurationError(
            f"scenario buffers must be >= 1, got {buffers!r}")
    if transfer_kb < 1:
        raise ConfigurationError(
            f"scenario transfer size must be >= 1 KB, got {transfer_kb!r}")
    if not 0.0 <= loss < 1.0:
        raise ConfigurationError(
            f"scenario loss must be in [0, 1), got {loss!r}")
    if horizon is None:
        drain_s = 4.0 * transfer_kb / bandwidth_kbps
        horizon = min(240.0, max(30.0, 10.0 + drain_s))
    return Scenario(
        name=name,
        description=(f"search point: {bandwidth_kbps:g} KB/s, "
                     f"{delay_ms:g} ms, {buffers} buffers, "
                     f"{transfer_kb} KB transfers, loss {loss:g}"),
        bandwidth=kbps(bandwidth_kbps), delay=ms(delay_ms),
        buffers=int(buffers), access_delay=ms(5),
        transfer_bytes=kb(int(transfer_kb)), horizon=float(horizon),
        loss=float(loss))
