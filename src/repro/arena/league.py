"""League-table aggregation over arena cells.

Folds JSON-shaped arena cells (``{"experiment", "params", "metrics"}``
— the harness artifact format, fresh or loaded from disk) into
per-scheme standings, football-league style:

* **duels** decide the table: a duel cell is a *win* for the scheme
  with the higher goodput (within :data:`DRAW_MARGIN` it's a draw),
  worth 2 points, a draw worth 1 — so a scheme that crushes *and* one
  that shares fairly both outscore one that loses;
* **solo** cells contribute the scheme's unopposed throughput, delay
  and retransmit baselines;
* **mix** cells measure citizenship: what the scheme achieves as a
  minority flow, and what it costs the incumbent cross traffic.

:func:`render_league` renders the overall standings plus per-scenario
breakdowns as Markdown, through the same table helper the ``repro
report`` machinery uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.report import markdown_table

#: Relative goodput margin under which a duel is scored as a draw: two
#: schemes within 5% of each other are sharing, not winning.
DRAW_MARGIN = 0.05

#: League points per duel outcome.
WIN_POINTS = 2
DRAW_POINTS = 1

Cells = Sequence[Dict[str, Any]]


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _fmt(value: Optional[float], spec: str = ".1f") -> str:
    return format(value, spec) if value is not None else "-"


@dataclass
class Standing:
    """Accumulated league results for one scheme."""

    scheme: str
    wins: int = 0
    draws: int = 0
    losses: int = 0
    no_contests: int = 0
    duel_throughput: List[float] = field(default_factory=list)
    duel_fairness: List[float] = field(default_factory=list)
    solo_throughput: List[float] = field(default_factory=list)
    solo_rtt_ms: List[float] = field(default_factory=list)
    solo_retransmit_kb: List[float] = field(default_factory=list)
    mix_throughput: List[float] = field(default_factory=list)
    mix_cross_throughput: List[float] = field(default_factory=list)
    mix_fairness: List[float] = field(default_factory=list)
    incomplete: int = 0

    @property
    def duels(self) -> int:
        return self.wins + self.draws + self.losses

    @property
    def points(self) -> int:
        return WIN_POINTS * self.wins + DRAW_POINTS * self.draws

    def sort_key(self):
        # Points lead; mean duel goodput breaks ties; name stabilises.
        return (-self.points, -(_mean(self.duel_throughput) or 0.0),
                self.scheme)


def duel_outcome(a_throughput: float, b_throughput: float,
                 margin: float = DRAW_MARGIN) -> Optional[int]:
    """Score one duel: +1 = ``a`` wins, 0 = draw, -1 = ``b`` wins.

    When *both* goodputs are ≤ 0 (an outage where neither flow moved
    data) there is nothing to share and nothing to win: the duel is a
    no-contest, returned as ``None``, and must not award points.
    """
    best = max(a_throughput, b_throughput)
    if best <= 0:
        return None
    if abs(a_throughput - b_throughput) <= margin * best:
        return 0
    return 1 if a_throughput > b_throughput else -1


def compute_standings(cells: Cells,
                      scenario: Optional[str] = None) -> List[Standing]:
    """Fold arena cells into sorted league standings.

    *scenario*, when given, restricts the table to that scenario's
    cells; non-arena cells are ignored so the aggregator can run over
    a mixed artifact.
    """
    table: Dict[str, Standing] = {}

    def standing(scheme: str) -> Standing:
        return table.setdefault(scheme, Standing(scheme))

    for cell in cells:
        params = cell.get("params", {})
        metrics = cell.get("metrics", {})
        if scenario is not None and params.get("scenario") != scenario:
            continue
        experiment = cell.get("experiment")
        if experiment == "arena_solo":
            entry = standing(params["scheme"])
            entry.solo_throughput.append(metrics["throughput_kbps"])
            entry.solo_rtt_ms.append(metrics["rtt_mean_ms"])
            entry.solo_retransmit_kb.append(metrics["retransmit_kb"])
            if not metrics.get("completed", 0.0):
                entry.incomplete += 1
        elif experiment == "arena_duel":
            entry_a = standing(params["a"])
            entry_b = standing(params["b"])
            a_rate = metrics["a_throughput_kbps"]
            b_rate = metrics["b_throughput_kbps"]
            outcome = duel_outcome(a_rate, b_rate)
            if outcome is None:
                entry_a.no_contests += 1
                entry_b.no_contests += 1
            elif outcome > 0:
                entry_a.wins += 1
                entry_b.losses += 1
            elif outcome < 0:
                entry_b.wins += 1
                entry_a.losses += 1
            else:
                entry_a.draws += 1
                entry_b.draws += 1
            if outcome is not None:
                entry_a.duel_throughput.append(a_rate)
                entry_b.duel_throughput.append(b_rate)
            fairness = metrics.get("fairness_index")
            if fairness is not None:
                entry_a.duel_fairness.append(fairness)
                entry_b.duel_fairness.append(fairness)
            for side, entry in (("a", entry_a), ("b", entry_b)):
                if not metrics.get(f"{side}_completed", 0.0):
                    entry.incomplete += 1
        elif experiment == "arena_mix":
            entry = standing(params["scheme"])
            entry.mix_throughput.append(metrics["subject_throughput_kbps"])
            entry.mix_cross_throughput.append(
                metrics["cross_mean_throughput_kbps"])
            fairness = metrics.get("fairness_index")
            if fairness is not None:
                entry.mix_fairness.append(fairness)
            if not metrics.get("subject_completed", 0.0):
                entry.incomplete += 1
    return sorted(table.values(), key=Standing.sort_key)


def _standings_table(standings: Sequence[Standing]) -> List[str]:
    rows = []
    for rank, entry in enumerate(standings, start=1):
        rows.append([
            rank, entry.scheme, entry.points,
            f"{entry.wins}-{entry.draws}-{entry.losses}",
            entry.no_contests or "",
            _fmt(_mean(entry.duel_fairness), ".3f"),
            _fmt(_mean(entry.solo_throughput)),
            _fmt(_mean(entry.solo_rtt_ms)),
            _fmt(_mean(entry.solo_retransmit_kb)),
            _fmt(_mean(entry.mix_throughput)),
            _fmt(_mean(entry.mix_cross_throughput)),
            _fmt(_mean(entry.mix_fairness), ".3f"),
            entry.incomplete or "",
        ])
    return markdown_table(
        ["#", "scheme", "pts", "W-D-L", "NC", "duel fair", "solo KB/s",
         "solo RTT ms", "solo retx KB", "mix KB/s", "cross KB/s",
         "mix fair", "DNF"], rows)


def arena_cells(cells: Cells) -> List[Dict[str, Any]]:
    """The arena subset of an artifact's cells."""
    return [c for c in cells
            if c.get("experiment", "").startswith("arena_")]


def render_league(cells: Cells, title: str = "Arena league") -> str:
    """Markdown league report: overall standings + per-scenario tables."""
    pool = arena_cells(cells)
    lines = [f"# {title}", ""]
    if not pool:
        lines.append("(no arena cells in this artifact)")
        lines.append("")
        return "\n".join(lines)

    scenarios = sorted({c["params"]["scenario"] for c in pool
                        if "scenario" in c.get("params", {})})
    by_mode: Dict[str, int] = {}
    for cell in pool:
        by_mode[cell["experiment"]] = by_mode.get(cell["experiment"], 0) + 1
    lines.append(f"- cells: {len(pool)} ("
                 + ", ".join(f"{by_mode[k]} {k.split('_', 1)[1]}"
                             for k in sorted(by_mode)) + ")")
    lines.append(f"- scenarios: {', '.join(scenarios)}")
    lines.append(f"- scoring: win {WIN_POINTS} / draw {DRAW_POINTS} "
                 f"(draw = goodput within {DRAW_MARGIN:.0%}; duels where "
                 f"neither flow moved data are no-contests, NC, no points)")
    lines.append("")
    lines.append("## Overall standings")
    lines.append("")
    lines.extend(_standings_table(compute_standings(pool)))

    for scenario in scenarios:
        lines.append("")
        lines.append(f"## Scenario: {scenario}")
        lines.append("")
        lines.extend(_standings_table(compute_standings(pool,
                                                        scenario=scenario)))
    lines.append("")
    return "\n".join(lines)
