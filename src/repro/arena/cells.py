"""Arena cell runners: solo, duel, and mixed-cohabitation matchups.

Every matchup reduces to the same simulation shape — a *cohort* of
bulk flows, one scheme name per flow, pushed through one scenario's
bottleneck — so one builder (:func:`run_cohort`) serves all three cell
families:

* ``arena_solo``: a single flow, the scheme's unopposed baseline;
* ``arena_duel``: one flow each of two schemes (round-robin 1v1);
* ``arena_mix``: one *subject* flow sharing the bottleneck with N
  flows of a *cross* scheme (the "one Vegas among Renos" question).

The functions here are module-level and keyword-callable so the
harness registry can dispatch them in worker processes (see
``_arena_*_cell`` in :mod:`repro.harness.registry`); they return flat
``{metric: number}`` dicts like every other cell runner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.arena.scenarios import Scenario, get_scenario
from repro.core.registry import cc_factory
from repro.experiments import defaults as DFLT
from repro.metrics.fairness import jain_fairness_index
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.protocol import TCPProtocol
from repro.units import mbps, ms


@dataclass
class FlowOutcome:
    """Per-flow results of one cohort run."""

    scheme: str
    throughput_kbps: float
    retransmit_kb: float
    coarse_timeouts: int
    rtt_mean_ms: float
    done: bool


def run_cohort(schemes: Sequence[str], scenario: Union[str, Scenario],
               seed: int = 0) -> List[FlowOutcome]:
    """Run one flow per entry of *schemes* through *scenario*.

    *scenario* is a registered scenario name or a :class:`Scenario`
    instance — the scenario-search driver builds anonymous parameterized
    scenarios (:func:`repro.arena.scenarios.custom_scenario`) that never
    enter the named registry.

    Topology follows the fairness experiment: each flow gets a private
    source/sink host pair and access links into a shared two-router
    bottleneck, so flows interact only at the scenario's queue.  Flow
    starts are staggered by a small seeded jitter — simultaneous SYNs
    would synchronize slow-start and measure the phase effect, not the
    schemes.  Outcomes are returned in flow order (``schemes`` order).
    """
    spec: Scenario = (scenario if isinstance(scenario, Scenario)
                      else get_scenario(scenario))
    factories = [cc_factory(name) for name in schemes]
    sim = Simulator()
    topo = Topology(sim)
    rng = RngRegistry(seed)
    r1 = topo.add_router("R1")
    r2 = topo.add_router("R2")
    # Time-varying scenarios carry a TraceSpec; build it from the
    # cell's own seeded streams so the trace (and any stochastic loss)
    # is a pure function of (scenario, seed).  Static scenarios take
    # the unchanged closed-form path — no extra streams, no trace —
    # so their cells stay bit-identical to the committed baselines.
    link_kwargs = {}
    if spec.trace is not None:
        link_kwargs["trace"] = spec.trace.build(rng.stream("link-trace"))
    if spec.loss > 0.0:
        link_kwargs["loss"] = spec.loss
        link_kwargs["loss_rng"] = rng.stream("link-loss")
    topo.add_link(r1, r2, bandwidth=spec.bandwidth, delay=spec.delay,
                  queue_capacity=spec.buffers, name="bottleneck",
                  **link_kwargs)
    sources, sinks = [], []
    for i in range(len(schemes)):
        src = topo.add_host(f"S{i}")
        dst = topo.add_host(f"D{i}")
        topo.add_link(src, r1, bandwidth=mbps(10), delay=spec.access_delay,
                      queue_capacity=None, name=f"access{i}")
        topo.add_link(r2, dst, bandwidth=mbps(10), delay=ms(0.1),
                      queue_capacity=None, name=f"egress{i}")
        sources.append(src)
        sinks.append(dst)
    topo.build_routes()

    stagger = rng.stream("stagger")
    transfers: List[BulkTransfer] = [None] * len(schemes)
    for i, factory in enumerate(factories):
        sproto = TCPProtocol(sources[i], rng=random.Random(
            rng.stream(f"timer/s{i}").random()))
        dproto = TCPProtocol(sinks[i], rng=random.Random(
            rng.stream(f"timer/d{i}").random()))
        BulkSink(dproto, DFLT.TRANSFER_PORT)
        delay = stagger.uniform(0.0, 0.25)

        def _start(slot=i, proto=sproto, dst_name=sinks[i].name,
                   make_cc=factory) -> None:
            transfers[slot] = BulkTransfer(proto, dst_name,
                                           DFLT.TRANSFER_PORT,
                                           spec.transfer_bytes, cc=make_cc())

        sim.schedule(delay, _start)
    sim.run(until=spec.horizon)

    outcomes: List[FlowOutcome] = []
    for scheme, transfer in zip(schemes, transfers):
        stats = transfer.conn.stats
        rtt_mean = stats.rtt_mean
        outcomes.append(FlowOutcome(
            scheme=scheme,
            throughput_kbps=stats.throughput_kbps(),
            retransmit_kb=stats.retransmitted_kb(),
            coarse_timeouts=stats.coarse_timeouts,
            rtt_mean_ms=(rtt_mean or 0.0) * 1000.0,
            done=transfer.done,
        ))
    return outcomes


def _flow_metrics(prefix: str, flow: FlowOutcome) -> Dict[str, float]:
    key = f"{prefix}_" if prefix else ""
    return {
        f"{key}throughput_kbps": flow.throughput_kbps,
        f"{key}retransmit_kb": flow.retransmit_kb,
        f"{key}coarse_timeouts": float(flow.coarse_timeouts),
        f"{key}rtt_mean_ms": flow.rtt_mean_ms,
        f"{key}completed": 1.0 if flow.done else 0.0,
    }


def arena_solo(scheme: str, scenario: str, seed: int) -> Dict[str, float]:
    """One unopposed flow: the scheme's baseline on this scenario."""
    flow, = run_cohort([scheme], scenario, seed=seed)
    return _flow_metrics("", flow)


def arena_duel(a: str, b: str, scenario: str, seed: int) -> Dict[str, float]:
    """Round-robin 1v1: one flow of *a* against one flow of *b*."""
    flow_a, flow_b = run_cohort([a, b], scenario, seed=seed)
    metrics = _flow_metrics("a", flow_a)
    metrics.update(_flow_metrics("b", flow_b))
    metrics["fairness_index"] = jain_fairness_index(
        [flow_a.throughput_kbps, flow_b.throughput_kbps])
    return metrics


def arena_mix(scheme: str, cross: str, n_cross: int, scenario: str,
              seed: int) -> Dict[str, float]:
    """One *scheme* flow cohabiting with *n_cross* flows of *cross*.

    The subject flow is flow 0; the cross cohort's throughput is
    reported both as an aggregate and per-flow mean so league scoring
    can ask "what did the subject's presence cost the incumbents?".
    """
    if n_cross < 1:
        raise ValueError(f"n_cross must be >= 1, got {n_cross}")
    flows = run_cohort([scheme] + [cross] * n_cross, scenario, seed=seed)
    subject, cohort = flows[0], flows[1:]
    metrics = _flow_metrics("subject", subject)
    cohort_rates = [f.throughput_kbps for f in cohort]
    metrics["cross_throughput_kbps"] = sum(cohort_rates)
    metrics["cross_mean_throughput_kbps"] = sum(cohort_rates) / len(cohort)
    metrics["cross_retransmit_kb"] = sum(f.retransmit_kb for f in cohort)
    metrics["cross_completed"] = (
        1.0 if all(f.done for f in cohort) else 0.0)
    metrics["fairness_index"] = jain_fairness_index(
        [subject.throughput_kbps] + cohort_rates)
    return metrics
