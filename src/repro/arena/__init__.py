"""Pantheon-style multi-scheme arena.

The paper's §3.2 compares Vegas against the era's alternative
congestion-avoidance schemes (DUAL, CARD, Tri-S); this package turns
that comparison into a tournament over the *whole* scheme registry:

* :mod:`repro.arena.scenarios` — named bottleneck configurations;
* :mod:`repro.arena.cells` — solo / 1v1-duel / mixed-cohabitation
  matchup runners;
* :mod:`repro.arena.matrix` — the parameterized scheme × scenario ×
  seed cell family (``repro.harness.registry.family_cells("arena")``);
* :mod:`repro.arena.league` — throughput/delay/retransmit/fairness
  standings rendered as Markdown league tables;
* :mod:`repro.arena.command` — the ``python -m repro arena`` CLI.
"""

# Re-exports are lazy (PEP 562): the CLI imports this package while
# building its parser, and must not drag the simulator stack in just
# to register the `arena` subcommand.
_EXPORTS = {
    "FlowOutcome": "cells", "arena_duel": "cells", "arena_mix": "cells",
    "arena_solo": "cells", "run_cohort": "cells",
    "Standing": "league", "compute_standings": "league",
    "render_league": "league",
    "MODES": "matrix", "describe_matrix": "matrix",
    "generate_matrix": "matrix",
    "DEFAULT_SCENARIOS": "scenarios", "QUICK_SCENARIOS": "scenarios",
    "TIME_VARYING_SCENARIOS": "scenarios",
    "SCENARIOS": "scenarios", "Scenario": "scenarios",
    "available_scenarios": "scenarios", "get_scenario": "scenarios",
}


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "FlowOutcome",
    "MODES",
    "DEFAULT_SCENARIOS",
    "QUICK_SCENARIOS",
    "TIME_VARYING_SCENARIOS",
    "SCENARIOS",
    "Scenario",
    "Standing",
    "arena_duel",
    "arena_mix",
    "arena_solo",
    "available_scenarios",
    "compute_standings",
    "describe_matrix",
    "generate_matrix",
    "get_scenario",
    "render_league",
    "run_cohort",
]
