"""Assembled trace graphs — the paper's multi-panel connection figures.

A :class:`TraceGraph` bundles every panel of a Figure-1/6/7/9-style
plot for one connection: the common elements (Figure 2), the windows
panel (Figure 3), the sending-rate panel, and — for Vegas — the CAM
panel (Figure 8).  The figure benchmarks regenerate these and assert
their qualitative content; :mod:`repro.trace.ascii_plot` renders them
as text for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.trace import series as S
from repro.trace.records import Kind
from repro.trace.tracer import ConnectionTracer


@dataclass
class CommonElements:
    """Figure 2: marks shared by every TCP trace graph."""

    ack_marks: List[float] = field(default_factory=list)
    send_marks: List[float] = field(default_factory=list)
    kilobyte_marks: List[Tuple[float, float]] = field(default_factory=list)
    timer_diamonds: List[float] = field(default_factory=list)
    timeout_circles: List[float] = field(default_factory=list)
    loss_lines: List[float] = field(default_factory=list)


@dataclass
class WindowsPanel:
    """Figure 3: the windows graph."""

    threshold_window: List[Tuple[float, float]] = field(default_factory=list)
    send_window: List[Tuple[float, float]] = field(default_factory=list)
    congestion_window: List[Tuple[float, float]] = field(default_factory=list)
    bytes_in_transit: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class CamPanel:
    """Figure 8: Vegas' congestion-avoidance panel."""

    decision_times: List[float] = field(default_factory=list)
    expected: List[Tuple[float, float]] = field(default_factory=list)
    actual: List[Tuple[float, float]] = field(default_factory=list)
    diff_buffers: List[Tuple[float, float]] = field(default_factory=list)
    alpha: float = 0.0
    beta: float = 0.0


@dataclass
class TraceGraph:
    """All panels for one connection trace."""

    name: str
    common: CommonElements
    windows: WindowsPanel
    sending_rate: List[Tuple[float, float]]
    cam: Optional[CamPanel] = None

    @property
    def duration(self) -> float:
        if not self.common.send_marks:
            return 0.0
        return self.common.send_marks[-1] - self.common.send_marks[0]

    def losses(self) -> int:
        """Number of presumed-lost segments (retransmission count)."""
        return len(self.common.loss_lines)


def build_trace_graph(tracer: ConnectionTracer, name: str = "",
                      alpha_buffers: float = 0.0,
                      beta_buffers: float = 0.0) -> TraceGraph:
    """Derive every panel of the paper's trace figure from *tracer*.

    ``alpha_buffers``/``beta_buffers`` annotate the CAM panel's dashed
    threshold lines when the traced connection ran Vegas.
    """
    common = CommonElements(
        ack_marks=S.ack_marks(tracer),
        send_marks=S.send_marks(tracer),
        kilobyte_marks=S.kilobyte_marks(tracer),
        timer_diamonds=S.timer_diamonds(tracer),
        timeout_circles=S.timeout_circles(tracer),
        loss_lines=S.loss_lines(tracer),
    )
    windows = WindowsPanel(
        threshold_window=S.step_series(tracer, Kind.SSTHRESH),
        send_window=S.step_series(tracer, Kind.SND_WND),
        congestion_window=S.step_series(tracer, Kind.CWND),
        bytes_in_transit=S.step_series(tracer, Kind.FLIGHT),
    )
    expected, actual = S.cam_series(tracer)
    cam: Optional[CamPanel] = None
    if expected:
        cam = CamPanel(
            decision_times=[t for t, _ in expected],
            expected=expected,
            actual=actual,
            diff_buffers=S.cam_diff_series(tracer),
            alpha=alpha_buffers,
            beta=beta_buffers,
        )
    return TraceGraph(
        name=name or tracer.name,
        common=common,
        windows=windows,
        sending_rate=S.sending_rate_series(tracer),
        cam=cam,
    )
