"""Export trace graphs to portable formats.

The paper's tools rendered PostScript; downstream users of this
library will want the raw series for their own plotting stacks.  Two
formats:

* **CSV** — one file per panel series, ``time,value`` rows;
* **JSON** — the entire :class:`~repro.trace.graphs.TraceGraph` as one
  document (marks, panels, CAM data), suitable for d3/matplotlib/R.

Both are plain-text and dependency-free.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.trace.graphs import TraceGraph

Series = List[Tuple[float, float]]


def graph_to_dict(graph: TraceGraph) -> Dict:
    """A JSON-ready dictionary of every panel in *graph*."""
    out: Dict = {
        "name": graph.name,
        "duration": graph.duration,
        "losses": graph.losses(),
        "common": {
            "ack_marks": list(graph.common.ack_marks),
            "send_marks": list(graph.common.send_marks),
            "kilobyte_marks": [list(p) for p in graph.common.kilobyte_marks],
            "timer_diamonds": list(graph.common.timer_diamonds),
            "timeout_circles": list(graph.common.timeout_circles),
            "loss_lines": list(graph.common.loss_lines),
        },
        "windows": {
            "threshold_window": [list(p) for p in
                                 graph.windows.threshold_window],
            "send_window": [list(p) for p in graph.windows.send_window],
            "congestion_window": [list(p) for p in
                                  graph.windows.congestion_window],
            "bytes_in_transit": [list(p) for p in
                                 graph.windows.bytes_in_transit],
        },
        "sending_rate": [list(p) for p in graph.sending_rate],
    }
    if graph.cam is not None:
        out["cam"] = {
            "alpha": graph.cam.alpha,
            "beta": graph.cam.beta,
            "decision_times": list(graph.cam.decision_times),
            "expected": [list(p) for p in graph.cam.expected],
            "actual": [list(p) for p in graph.cam.actual],
            "diff_buffers": [list(p) for p in graph.cam.diff_buffers],
        }
    return out


def export_json(graph: TraceGraph, path: str) -> str:
    """Write *graph* as one JSON document; returns the path."""
    with open(path, "w") as handle:
        json.dump(graph_to_dict(graph), handle, indent=1)
    return path


def export_csv(graph: TraceGraph, directory: str) -> List[str]:
    """Write each panel series as ``<name>__<series>.csv``.

    Returns the list of files written.  Event-mark series (single
    times) are written with a constant value column of 1.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def series_file(label: str, series: Series) -> None:
        path = os.path.join(directory, f"{graph.name}__{label}.csv")
        with open(path, "w") as handle:
            handle.write("time,value\n")
            for t, v in series:
                handle.write(f"{t:.6f},{v:.6f}\n")
        written.append(path)

    def marks_file(label: str, times: List[float]) -> None:
        series_file(label, [(t, 1.0) for t in times])

    marks_file("ack_marks", graph.common.ack_marks)
    marks_file("send_marks", graph.common.send_marks)
    marks_file("timer_diamonds", graph.common.timer_diamonds)
    marks_file("timeout_circles", graph.common.timeout_circles)
    marks_file("loss_lines", graph.common.loss_lines)
    series_file("kilobyte_marks", graph.common.kilobyte_marks)
    series_file("threshold_window", graph.windows.threshold_window)
    series_file("send_window", graph.windows.send_window)
    series_file("congestion_window", graph.windows.congestion_window)
    series_file("bytes_in_transit", graph.windows.bytes_in_transit)
    series_file("sending_rate", graph.sending_rate)
    if graph.cam is not None:
        series_file("cam_expected", graph.cam.expected)
        series_file("cam_actual", graph.cam.actual)
        series_file("cam_diff_buffers", graph.cam.diff_buffers)
    return written
