"""Compact trace records.

The paper's trace facility "writes trace data to memory ... and keeps
the amount of data associated with each trace entry small (8 bytes)".
We mirror the spirit: each record is a 4-tuple ``(time, kind, a, b)``
appended to an in-memory list, where ``kind`` is a small integer and
``a``/``b`` are numeric operands whose meaning depends on the kind.

The kinds cover everything needed to regenerate the paper's graphs
(Figures 1–3 and 6–9): segment sends/retransmissions, ACK arrivals,
window variables, the coarse timer's periodic checks (the "diamonds"),
coarse timeouts (the "circles"), and Vegas' once-per-RTT congestion
avoidance decisions (the Figure-8 panel).
"""

from __future__ import annotations

from enum import IntEnum
from typing import NamedTuple


class Kind(IntEnum):
    """Trace record kinds.  Operand meanings are given per kind."""

    SEND = 1            # a = seq, b = length        (segment transmitted)
    RETX = 2            # a = seq, b = length        (segment retransmitted)
    ACK_RX = 3          # a = ack value, b = 0       (new ACK received)
    DUPACK_RX = 4       # a = ack value, b = count   (duplicate ACK)
    CWND = 5            # a = cwnd bytes             (congestion window change)
    SSTHRESH = 6        # a = ssthresh bytes         (threshold window change)
    SND_WND = 7         # a = send window bytes      (min(sndbuf, peer wnd))
    FLIGHT = 8          # a = bytes in transit
    TIMER_CHECK = 9     # coarse timer fired; a = pending rexmt ticks or -1
    COARSE_TIMEOUT = 10  # a = seq retransmitted
    FINE_RETX = 11      # a = seq, b = 1 dup-ack path / 2 post-retx-ack path
    CAM = 12            # a = expected B/s, b = actual B/s (Vegas decision)
    CAM_DECISION = 13   # a = diff in buffers x1000, b = -1 dec / 0 hold / +1 inc
    STATE = 14          # a = connection state enum value
    ESTABLISHED = 15    # a = 0
    APP_WRITE = 16      # a = bytes queued by application
    FIN = 17            # a = seq of FIN
    SS_MODE = 18        # a = 1 entering slow-start, 0 leaving (Vegas/Reno)
    RTT_SAMPLE = 19     # a = fine-grained RTT sample in microseconds
    PROBE = 20          # a = seq, b = persist backoff shift (zero-window probe)


class Record(NamedTuple):
    """A single trace entry."""

    time: float
    kind: int
    a: float
    b: float
