"""Text rendering of trace graphs.

The paper's tools drew PostScript; ours draw text, which is what the
examples print.  A plot is a fixed-size character grid: one or more
``(time, value)`` series drawn with distinct glyphs, plus optional
event marks along the top and bottom edges, mirroring the layout of
the paper's trace graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


class AsciiPlot:
    """A character-grid line plot."""

    def __init__(self, width: int = 78, height: int = 16,
                 t_min: Optional[float] = None, t_max: Optional[float] = None,
                 v_min: float = 0.0, v_max: Optional[float] = None,
                 title: str = "", unit: str = ""):
        self.width = width
        self.height = height
        self.t_min = t_min
        self.t_max = t_max
        self.v_min = v_min
        self.v_max = v_max
        self.title = title
        self.unit = unit
        self._series: List[Tuple[Series, str]] = []
        self._top_marks: List[Tuple[Sequence[float], str]] = []

    def add_series(self, series: Series, glyph: str = "*") -> "AsciiPlot":
        if series:
            self._series.append((series, glyph[0]))
        return self

    def add_top_marks(self, times: Sequence[float], glyph: str = "o") -> "AsciiPlot":
        if times:
            self._top_marks.append((times, glyph[0]))
        return self

    # ------------------------------------------------------------------
    def _bounds(self) -> Tuple[float, float, float, float]:
        all_t = [t for s, _ in self._series for t, _ in s]
        for times, _ in self._top_marks:
            all_t.extend(times)
        all_v = [v for s, _ in self._series for _, v in s]
        t0 = self.t_min if self.t_min is not None else (min(all_t) if all_t else 0.0)
        t1 = self.t_max if self.t_max is not None else (max(all_t) if all_t else 1.0)
        v0 = self.v_min
        v1 = self.v_max if self.v_max is not None else (max(all_v) if all_v else 1.0)
        if t1 <= t0:
            t1 = t0 + 1.0
        if v1 <= v0:
            v1 = v0 + 1.0
        return t0, t1, v0, v1

    def render(self) -> str:
        """Render the plot to a multi-line string."""
        t0, t1, v0, v1 = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def col(t: float) -> int:
            return max(0, min(self.width - 1,
                              int((t - t0) / (t1 - t0) * (self.width - 1))))

        def row(v: float) -> int:
            frac = (v - v0) / (v1 - v0)
            frac = max(0.0, min(1.0, frac))
            return self.height - 1 - int(frac * (self.height - 1))

        for series, glyph in self._series:
            # Step interpolation: carry the value between points so the
            # plot reads like the paper's window graphs.
            filled: Dict[int, float] = {}
            prev_v: Optional[float] = None
            prev_c = 0
            for t, v in series:
                c = col(t)
                if prev_v is not None:
                    for cc in range(prev_c, c):
                        filled.setdefault(cc, prev_v)
                filled[c] = v
                prev_v, prev_c = v, c
            for c, v in filled.items():
                grid[row(v)][c] = glyph

        top = [" "] * self.width
        for times, glyph in self._top_marks:
            for t in times:
                if t0 <= t <= t1:
                    top[col(t)] = glyph

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("".join(top))
        axis_label = f"{v1:,.0f} {self.unit}".rstrip()
        for i, grid_row in enumerate(grid):
            prefix = f"{axis_label:>12} |" if i == 0 else f"{'':>12} |"
            if i == self.height - 1:
                prefix = f"{f'{v0:,.0f}':>12} |"
            lines.append(prefix + "".join(grid_row))
        lines.append(f"{'':>12} +" + "-" * self.width)
        lines.append(f"{'':>14}{t0:<12.2f}"
                     f"{'time (s)':^{max(0, self.width - 24)}}{t1:>10.2f}")
        return "\n".join(lines)


def render_windows_panel(graph, width: int = 78) -> str:
    """Figure-3-style windows panel for a TraceGraph, as text."""
    plot = AsciiPlot(width=width, title=f"{graph.name}: windows (bytes)")
    plot.add_series(graph.windows.congestion_window, "#")
    plot.add_series(graph.windows.bytes_in_transit, ".")
    plot.add_top_marks(graph.common.timeout_circles, "O")
    plot.add_top_marks(graph.common.loss_lines, "|")
    return plot.render()


def render_rate_panel(graph, width: int = 78) -> str:
    """Sending-rate panel (Figure 1 bottom), KB/s, as text."""
    rate_kb = [(t, v / 1024.0) for t, v in graph.sending_rate]
    plot = AsciiPlot(width=width, title=f"{graph.name}: sending rate (KB/s)",
                     unit="KB/s")
    plot.add_series(rate_kb, "*")
    return plot.render()


def render_cam_panel(graph, width: int = 78) -> str:
    """Figure-8-style CAM panel (expected/actual KB/s), as text."""
    if graph.cam is None:
        return f"{graph.name}: no CAM data (not a Vegas trace)"
    expected = [(t, v / 1024.0) for t, v in graph.cam.expected]
    actual = [(t, v / 1024.0) for t, v in graph.cam.actual]
    plot = AsciiPlot(width=width,
                     title=f"{graph.name}: CAM expected(#) vs actual(*) KB/s",
                     unit="KB/s")
    plot.add_series(expected, "#")
    plot.add_series(actual, "*")
    return plot.render()
