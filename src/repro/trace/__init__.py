"""Trace facility: compact records, tracers, series extraction, graphs."""

from repro.trace.graphs import (
    CamPanel,
    CommonElements,
    TraceGraph,
    WindowsPanel,
    build_trace_graph,
)
from repro.trace.records import Kind, Record
from repro.trace.tracer import NULL_TRACER, ConnectionTracer, RouterTracer

__all__ = [
    "Kind",
    "Record",
    "ConnectionTracer",
    "RouterTracer",
    "NULL_TRACER",
    "TraceGraph",
    "CommonElements",
    "WindowsPanel",
    "CamPanel",
    "build_trace_graph",
]
