"""Extraction of the paper's graph data series from trace records.

Figure 2 of the paper keys the common trace-graph elements: ACK-arrival
hash marks, segment-send hash marks, kilobyte progress labels, the
coarse timer's periodic "diamonds", timeout "circles", and vertical
lines at the original send times of segments that were later
retransmitted.  Figure 3 keys the windows panel (threshold window,
send window, congestion window, bytes in transit) and Figure 8 the
Vegas CAM panel (Expected/Actual rates against the α/β thresholds).

Each extractor below turns a :class:`ConnectionTracer`'s trace into
one of those series as ``(time, value)`` tuples.  Extractors read the
tracer's columnar storage via :meth:`ConnectionTracer.rows` /
:meth:`ConnectionTracer.points` rather than the materialized
``records`` list — a trace is extracted from many times per analysis,
and building ``Record`` tuples just to unpack them again dominated
the analysis phase.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.trace.records import Kind
from repro.trace.tracer import ConnectionTracer

Series = List[Tuple[float, float]]


def step_series(tracer: ConnectionTracer, kind: Kind) -> Series:
    """(time, value-a) points for every record of *kind*, in order."""
    return tracer.points(kind)


def send_marks(tracer: ConnectionTracer) -> List[float]:
    """Times of every segment transmission (Figure 2, element 2)."""
    want = (int(Kind.SEND), int(Kind.RETX))
    return [t for t, k, _, _ in tracer.rows() if k in want]


def ack_marks(tracer: ConnectionTracer) -> List[float]:
    """Times of every new-ACK arrival (Figure 2, element 1)."""
    return [t for t, _ in tracer.points(Kind.ACK_RX)]


def timer_diamonds(tracer: ConnectionTracer) -> List[float]:
    """Coarse-timer check times (Figure 2, element 4)."""
    return [t for t, _ in tracer.points(Kind.TIMER_CHECK)]


def timeout_circles(tracer: ConnectionTracer) -> List[float]:
    """Coarse-timeout times (Figure 2, element 5)."""
    return [t for t, _ in tracer.points(Kind.COARSE_TIMEOUT)]


def loss_lines(tracer: ConnectionTracer) -> List[float]:
    """Original-send times of segments later retransmitted (element 6).

    "Solid vertical lines ... indicate when a segment that is
    eventually retransmitted was originally sent, presumably because
    it was lost."  We find, for every RETX record, the most recent
    earlier SEND/RETX record covering the same starting sequence.
    """
    send_kind = int(Kind.SEND)
    retx_kind = int(Kind.RETX)
    last_sent_at = {}
    lines: List[float] = []
    for t, k, a, _ in tracer.rows():
        if k == send_kind:
            last_sent_at[a] = t
        elif k == retx_kind:
            original = last_sent_at.get(a)
            if original is not None:
                lines.append(original)
            last_sent_at[a] = t
    return lines


def kilobyte_marks(tracer: ConnectionTracer, every_kb: int = 100) -> Series:
    """(time, kb) when each multiple of *every_kb* new kilobytes was sent
    (Figure 2, element 3)."""
    sent = 0
    next_mark = every_kb * 1024
    marks: Series = []
    for t, b in tracer.points(Kind.SEND, field="b"):
        sent += b
        while sent >= next_mark:
            marks.append((t, next_mark / 1024))
            next_mark += every_kb * 1024
    return marks


def sending_rate_series(tracer: ConnectionTracer,
                        window_segments: int = 12) -> Series:
    """Average sending rate "calculated from the last 12 segments"
    (Figure 1, bottom graph), in bytes/second."""
    want = (int(Kind.SEND), int(Kind.RETX))
    sends = [(t, b) for t, k, _, b in tracer.rows() if k in want and b > 0]
    series: Series = []
    for i in range(window_segments, len(sends)):
        t0 = sends[i - window_segments][0]
        t1 = sends[i][0]
        nbytes = sum(b for _, b in sends[i - window_segments + 1:i + 1])
        if t1 > t0:
            series.append((t1, nbytes / (t1 - t0)))
    return series


def cam_series(tracer: ConnectionTracer) -> Tuple[Series, Series]:
    """(expected, actual) rate series from Vegas CAM decisions
    (Figure 8, elements 2 and 3), in bytes/second."""
    cam_kind = int(Kind.CAM)
    expected: Series = []
    actual: Series = []
    for t, k, a, b in tracer.rows():
        if k == cam_kind:
            expected.append((t, a))
            actual.append((t, b))
    return expected, actual


def cam_diff_series(tracer: ConnectionTracer) -> Series:
    """Diff in router buffers at each CAM decision."""
    return [(t, a / 1000.0) for t, a in tracer.points(Kind.CAM_DECISION)]


def rtt_series(tracer: ConnectionTracer) -> Series:
    """(time, rtt seconds) for every fine-grained sample the sender took.

    The latency story in one series: Reno's samples climb to the full
    queueing delay before each loss; Vegas' stay near BaseRTT plus its
    α..β segments.
    """
    return [(t, a / 1e6) for t, a in tracer.points(Kind.RTT_SAMPLE)]


def value_at(series: Series, time: float) -> Optional[float]:
    """Value of a step series at *time* (last point at or before it)."""
    best = None
    for t, v in series:
        if t <= time:
            best = v
        else:
            break
    return best


def sawtooth_count(series: Series, drop_fraction: float = 0.3) -> int:
    """Count significant drops in a window series (Reno's sawtooth).

    A drop is counted whenever a point falls below ``(1 -
    drop_fraction)`` of the running maximum since the previous drop;
    used by the Figure-6 benchmark to verify Reno's periodic
    self-induced losses.
    """
    count = 0
    peak = 0.0
    for _, v in series:
        if v > peak:
            peak = v
        elif peak > 0 and v < peak * (1.0 - drop_fraction):
            count += 1
            peak = v
    return count


def steady_state_stats(series: Series, t_start: float,
                       t_end: Optional[float] = None) -> Tuple[float, float]:
    """(mean, max-min spread) of a series restricted to [t_start, t_end]."""
    points = [v for t, v in series
              if t >= t_start and (t_end is None or t <= t_end)]
    if not points:
        return 0.0, 0.0
    mean = sum(points) / len(points)
    return mean, max(points) - min(points)
