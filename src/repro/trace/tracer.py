"""Connection and router tracers.

A :class:`ConnectionTracer` is attached to a TCP endpoint and collects
:class:`~repro.trace.records.Record` entries; analysis code in
:mod:`repro.trace.series` turns them into the time series the paper
plots.  A :class:`RouterTracer` watches a bottleneck queue, recording
occupancy changes and drops exactly as the paper's simulator "saves
the size of the queues as a function of time, and the time and size of
segments that are dropped".

Tracing is off by default in experiments that only need aggregate
statistics; the overhead of a disabled tracer is a single attribute
test.

Storage is columnar: four parallel scalar arrays instead of one
``Record`` object per entry (the paper kept "the amount of data
associated with each trace entry small (8 bytes)" for the same
reason).  Appending four floats costs a fraction of allocating a
tuple subclass, and a million-record trace holds plain floats instead
of a million 80-byte ``Record`` objects.  The ``Record`` API is
preserved by lazy materialization: :attr:`records` and
:meth:`of_kind` build ``Record`` tuples on demand (cached until the
next write).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.queue import DropTailQueue
from repro.trace.records import Kind, Record


class ConnectionTracer:
    """Collects trace records for one TCP connection."""

    __slots__ = ("name", "enabled", "_times", "_kinds", "_a", "_b",
                 "_materialized")

    def __init__(self, name: str = "conn", enabled: bool = True):
        self.name = name
        self.enabled = enabled
        self._times: List[float] = []
        self._kinds: List[int] = []
        self._a: List[float] = []
        self._b: List[float] = []
        self._materialized: Optional[List[Record]] = None

    def record(self, time: float, kind: Kind, a: float = 0.0, b: float = 0.0) -> None:
        # *kind* is stored as-is: Kind is an IntEnum, so members hash
        # and compare equal to the plain ints the readers filter with —
        # no int() conversion needed on this per-record path.
        if self.enabled:
            self._times.append(time)
            self._kinds.append(kind)
            self._a.append(a)
            self._b.append(b)
            self._materialized = None

    @property
    def records(self) -> List[Record]:
        """All records as :class:`Record` tuples (lazily materialized)."""
        if self._materialized is None:
            self._materialized = [
                Record(t, k, a, b)
                for t, k, a, b in zip(self._times, self._kinds,
                                      self._a, self._b)
            ]
        return self._materialized

    def of_kind(self, kind: Kind) -> List[Record]:
        """All records of the given kind, in time order."""
        want = int(kind)
        times, a, b = self._times, self._a, self._b
        return [Record(times[i], want, a[i], b[i])
                for i, k in enumerate(self._kinds) if k == want]

    def rows(self):
        """Iterate ``(time, kind, a, b)`` tuples in time order.

        The zero-copy spelling of :attr:`records` for analysis loops:
        plain tuples straight off the columns, no ``Record``
        materialization.
        """
        return zip(self._times, self._kinds, self._a, self._b)

    def points(self, kind: Kind, field: str = "a") -> List[Tuple[float, float]]:
        """``(time, value)`` pairs for every record of *kind*.

        *field* selects the value column (``"a"`` or ``"b"``).  This is
        the common series-extraction shape, served directly from the
        columns.
        """
        want = int(kind)
        times = self._times
        vals = self._a if field == "a" else self._b
        return [(times[i], vals[i])
                for i, k in enumerate(self._kinds) if k == want]

    def count(self, kind: Kind) -> int:
        return self._kinds.count(int(kind))

    def clear(self) -> None:
        self._times.clear()
        self._kinds.clear()
        self._a.clear()
        self._b.clear()
        self._materialized = None

    def __len__(self) -> int:
        return len(self._times)


#: Shared disabled tracer used when a connection is created without one.
NULL_TRACER = ConnectionTracer("null", enabled=False)


class RouterTracer:
    """Records queue occupancy and drops at a router's egress queue."""

    def __init__(self, queue: DropTailQueue, name: str = "router"):
        self.name = name
        self.queue = queue
        self.depth_series: List[Tuple[float, int]] = []
        self.drop_series: List[Tuple[float, int]] = []
        queue.monitor = self._on_queue_event

    def _on_queue_event(self, time: float, event: str, packet, depth: int) -> None:
        if event == "drop":
            self.drop_series.append((time, packet.size))
        else:
            self.depth_series.append((time, depth))

    @property
    def drops(self) -> int:
        return len(self.drop_series)

    def max_depth(self) -> int:
        if not self.depth_series:
            return 0
        return max(depth for _, depth in self.depth_series)

    def mean_depth(self, t_start: float = 0.0,
                   t_end: Optional[float] = None) -> float:
        """Time-weighted mean queue depth over ``[t_start, t_end]``."""
        points = [(t, d) for t, d in self.depth_series if t >= t_start]
        if not points:
            return 0.0
        if t_end is None:
            t_end = points[-1][0]
        total = 0.0
        for (t0, d0), (t1, _) in zip(points, points[1:]):
            if t0 >= t_end:
                break
            total += d0 * (min(t1, t_end) - t0)
        # The last recorded depth persists until t_end.
        last_t, last_d = points[-1]
        if last_t < t_end:
            total += last_d * (t_end - last_t)
        span = t_end - points[0][0]
        return total / span if span > 0 else float(points[-1][1])
