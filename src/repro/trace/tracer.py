"""Connection and router tracers.

A :class:`ConnectionTracer` is attached to a TCP endpoint and collects
:class:`~repro.trace.records.Record` entries; analysis code in
:mod:`repro.trace.series` turns them into the time series the paper
plots.  A :class:`RouterTracer` watches a bottleneck queue, recording
occupancy changes and drops exactly as the paper's simulator "saves
the size of the queues as a function of time, and the time and size of
segments that are dropped".

Tracing is off by default in experiments that only need aggregate
statistics; the overhead of a disabled tracer is a single attribute
test.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.queue import DropTailQueue
from repro.trace.records import Kind, Record


class ConnectionTracer:
    """Collects trace records for one TCP connection."""

    def __init__(self, name: str = "conn", enabled: bool = True):
        self.name = name
        self.enabled = enabled
        self.records: List[Record] = []

    def record(self, time: float, kind: Kind, a: float = 0.0, b: float = 0.0) -> None:
        if self.enabled:
            self.records.append(Record(time, int(kind), a, b))

    def of_kind(self, kind: Kind) -> List[Record]:
        """All records of the given kind, in time order."""
        want = int(kind)
        return [r for r in self.records if r.kind == want]

    def count(self, kind: Kind) -> int:
        want = int(kind)
        return sum(1 for r in self.records if r.kind == want)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


#: Shared disabled tracer used when a connection is created without one.
NULL_TRACER = ConnectionTracer("null", enabled=False)


class RouterTracer:
    """Records queue occupancy and drops at a router's egress queue."""

    def __init__(self, queue: DropTailQueue, name: str = "router"):
        self.name = name
        self.queue = queue
        self.depth_series: List[Tuple[float, int]] = []
        self.drop_series: List[Tuple[float, int]] = []
        queue.monitor = self._on_queue_event

    def _on_queue_event(self, time: float, event: str, packet, depth: int) -> None:
        if event == "drop":
            self.drop_series.append((time, packet.size))
        else:
            self.depth_series.append((time, depth))

    @property
    def drops(self) -> int:
        return len(self.drop_series)

    def max_depth(self) -> int:
        if not self.depth_series:
            return 0
        return max(depth for _, depth in self.depth_series)

    def mean_depth(self, t_start: float = 0.0,
                   t_end: Optional[float] = None) -> float:
        """Time-weighted mean queue depth over ``[t_start, t_end]``."""
        points = [(t, d) for t, d in self.depth_series if t >= t_start]
        if not points:
            return 0.0
        if t_end is None:
            t_end = points[-1][0]
        total = 0.0
        for (t0, d0), (t1, _) in zip(points, points[1:]):
            if t0 >= t_end:
                break
            total += d0 * (min(t1, t_end) - t0)
        # The last recorded depth persists until t_end.
        last_t, last_d = points[-1]
        if last_t < t_end:
            total += last_d * (t_end - last_t)
        span = t_end - points[0][0]
        return total / span if span > 0 else float(points[-1][1])
