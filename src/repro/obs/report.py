"""Render a Markdown run report from a sweep artifact + telemetry.

::

    python -m repro report results.json --telemetry run.jsonl --top 5

The report is the human-readable face of a ``run-all`` sweep: per-cell
timings by experiment, cache-hit ratio, the failure taxonomy from the
quarantine manifest, the top-N slowest cells, and the paper's headline
comparison (Vegas vs Reno throughput/retransmissions) pulled from the
cell metrics.  When a telemetry JSONL (``--telemetry``, written by
``run-all --telemetry``) is given, the report adds event counts, span
durations for the harness phases, and a gauge digest (samples, peak
queue depths, drops).

Exit codes: 0 = rendered, 2 = unreadable or schema-invalid input —
which is what the CI smoke step gates on.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence[Any]]) -> List[str]:
    """Render a GitHub-style Markdown table (lines, no trailing \n).

    Shared by the run report and the arena league tables
    (:mod:`repro.arena.league`).
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row]
                                           for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    def fmt(row):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
    lines = [fmt(cells[0]),
             "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    lines.extend(fmt(row) for row in cells[1:])
    return lines


def _proto_of(params: Dict[str, Any]) -> Optional[str]:
    """The congestion-control family of a cell, if it names one."""
    value = params.get("proto") or params.get("cc")
    if not isinstance(value, str):
        return None
    if value.startswith("reno"):
        return "reno"
    if value.startswith("vegas"):
        return "vegas"
    return None


def _headline(cells: List[Dict[str, Any]]) -> List[str]:
    """Vegas-vs-Reno comparison per experiment, from cell metrics."""
    by_exp: Dict[str, Dict[str, Dict[str, List[float]]]] = \
        defaultdict(lambda: {"reno": defaultdict(list),
                             "vegas": defaultdict(list)})
    for cell in cells:
        family = _proto_of(cell.get("params", {}))
        if family is None:
            continue
        buckets = by_exp[cell["experiment"]][family]
        for metric in ("throughput_kbps", "retransmit_kb",
                       "mean_response_s"):
            if metric in cell.get("metrics", {}):
                buckets[metric].append(cell["metrics"][metric])
    rows = []
    for exp in sorted(by_exp):
        reno, vegas = by_exp[exp]["reno"], by_exp[exp]["vegas"]
        for metric in ("throughput_kbps", "retransmit_kb",
                       "mean_response_s"):
            if not reno.get(metric) or not vegas.get(metric):
                continue
            r, v = _mean(reno[metric]), _mean(vegas[metric])
            # A zero reference has no meaningful ratio; ``float("inf")``
            # would also serialise as non-compliant ``Infinity`` when the
            # rows land in JSON artifacts, so emit None and render "n/a".
            ratio = v / r if r else None
            rows.append([exp, metric, f"{r:.1f}", f"{v:.1f}",
                         f"{ratio:.2f}x" if ratio is not None else "n/a"])
    if not rows:
        return ["(no cells carry a reno/vegas protocol parameter)"]
    return markdown_table(["experiment", "metric", "reno mean", "vegas mean",
                   "vegas/reno"], rows)


def _dist_section(doc: Dict[str, Any],
                  events: Optional[List[Dict[str, Any]]]) -> List[str]:
    """Per-worker and lease/retry/heartbeat counters of a dist run.

    Provenance comes from the artifact's v3 fields (``worker``,
    ``attempts`` per cell); lease-table counters come from the
    ``dist.*`` telemetry events when a JSONL was recorded.
    """
    cells = doc["cells"]
    lines: List[str] = []
    by_worker: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for cell in cells:
        if cell.get("worker"):
            by_worker[cell["worker"]].append(cell)
    if by_worker:
        rows = []
        for worker in sorted(by_worker):
            executed = by_worker[worker]
            walls = [c.get("wall_clock_s", 0.0) for c in executed]
            retried = sum(1 for c in executed if c.get("attempts", 1) > 1)
            rows.append([worker, len(executed), retried,
                         f"{sum(walls):.2f}", f"{max(walls):.2f}"])
        lines.append("### Per-worker cells")
        lines.append("")
        lines.extend(markdown_table(
            ["worker", "cells", "retried", "total s", "max s"], rows))
    if events is not None:
        counters = {
            "workers joined": "dist.worker.join",
            "workers lost": "dist.worker.lost",
            "workers respawned": "dist.worker.respawn",
            "leases granted": "dist.lease.grant",
            "leases expired": "dist.lease.expire",
            "stale results dropped": "dist.stale",
            "attempts retried": "dist.retry",
            "cells quarantined": "dist.quarantine",
            "degraded to local pool": "dist.degrade",
        }
        counts: Dict[str, int] = defaultdict(int)
        for event in events:
            counts[event["event"]] += 1
        rows = [[label, counts[name]] for label, name in counters.items()
                if counts[name]]
        if rows:
            if lines:
                lines.append("")
            lines.append("### Lease / heartbeat counters")
            lines.append("")
            lines.extend(markdown_table(["counter", "count"], rows))
        lost = [e for e in events if e["event"] == "dist.worker.lost"]
        if lost:
            reasons: Dict[str, int] = defaultdict(int)
            for event in lost:
                reasons[event.get("reason", "?")] += 1
            lines.append("")
            for reason in sorted(reasons):
                lines.append(f"- worker loss `{reason}`: {reasons[reason]}")
    if not lines:
        lines.append("(no per-worker provenance recorded)")
    return lines


def _telemetry_section(events: List[Dict[str, Any]]) -> List[str]:
    lines: List[str] = []
    counts: Dict[str, int] = defaultdict(int)
    for event in events:
        counts[event["event"]] += 1
    lines.append("### Event counts")
    lines.append("")
    lines.extend(markdown_table(["event", "count"],
                        [[name, counts[name]] for name in sorted(counts)]))
    spans = [e for e in events
             if e["event"].endswith(".end") and "duration_s" in e]
    if spans:
        by_name: Dict[str, List[float]] = defaultdict(list)
        for span in spans:
            by_name[span["event"][:-len(".end")]].append(span["duration_s"])
        lines.append("")
        lines.append("### Span durations")
        lines.append("")
        lines.extend(markdown_table(
            ["span", "count", "total s", "mean s", "max s"],
            [[name, len(d), f"{sum(d):.3f}", f"{_mean(d):.3f}",
              f"{max(d):.3f}"] for name, d in sorted(by_name.items())]))
    gauges = [e for e in events if e["event"] == "gauge"]
    if gauges:
        depth_peak: Dict[str, int] = defaultdict(int)
        drops_last: Dict[str, int] = {}
        rates = [g["events_per_sec"] for g in gauges
                 if g.get("events_per_sec")]
        for gauge in gauges:
            for queue in gauge.get("queues", ()):
                depth_peak[queue["name"]] = max(depth_peak[queue["name"]],
                                                queue.get("max_depth",
                                                          queue["depth"]))
                drops_last[queue["name"]] = queue.get("drops", 0)
        lines.append("")
        lines.append("### Gauges")
        lines.append("")
        median_rate = (f", median engine rate "
                       f"~{sorted(rates)[len(rates) // 2]:,.0f} events/s"
                       if rates else "")
        lines.append(f"- {len(gauges)} samples{median_rate}")
        for name in sorted(depth_peak):
            lines.append(f"- queue `{name}`: peak depth {depth_peak[name]}, "
                         f"{drops_last[name]} drops")
    return lines


def render_report(doc: Dict[str, Any],
                  events: Optional[List[Dict[str, Any]]] = None,
                  top: int = 10) -> str:
    """Render the Markdown report for one sweep artifact."""
    run = doc.get("run", {})
    cells = doc["cells"]
    failures = doc.get("failures", []) or []
    hits = run.get("cache_hits", 0)
    misses = run.get("cache_misses", 0)
    total_lookups = hits + misses
    hit_ratio = hits / total_lookups if total_lookups else 0.0

    lines = ["# repro run report", ""]
    lines.append(f"- mode: **{doc.get('mode', '?')}**, "
                 f"schema {doc.get('schema_version', '?')}")
    lines.append(f"- cells: **{len(cells)}** ok, **{len(failures)}** "
                 f"quarantined, jobs={run.get('jobs', '?')}")
    lines.append(f"- elapsed: {run.get('elapsed_s', 0.0):.1f}s wall "
                 f"(cell wall clock "
                 f"{run.get('cell_wall_clock_s', 0.0):.1f}s)")
    lines.append(f"- cache: {hits} hits / {misses} misses "
                 f"({hit_ratio:.0%} hit ratio)")
    if run.get("backend", "local") != "local":
        lines.append(f"- backend: **{run['backend']}**"
                     + (" — **interrupted (partial)**"
                        if run.get("interrupted") else ""))
    if doc.get("src_hash"):
        lines.append(f"- src hash: `{doc['src_hash'][:16]}`")

    lines.append("")
    lines.append("## Per-experiment timings")
    lines.append("")
    by_exp: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for cell in cells:
        by_exp[cell["experiment"]].append(cell)
    rows = []
    for exp in sorted(by_exp):
        walls = [c.get("wall_clock_s", 0.0) for c in by_exp[exp]]
        cached = sum(1 for c in by_exp[exp] if c.get("cached"))
        rows.append([exp, len(walls), cached, f"{sum(walls):.2f}",
                     f"{_mean(walls):.2f}", f"{max(walls):.2f}"])
    lines.extend(markdown_table(["experiment", "cells", "cached", "total s",
                         "mean s", "max s"], rows))

    slowest = sorted((c for c in cells if not c.get("cached")),
                     key=lambda c: c.get("wall_clock_s", 0.0),
                     reverse=True)[:top]
    if slowest:
        lines.append("")
        lines.append(f"## Top {len(slowest)} slowest cells")
        lines.append("")
        lines.extend(markdown_table(
            ["cell", "wall s", "events"],
            [[c["key"], f"{c.get('wall_clock_s', 0.0):.2f}",
              f"{int(c.get('metrics', {}).get('events_processed', 0)):,}"]
             for c in slowest]))

    lines.append("")
    lines.append("## Failures")
    lines.append("")
    if failures:
        taxonomy: Dict[str, int] = defaultdict(int)
        for failure in failures:
            taxonomy[failure.get("kind", "?")] += 1
        lines.append(", ".join(f"{kind}: {taxonomy[kind]}"
                               for kind in sorted(taxonomy)))
        lines.append("")
        lines.extend(markdown_table(
            ["cell", "kind", "attempts", "message"],
            [[f.get("key", "?"), f.get("kind", "?"),
              f.get("attempts", "?"),
              str(f.get("message", ""))[:60]] for f in failures]))
    else:
        lines.append("none — every cell completed.")

    dist_run = (run.get("backend") == "dist"
                or any(e["event"].startswith("dist.")
                       for e in events or ()))
    if dist_run:
        lines.append("")
        lines.append("## Distributed backend")
        lines.append("")
        if run.get("interrupted"):
            lines.append("**Run was interrupted (drained); cells below "
                         "are the settled subset.**")
            lines.append("")
        lines.extend(_dist_section(doc, events))

    lines.append("")
    lines.append("## Vegas vs Reno")
    lines.append("")
    lines.extend(_headline(cells))

    if events is not None:
        lines.append("")
        lines.append("## Telemetry")
        lines.append("")
        lines.extend(_telemetry_section(events))

    lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.harness.artifacts import load_document
    from repro.obs.events import load_events

    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render a Markdown run report from a run-all artifact "
                    "(and, optionally, its telemetry JSONL).")
    parser.add_argument("results", help="artifact from run-all --json")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="telemetry JSONL from run-all --telemetry")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest cells to list (default 10)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the report here instead of stdout")
    args = parser.parse_args(argv)

    try:
        doc = load_document(args.results)
        events = load_events(args.telemetry) if args.telemetry else None
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = render_report(doc, events=events, top=args.top)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(report)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc}", file=sys.stderr)
            return 2
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
