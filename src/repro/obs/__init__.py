"""Run-scoped telemetry: JSONL event log, engine gauges, run reports.

Three pieces, one file format:

* :mod:`repro.obs.events` — :class:`TelemetrySink`, the append-only
  JSONL writer the harness uses to record phase spans (cell start /
  finish, cache hits, retries, quarantine);
* :mod:`repro.obs.gauges` — :class:`GaugeSampler`, opt-in periodic
  engine gauges (cwnd/flight/mode per connection, depth/drops per
  queue, events/sec) that piggyback on the run loop without touching
  ``events_processed``;
* :mod:`repro.obs.report` — ``python -m repro report``, rendering a
  Markdown run report from a sweep artifact plus its telemetry.

Activation follows the checker/watchdog pattern via
:mod:`repro.obs.runtime`: zero cost when off, construction-time
registration when armed.
"""

from repro.obs.events import TELEMETRY_SCHEMA, TelemetrySink, load_events
from repro.obs.gauges import DEFAULT_SAMPLE_EVERY, GaugeSampler
from repro.obs.report import render_report
from repro.obs.runtime import activate, active, deactivate, observing

__all__ = [
    "TELEMETRY_SCHEMA",
    "TelemetrySink",
    "load_events",
    "DEFAULT_SAMPLE_EVERY",
    "GaugeSampler",
    "render_report",
    "activate",
    "active",
    "deactivate",
    "observing",
]
