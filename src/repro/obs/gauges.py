"""Opt-in periodic gauges, piggybacked on the engine loop.

A :class:`GaugeSampler` mirrors the liveness watchdog's wiring
(:mod:`repro.sim.watchdog`): activated process-wide through
:mod:`repro.obs.runtime`, components register with it at construction
time, and its hooks ride the engine's dispatch loop.  The sampler
only *reads* state and writes telemetry lines — it never schedules an
event — so ``events_processed`` is bit-identical with gauges armed
(asserted in ``tests/test_obs.py``).

Every ``sample_every`` engine events it emits one ``gauge`` event
carrying:

* the engine's clock and lifetime event count, plus wall-clock
  events/sec over the sampling window;
* per registered connection: flow id, cwnd, ssthresh, flight size and
  the congestion controller's mode (for Vegas, slow-start vs linear);
* per registered queue: name, depth and cumulative drops.

A final sample is taken when ``run()`` returns, so short runs always
produce at least one gauge record.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional

#: Engine events between gauge samples.  Purely a volume knob: the
#: hooks read state and schedule nothing at any setting.
DEFAULT_SAMPLE_EVERY = 2048


class GaugeSampler:
    """Periodic state sampler writing ``gauge`` telemetry events.

    Args:
        sink: the :class:`~repro.obs.events.TelemetrySink` to write to.
        sample_every: engine events between samples.
        cell: optional cell key stamped on every gauge record so a
            sweep's telemetry attributes samples to their cell.
    """

    def __init__(self, sink, sample_every: int = DEFAULT_SAMPLE_EVERY,
                 cell: Optional[str] = None):
        self.sink = sink
        self.sample_every = max(1, int(sample_every))
        self.cell = cell
        self._connections: List[Any] = []
        self._queues: List[Any] = []
        self._tick = 0
        self.samples_taken = 0
        self._last_wall = time.perf_counter()
        self._last_events = 0

    # ------------------------------------------------------------------
    # Registration (construction-time, like the checker and watchdog)
    # ------------------------------------------------------------------
    def register_simulator(self, sim) -> None:
        """A fresh simulator starts a fresh gauge episode."""
        self._connections = []
        self._queues = []
        self._tick = 0
        self._last_wall = time.perf_counter()
        self._last_events = 0

    def register_connection(self, conn) -> None:
        self._connections.append(conn)

    def register_queue(self, queue) -> None:
        self._queues.append(queue)

    # ------------------------------------------------------------------
    # Engine hooks (piggybacked on the run loop; never scheduled)
    # ------------------------------------------------------------------
    def on_event(self, sim) -> None:
        self._tick += 1
        if self._tick % self.sample_every:
            return
        self._sample(sim, final=False)

    def on_run_end(self, sim) -> None:
        self._sample(sim, final=True)

    # ------------------------------------------------------------------
    def _sample(self, sim, final: bool) -> None:
        now_wall = time.perf_counter()
        events = sim.events_processed
        window = now_wall - self._last_wall
        rate = (events - self._last_events) / window if window > 0 else 0.0
        self._last_wall = now_wall
        self._last_events = events
        connections = [{
            "flow": str(conn.flow),
            "cwnd": conn.cc.cwnd,
            "ssthresh": conn.cc.ssthresh,
            "flight": conn.flight_size(),
            "mode": getattr(conn.cc, "mode", conn.cc.name),
        } for conn in self._connections]
        queues = [{
            "name": queue.name,
            "depth": len(queue),
            "drops": queue.dropped,
            "max_depth": queue.max_depth,
        } for queue in self._queues]
        record = {
            "sim_time": round(sim.now, 6),
            "events_processed": events,
            "events_per_sec": round(rate, 1),
            "final": final,
            "connections": connections,
            "queues": queues,
        }
        if self.cell is not None:
            record["cell"] = self.cell
        self.sink.emit("gauge", **record)
        self.samples_taken += 1
