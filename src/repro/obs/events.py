"""Structured JSONL telemetry events.

A :class:`TelemetrySink` is a run-scoped, append-only event log: one
JSON object per line, written with a single ``write`` call per event
so concurrently-appending worker processes (the harness runs cells
under ``fork``) interleave whole lines rather than corrupting each
other.  The schema is deliberately minimal and open:

``{"ts": <unix seconds>, "event": <dotted name>, ...payload}``

Harness phases are recorded as *spans* — paired ``<name>.start`` /
``<name>.end`` events sharing a ``span_id``, the ``.end`` carrying
``duration_s`` — so a report can reconstruct phase timings without a
stateful reader.

The sink never raises into the instrumented code path: telemetry is
observability, and a full disk must not change a run's outcome.  Write
failures flip the sink into a disabled state after recording the
error on ``last_error``.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Optional

#: Schema identifier stamped on the first event a sink writes.
TELEMETRY_SCHEMA = "repro-telemetry/v1"


class TelemetrySink:
    """Append-only JSONL event writer for one run.

    Args:
        path: file to append to (created if missing).
        run_id: optional identifier stamped on every event; defaults
            to the writing process id, which distinguishes harness
            workers from the coordinating parent.
        clock: unix-time source (injectable for tests).
    """

    def __init__(self, path: str, run_id: Optional[str] = None,
                 clock=time.time):
        self.path = path
        self.run_id = run_id if run_id is not None else f"pid-{os.getpid()}"
        self._clock = clock
        self._span_ids = itertools.count(1)
        self.events_written = 0
        self.last_error: Optional[str] = None
        try:
            # Line buffered: each event reaches the file as one write.
            self._file = open(path, "a", buffering=1)
        except OSError as exc:
            self._file = None
            self.last_error = str(exc)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._file is not None

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line; never raises."""
        if self._file is None:
            return
        record: Dict[str, Any] = {"ts": self._clock(), "event": event,
                                  "run_id": self.run_id}
        if self.events_written == 0:
            record["schema"] = TELEMETRY_SCHEMA
        record.update(fields)
        try:
            self._file.write(
                json.dumps(record, sort_keys=True, default=str) + "\n")
            self.events_written += 1
        except (OSError, ValueError) as exc:
            self.last_error = str(exc)
            self.close()

    @contextmanager
    def span(self, name: str, **fields: Any):
        """Emit ``<name>.start`` now and ``<name>.end`` on exit.

        The ``.end`` event carries ``duration_s`` (wall clock) and
        ``ok`` (False when the block raised); both events share a
        ``span_id`` unique within this sink.
        """
        span_id = f"{self.run_id}:{next(self._span_ids)}"
        started = time.perf_counter()
        self.emit(f"{name}.start", span_id=span_id, **fields)
        ok = True
        try:
            yield span_id
        except BaseException:
            ok = False
            raise
        finally:
            self.emit(f"{name}.end", span_id=span_id, ok=ok,
                      duration_s=round(time.perf_counter() - started, 6),
                      **fields)

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError as exc:  # pragma: no cover - close rarely fails
                self.last_error = str(exc)
            self._file = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.enabled else "closed"
        return f"TelemetrySink({self.path!r}, {state}, {self.events_written} events)"


def load_events(path: str):
    """Parse a telemetry JSONL file into a list of event dicts.

    Raises :class:`~repro.errors.ReproError` on unreadable files or
    malformed lines — the report CLI turns that into a non-zero exit,
    which is what the CI smoke step gates on.
    """
    from repro.errors import ReproError

    events = []
    try:
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ReproError(
                        f"{path}:{lineno}: malformed telemetry line: {exc}"
                    ) from exc
                if not isinstance(record, dict) or "event" not in record:
                    raise ReproError(
                        f"{path}:{lineno}: telemetry record has no 'event' field")
                events.append(record)
    except OSError as exc:
        raise ReproError(f"cannot read telemetry file {path!r}: {exc}") from exc
    return events
