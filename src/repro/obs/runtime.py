"""Process-wide activation of the telemetry gauge sampler.

Mirrors :mod:`repro.checks.runtime` and :mod:`repro.sim.watchdog`:
while a sampler is active, every newly built
:class:`~repro.sim.engine.Simulator`, :class:`TCPConnection` and
:class:`~repro.net.queue.DropTailQueue` registers itself at
*construction* time, so the engine's dispatch loop and the component
hot paths pay a single ``is not None`` test when telemetry is off.

This module deliberately imports nothing from the rest of the package
(beyond the standard library) so that ``sim.engine``, ``net.queue``
and ``tcp.connection`` can consult it without creating import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

_active = None


def active():
    """The currently active gauge sampler, or ``None``."""
    return _active


def activate(sampler) -> None:
    """Install *sampler* as the process-wide active sampler."""
    global _active
    if _active is not None:
        raise RuntimeError("a telemetry sampler is already active")
    _active = sampler


def deactivate() -> None:
    """Remove the active sampler (idempotent)."""
    global _active
    _active = None


@contextmanager
def observing(sampler: Optional[object] = None, path: Optional[str] = None,
              **kwargs):
    """Context manager: run a block with an active gauge sampler.

    ::

        with observing(path="run.jsonl") as sampler:
            run_experiment()      # simulators/connections self-register

    A fresh :class:`~repro.obs.gauges.GaugeSampler` writing to *path*
    is built unless one is passed in.  The sink is closed on exit only
    when this function built it.
    """
    own_sink = None
    if sampler is None:
        from repro.obs.events import TelemetrySink
        from repro.obs.gauges import GaugeSampler

        if path is None:
            raise ValueError("observing() needs a sampler or a path")
        own_sink = TelemetrySink(path)
        sampler = GaugeSampler(own_sink, **kwargs)
    activate(sampler)
    try:
        yield sampler
    finally:
        deactivate()
        if own_sink is not None:
            own_sink.close()
