"""Fairness metrics.

The paper's §4.3 multiple-connection experiments judge fairness with
Jain's fairness index (R. Jain, "The Art of Computer Systems
Performance Analysis", 1991):

    f(x_1..x_n) = (sum x_i)^2 / (n * sum x_i^2)

The index is 1.0 for perfectly equal allocations and approaches 1/n
when a single connection takes everything.
"""

from __future__ import annotations

from typing import Sequence


def jain_fairness_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index over the given per-flow allocations.

    Raises ValueError for an empty sequence or negative allocations.
    Returns 1.0 for the degenerate all-zero allocation (nobody is
    being treated unfairly when nobody gets anything).
    """
    if not allocations:
        raise ValueError("fairness index needs at least one allocation")
    if any(x < 0 for x in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    if total == 0:
        return 1.0
    squares = sum(x * x for x in allocations)
    if squares == 0:
        # Denormal allocations can underflow x*x to zero even though
        # the sum is positive; such allocations are effectively equal.
        return 1.0
    return (total * total) / (len(allocations) * squares)


def worst_to_best_ratio(allocations: Sequence[float]) -> float:
    """min/max throughput ratio: a blunter fairness indicator."""
    if not allocations:
        raise ValueError("ratio needs at least one allocation")
    best = max(allocations)
    if best == 0:
        return 1.0
    return min(allocations) / best
