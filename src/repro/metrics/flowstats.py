"""Per-connection statistics.

Every TCP connection owns a :class:`FlowStats` that the endpoint
updates as it runs.  These are the quantities the paper's tables
report: throughput in KB/s, kilobytes retransmitted, and the number of
coarse-grained timeouts, plus supporting detail (segment counts, RTT
sample extremes) used by the analysis modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.units import bytes_to_kb, rate_kbps


@dataclass
class FlowStats:
    """Mutable statistics for one TCP connection (sender perspective)."""

    # Lifecycle timestamps (simulated seconds; None until they happen).
    open_time: Optional[float] = None
    established_time: Optional[float] = None
    first_send_time: Optional[float] = None
    last_ack_time: Optional[float] = None
    close_time: Optional[float] = None

    # Application data accounting.
    app_bytes_queued: int = 0
    app_bytes_acked: int = 0

    # Wire accounting (payload bytes; headers excluded).
    bytes_sent_total: int = 0
    segments_sent: int = 0
    retransmitted_bytes: int = 0
    retransmit_segments: int = 0

    # ACK-side accounting.
    acks_received: int = 0
    dup_acks_received: int = 0
    bytes_received: int = 0

    # Loss-recovery events.
    coarse_timeouts: int = 0
    fast_retransmits: int = 0
    fine_retransmits: int = 0

    # Zero-window persist probes sent (1-byte forced sends).
    persist_probes: int = 0

    # RTT samples (fine-grained, seconds).
    rtt_samples: int = 0
    rtt_min: Optional[float] = None
    rtt_max: Optional[float] = None
    rtt_sum: float = field(default=0.0, repr=False)

    def note_rtt(self, sample: float) -> None:
        """Record a fine-grained RTT sample."""
        self.rtt_samples += 1
        self.rtt_sum += sample
        if self.rtt_min is None or sample < self.rtt_min:
            self.rtt_min = sample
        if self.rtt_max is None or sample > self.rtt_max:
            self.rtt_max = sample

    @property
    def rtt_mean(self) -> Optional[float]:
        if self.rtt_samples == 0:
            return None
        return self.rtt_sum / self.rtt_samples

    # ------------------------------------------------------------------
    # Derived paper metrics
    # ------------------------------------------------------------------
    @property
    def transfer_seconds(self) -> Optional[float]:
        """Elapsed time from connection open to the last new ACK."""
        if self.open_time is None or self.last_ack_time is None:
            return None
        return self.last_ack_time - self.open_time

    def throughput_kbps(self) -> float:
        """Goodput in KB/s over the transfer: acked app bytes / elapsed.

        This matches the paper's definition: useful data delivered per
        unit time, retransmissions not double-counted.
        """
        elapsed = self.transfer_seconds
        if elapsed is None:
            return 0.0
        return rate_kbps(self.app_bytes_acked, elapsed)

    def retransmitted_kb(self) -> float:
        """Kilobytes retransmitted, the paper's loss metric."""
        return bytes_to_kb(self.retransmitted_bytes)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (f"{self.throughput_kbps():.1f} KB/s, "
                f"{self.retransmitted_kb():.1f} KB retransmitted, "
                f"{self.coarse_timeouts} coarse timeouts")
