"""Periodic rate sampling.

The bottom panel of the paper's Figure 9 shows "the sending rate in
KB/s as seen in 100ms intervals; the thick line is a running average
(size 3)".  :class:`RateSampler` produces exactly those series from
any monotone byte counter (a host's bytes_sent, a traffic generator's
delivered bytes, a queue's throughput...).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator

Series = List[Tuple[float, float]]


class RateSampler:
    """Sample a byte counter every *interval* and derive rates."""

    def __init__(self, sim: Simulator, counter: Callable[[], float],
                 interval: float = 0.1):
        if interval <= 0:
            raise ConfigurationError("sampling interval must be positive")
        self.sim = sim
        self.counter = counter
        self.interval = interval
        self.samples: Series = []  # (time, bytes/second over the interval)
        self._last_value: Optional[float] = None
        self._running = False
        self._event = None  # pending tick; None is the only valid test

    def start(self, delay: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        self._last_value = None
        self._event = self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        # Cancel the pending tick: a stop()/start() cycle used to leave
        # the old tick scheduled, so the restart forked a second tick
        # chain and the series double-sampled forever after.
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        # The event just fired; its handle is dead (the engine may
        # recycle the object), so null it before anything else.
        self._event = None
        if not self._running:
            return
        value = self.counter()
        if self._last_value is not None:
            rate = (value - self._last_value) / self.interval
            self.samples.append((self.sim.now, rate))
        self._last_value = value
        self._event = self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def running_average(self, window: int = 3) -> Series:
        """The paper's thick line: a centered-ish running mean."""
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        out: Series = []
        for i in range(len(self.samples)):
            lo = max(0, i - window + 1)
            chunk = self.samples[lo:i + 1]
            mean = sum(v for _, v in chunk) / len(chunk)
            out.append((self.samples[i][0], mean))
        return out

    def mean_rate(self, t_start: float = 0.0,
                  t_end: Optional[float] = None) -> float:
        chunk = [v for t, v in self.samples
                 if t >= t_start and (t_end is None or t <= t_end)]
        if not chunk:
            return 0.0
        return sum(chunk) / len(chunk)
