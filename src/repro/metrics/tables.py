"""Run aggregation and paper-style table formatting.

The paper's tables report means over many runs (Table 1: 12 runs,
Table 2: 57 runs, ...), each column a protocol, each row a metric
(throughput, throughput ratio, retransmissions, retransmit ratio,
coarse timeouts).  :class:`RunAggregate` collects per-run numbers and
:func:`format_table` renders the familiar layout, so benchmark output
can be compared with the paper side by side.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class RunAggregate:
    """Accumulates one metric's samples across runs."""

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return statistics.fmean(self.samples)

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)


class MetricTable:
    """A (metric row) x (protocol column) table of run aggregates."""

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)
        self._cells: Dict[str, Dict[str, RunAggregate]] = {}
        self._row_order: List[str] = []

    def add_sample(self, row: str, column: str, value: float) -> None:
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        if row not in self._cells:
            self._cells[row] = {c: RunAggregate() for c in self.columns}
            self._row_order.append(row)
        self._cells[row][column].add(value)

    def mean(self, row: str, column: str) -> float:
        return self._cells[row][column].mean

    def ratio_row(self, row: str, reference_column: str) -> Dict[str, float]:
        """Each column's mean divided by the reference column's mean."""
        ref = self.mean(row, reference_column)
        out = {}
        for column in self.columns:
            value = self.mean(row, column)
            out[column] = value / ref if ref else 0.0
        return out

    def rows(self) -> List[str]:
        return list(self._row_order)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary: per-cell mean and sample count.

        Used by the experiment harness to embed aggregated tables in
        its JSON artifacts alongside the raw per-cell metrics.
        """
        rows: Dict[str, Dict[str, Dict[str, float]]] = {}
        for row in self._row_order:
            rows[row] = {
                column: {"mean": aggregate.mean, "count": aggregate.count}
                for column, aggregate in self._cells[row].items()
            }
        return {"columns": list(self.columns), "rows": rows}


def format_table(title: str, table: MetricTable,
                 ratios_for: Optional[Dict[str, str]] = None,
                 paper: Optional[Dict[str, Dict[str, float]]] = None,
                 precision: int = 2) -> str:
    """Render *table* in the paper's layout.

    Args:
        ratios_for: mapping of metric row -> reference column; for each
            entry an extra "<row> ratio" line is printed, like the
            paper's "Throughput Ratio" rows.
        paper: optional mapping row -> column -> the value printed in
            the paper, shown alongside for comparison.
    """
    width = max(18, *(len(c) + 2 for c in table.columns))
    lines = [title, "-" * len(title)]
    header = f"{'':32}" + "".join(f"{c:>{width}}" for c in table.columns)
    lines.append(header)
    for row in table.rows():
        cells = "".join(f"{table.mean(row, c):>{width}.{precision}f}"
                        for c in table.columns)
        lines.append(f"{row:<32}" + cells)
        if paper and row in paper:
            ref = "".join(
                f"{paper[row].get(c, float('nan')):>{width}.{precision}f}"
                for c in table.columns)
            lines.append(f"{'  (paper)':<32}" + ref)
        if ratios_for and row in ratios_for:
            ratios = table.ratio_row(row, ratios_for[row])
            cells = "".join(f"{ratios[c]:>{width}.2f}" for c in table.columns)
            lines.append(f"{row + ' ratio':<32}" + cells)
    return "\n".join(lines)
