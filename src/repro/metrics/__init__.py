"""Measurement: per-flow statistics, fairness, run aggregation."""

from repro.metrics.fairness import jain_fairness_index, worst_to_best_ratio
from repro.metrics.flowstats import FlowStats
from repro.metrics.tables import MetricTable, RunAggregate, format_table

__all__ = [
    "FlowStats",
    "MetricTable",
    "RunAggregate",
    "format_table",
    "jain_fairness_index",
    "worst_to_best_ratio",
]
