"""Discrete-event simulation engine.

The engine is a classic event-heap scheduler.  Events are callbacks
scheduled at absolute simulated times; ties are broken by insertion
order so runs are fully deterministic.  The x-kernel simulator the
paper used worked the same way: real protocol code driven by a virtual
clock.

Typical use::

    sim = Simulator()
    sim.schedule(1.0, lambda: print("one second in"))
    sim.run(until=10.0)

Components keep a reference to their :class:`Simulator` and use
:meth:`Simulator.schedule` for everything time-related: link
transmission completions, protocol timers, application send times.

Hot path
--------

Millions of events per run means the scheduler's constant factors
dominate wall clock, so the default ("fast") engine:

* stores ``(time, seq, event)`` tuples in the heap, so ``heapq``
  compares C tuples instead of calling ``Event.__lt__`` — ``seq`` is
  unique, so the comparison never reaches the event object;
* recycles :class:`Event` objects through a free list, cutting
  allocator churn on the schedule/fire cycle.

Both changes preserve execution order bit-for-bit: ordering is
``(time, seq)`` either way.  The pre-optimization engine survives as
the *slow path* — set ``REPRO_ENGINE_SLOWPATH=1`` before constructing
a :class:`Simulator` to get an object heap ordered by
``Event.__lt__`` with a fresh allocation per event.  The determinism
suite runs the same cell on both paths and asserts identical results.

Far-horizon calendar overflow
-----------------------------

A binary heap is the right structure for the dense near-term event
population (packet transmissions, deliveries), but thousand-flow runs
also carry thousands of *far* events — conversation start times and
think-time timers seconds in the future — and every one of them
inflates each ``heappush``/``heappop`` along the way.  Above a
live-event threshold the fast path therefore parks far events in
calendar buckets (one unsorted list per ``_wheel_width``-second
epoch) and only heapifies a bucket when the heap drains down to it:
O(1) insertion for the far population, and the heap stays sized to
the near-term burst.

Ordering stays bit-identical to the pure heap by construction, via
two complementary rules.  An entry may *start* a bucket ``e`` only
when ``e`` lies strictly beyond both the currently loaded epoch and
``_heap_max`` — the largest timestamp ever pushed onto the heap since
it last drained — so every heap entry sorts before every parked
entry.  And once any bucket is populated, every new event at or past
the lowest nonempty bucket's boundary (``_far_bound``) *must* park
rather than enter the heap, so the heap can never leapfrog a parked
entry.  Buckets are merged back through ``heapify``, where ``(time,
seq)`` uniqueness restores the exact global order.  Below the
threshold (every quick-sweep cell) no event is ever parked and the
engine is the plain tuple heap.
``REPRO_WHEEL_THRESHOLD``/``REPRO_WHEEL_WIDTH`` override the
activation point and bucket width; the property suite forces the
threshold to zero to cross-check dispatch order against the slow
path.

Event-handle contract: an :class:`Event` returned by ``schedule`` is
only a valid handle until it fires.  Cancelling after the callback ran
is a safe no-op, but holders that may outlive their event must null
their reference when it fires (see ``TCPConnection._pace_fire``),
because a fired event's object may be recycled for a later
``schedule`` call.
"""

from __future__ import annotations

import gc
import heapq
import os
from typing import Any, Callable, List, Optional

from repro.checks import runtime as checks_runtime
from repro.errors import SimulationError
from repro.obs import runtime as obs_runtime
from repro.perf import runtime as perf_runtime
from repro.sim import watchdog as watchdog_runtime

#: Most recently constructed Simulator in this process; see
#: :func:`last_simulator`.
_last_simulator: Optional["Simulator"] = None

_heappush = heapq.heappush

#: Upper bound on the event free list.  Steady-state simulations churn
#: far fewer live events than this; the cap only bounds memory after a
#: transient burst of cancellations.
_POOL_MAX = 4096

#: Environment variable selecting the seed-equivalent slow path.
SLOWPATH_ENV = "REPRO_ENGINE_SLOWPATH"

#: Live-event count above which far events overflow into calendar
#: buckets.  Small cells (the whole quick sweep) never cross this, so
#: their scheduling is byte-for-byte the plain tuple heap.
WHEEL_THRESHOLD_ENV = "REPRO_WHEEL_THRESHOLD"
_DEFAULT_WHEEL_THRESHOLD = 256

#: Calendar bucket width in simulated seconds.  Near events (within
#: the current epoch or below ``_heap_max``) always go to the heap,
#: so the width only tunes how coarsely the far population is binned.
WHEEL_WIDTH_ENV = "REPRO_WHEEL_WIDTH"
_DEFAULT_WHEEL_WIDTH = 1.0


def _wheel_threshold() -> int:
    raw = os.environ.get(WHEEL_THRESHOLD_ENV, "")
    return int(raw) if raw else _DEFAULT_WHEEL_THRESHOLD


def _wheel_width() -> float:
    raw = os.environ.get(WHEEL_WIDTH_ENV, "")
    width = float(raw) if raw else _DEFAULT_WHEEL_WIDTH
    if width <= 0:
        raise SimulationError(f"{WHEEL_WIDTH_ENV} must be positive")
    return width


def slow_path_requested() -> bool:
    """True when the environment asks for the pre-optimization engine."""
    return os.environ.get(SLOWPATH_ENV, "") not in ("", "0")


def last_simulator() -> Optional["Simulator"]:
    """Return the most recently constructed :class:`Simulator`.

    Every experiment builds exactly one simulator per run, but none of
    the experiment entry points return it.  The harness uses this hook
    to read :attr:`Simulator.events_processed` after a cell finishes,
    without threading the engine through every experiment signature.
    Only valid between one experiment's construction and the next.
    """
    return _last_simulator


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can
    cancel them.  A cancelled event stays in the heap but is skipped
    when popped (lazy deletion), which keeps cancellation O(1).

    Once the callback has fired the handle is dead: ``cancel()`` is a
    no-op (``cancelled`` is set as the event leaves the heap), and the
    object may be reused for a future ``schedule`` call, so holders
    must drop their reference when their event fires.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference for the owner's live-event counter; cleared
        # once the event leaves the heap so late cancels stay no-ops.
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will not fire.  No-op after it fired."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        # heapq needs a total order; (time, seq) is unique per event.
        # Only exercised by the slow path — the fast path's heap holds
        # (time, seq, event) tuples that never compare beyond seq.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event scheduler.

    The simulator owns the virtual clock (:attr:`now`, in seconds) and
    an event heap.  ``run()`` pops events in (time, insertion-order)
    order until the heap empties, a time horizon passes, or an event
    limit is hit.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Fast path: list of (time, seq, Event).  Slow path: list of
        # Event ordered by Event.__lt__.  Never mixed — the path is
        # fixed at construction.
        self._heap: List[Any] = []
        self._seq: int = 0
        self._live: int = 0
        self._events_processed: int = 0
        self._running = False
        self._fast = not slow_path_requested()
        self._pool: List[Event] = []
        # Far-horizon calendar overflow (fast path only; see the
        # module docstring).  ``_far`` maps epoch index -> unsorted
        # list of heap entries; ``_heap_max`` is the largest timestamp
        # pushed onto the heap since it last drained, the safety bound
        # that keeps parked entries strictly after every heap entry.
        self._far: dict = {}
        self._far_count: int = 0
        self._epoch: int = 0
        self._heap_max: float = 0.0
        self._far_bound: float = float("inf")
        self._far_peak: int = 0
        self._wheel_threshold: int = _wheel_threshold()
        self._wheel_width: float = _wheel_width()
        # Bound at construction so the run loop pays one attribute
        # test when checking/profiling is off (see repro.checks.runtime
        # and repro.perf.runtime).
        self.checker = checks_runtime.active()
        if self.checker is not None:
            self.checker.register_simulator(self)
        self.perf = perf_runtime.active()
        if self.perf is not None:
            self.perf.register_simulator(self)
        # Liveness watchdog (repro.sim.watchdog): like the checker, its
        # hooks read state and schedule nothing, so events_processed is
        # identical with the watchdog on.
        self.watchdog = watchdog_runtime.active()
        if self.watchdog is not None:
            self.watchdog.register_simulator(self)
        # Telemetry gauges (repro.obs): read-only sampler on the same
        # contract — it never schedules, so events_processed is
        # identical with gauges armed.
        self.obs = obs_runtime.active()
        if self.obs is not None:
            self.obs.register_simulator(self)
        global _last_simulator
        _last_simulator = self

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* to run *delay* seconds from now.

        Negative delays are rejected: an event in the past would break
        the monotone-clock invariant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay}s in the past")
        # _push inlined: this is the single hottest entry point (one
        # call per event), and the extra frame is measurable.
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if self._fast:
            pool = self._pool
            if pool:
                event = pool.pop()
                event.time = time
                event.seq = seq
                event.fn = fn
                event.args = args
                event.cancelled = False
                event._sim = self
            else:
                event = Event(time, seq, fn, args, sim=self)
            if self._far_count or len(self._heap) > self._wheel_threshold:
                width = self._wheel_width
                epoch = int(time / width)
                if (time >= self._far_bound
                        or (epoch > self._epoch
                            and epoch * width > self._heap_max)):
                    self._far.setdefault(epoch, []).append((time, seq, event))
                    count = self._far_count + 1
                    self._far_count = count
                    if count > self._far_peak:
                        self._far_peak = count
                    bound = epoch * width
                    if bound < self._far_bound:
                        self._far_bound = bound
                    return event
            if time > self._heap_max:
                self._heap_max = time
            _heappush(self._heap, (time, seq, event))
        else:
            event = Event(time, seq, fn, args, sim=self)
            _heappush(self._heap, event)
        return event

    def schedule_anon(self, delay: float, fn: Callable[..., Any],
                      *args: Any) -> None:
        """Schedule *fn(*args)* with no handle (not cancellable).

        The fire-and-forget variant of :meth:`schedule` for callers
        that drop the returned handle — packet deliveries, transmission
        completions, one-shot application timers.  The fast path pushes
        a bare ``(time, seq, fn, args)`` tuple: no :class:`Event`
        object, no free-list churn, and none of the handle-neutralising
        stores on dispatch.  Ordering is the same ``(time, seq)`` as
        handled events, so the two kinds interleave bit-identically
        with how :meth:`schedule` would have ordered them.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay}s in the past")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if self._fast:
            if self._far_count or len(self._heap) > self._wheel_threshold:
                width = self._wheel_width
                epoch = int(time / width)
                if (time >= self._far_bound
                        or (epoch > self._epoch
                            and epoch * width > self._heap_max)):
                    self._far.setdefault(epoch, []).append(
                        (time, seq, fn, args))
                    count = self._far_count + 1
                    self._far_count = count
                    if count > self._far_peak:
                        self._far_peak = count
                    bound = epoch * width
                    if bound < self._far_bound:
                        self._far_bound = bound
                    return
            if time > self._heap_max:
                self._heap_max = time
            _heappush(self._heap, (time, seq, fn, args))
        else:
            _heappush(self._heap, Event(time, seq, fn, args, sim=self))

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* at absolute simulated time *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self.now:.6f}"
            )
        return self._push(time, fn, args)

    def _push(self, time: float, fn: Callable[..., Any], args: tuple) -> Event:
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if self._fast:
            pool = self._pool
            if pool:
                event = pool.pop()
                event.time = time
                event.seq = seq
                event.fn = fn
                event.args = args
                event.cancelled = False
                event._sim = self
            else:
                event = Event(time, seq, fn, args, sim=self)
            if self._far_count or len(self._heap) > self._wheel_threshold:
                width = self._wheel_width
                epoch = int(time / width)
                if (time >= self._far_bound
                        or (epoch > self._epoch
                            and epoch * width > self._heap_max)):
                    self._far.setdefault(epoch, []).append((time, seq, event))
                    count = self._far_count + 1
                    self._far_count = count
                    if count > self._far_peak:
                        self._far_peak = count
                    bound = epoch * width
                    if bound < self._far_bound:
                        self._far_bound = bound
                    return event
            if time > self._heap_max:
                self._heap_max = time
            _heappush(self._heap, (time, seq, event))
        else:
            event = Event(time, seq, fn, args, sim=self)
            _heappush(self._heap, event)
        return event

    def _advance_epoch(self) -> bool:
        """Load the earliest calendar bucket into the (empty) heap.

        Returns False when no far events remain.  Entries are merged
        with ``heapify``; ``(time, seq)`` uniqueness makes the merged
        order exactly what a single global heap would have produced.
        ``_heap_max`` conservatively becomes the loaded epoch's upper
        boundary, so subsequent parking decisions stay safe.
        """
        far = self._far
        if not far:
            return False
        epoch = min(far)
        entries = far.pop(epoch)
        self._far_count -= len(entries)
        heap = self._heap
        heap.extend(entries)
        heapq.heapify(heap)
        self._epoch = epoch
        self._heap_max = (epoch + 1) * self._wheel_width
        self._far_bound = (min(far) * self._wheel_width if far
                           else float("inf"))
        return True

    def _recycle(self, event: Event) -> None:
        # Neutralise the handle before pooling: a late cancel() on a
        # fired event must be a no-op and must not hold references.
        event.cancelled = True
        event._sim = None
        event.fn = None
        event.args = ()
        if len(self._pool) < _POOL_MAX:
            self._pool.append(event)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel *event* if it is pending.  ``None`` is accepted as a no-op."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the heap drains or a bound is reached.

        ``until`` is an inclusive time horizon: events scheduled at
        exactly ``until`` still fire.  Returns the number of events
        processed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        # Dispatch allocates heavily (heap tuples, packets, segments)
        # but almost everything dies by refcount; suspending the
        # cyclic collector for the duration avoids generation-0 scans
        # every ~700 allocations.  Cycles made during a run (topology,
        # connections) are long-lived anyway and are swept once the
        # collector resumes.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self._fast:
                processed = self._run_fast(until, max_events)
            else:
                processed = self._run_slow(until, max_events)
            if (until is not None and self.now < until
                    and not self._has_pending_before(until)):
                # Advance the clock to the horizon so back-to-back
                # run(until=...) calls observe monotone time.
                self.now = until
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
        if self.checker is not None:
            self.checker.on_run_end(self)
        if self.watchdog is not None:
            self.watchdog.on_run_end(self)
        if self.obs is not None:
            self.obs.on_run_end(self)
        return processed

    def _run_fast(self, until: Optional[float],
                  max_events: Optional[int]) -> int:
        """Tuple-heap dispatch loop with hoisted lookups."""
        checker = self.checker
        perf = self.perf
        watchdog = self.watchdog
        obs = self.obs
        # Single cached test: with no probe/checker/watchdog/gauges
        # attached (the overwhelmingly common case) dispatch runs the
        # hook-free loop, paying zero per-event hook checks.
        if checker is None and watchdog is None and obs is None:
            if perf is None:
                return self._run_fast_bare(until, max_events)
            # Probe-only (the bench protocol): a dedicated loop with
            # the probe hook hoisted and the bookkeeping counters
            # batched, so the profiled number reflects the engine
            # rather than per-event hook plumbing.
            return self._run_fast_perf(until, max_events, perf)
        heap = self._heap
        heappop = heapq.heappop
        pool = self._pool
        pool_append = pool.append
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        processed = 0
        while True:
            if not heap:
                if self._far_count and self._advance_epoch():
                    continue
                break
            entry = heappop(heap)
            if len(entry) == 4:
                # Anonymous event (time, seq, fn, args): no handle to
                # neutralise, no cancellation to test, no pool churn.
                time = entry[0]
                if time > horizon:
                    heapq.heappush(heap, entry)
                    break
                self._live -= 1
                if time < self.now:
                    raise SimulationError(
                        "event heap yielded an event in the past")
                self.now = time
                if checker is not None:
                    checker.on_event(self)
                if watchdog is not None:
                    watchdog.on_event(self)
                if obs is not None:
                    obs.on_event(self)
                fn = entry[2]
                if perf is not None:
                    perf.on_event(fn, len(heap))
                fn(*entry[3])
                processed += 1
                self._events_processed += 1
                if processed >= limit:
                    break
                continue
            event = entry[2]
            if event.cancelled:
                event.fn = None
                event.args = ()
                if len(pool) < _POOL_MAX:
                    pool_append(event)
                continue
            time = entry[0]
            if time > horizon:
                # Overshot the horizon: the popped event stays pending.
                heapq.heappush(heap, entry)
                break
            self._live -= 1
            event._sim = None
            if time < self.now:
                raise SimulationError("event heap yielded an event in the past")
            self.now = time
            if checker is not None:
                # Clock monotonicity plus a periodic structural
                # audit; piggybacked here (never scheduled) so
                # events_processed is identical with checks on.
                checker.on_event(self)
            if watchdog is not None:
                watchdog.on_event(self)
            if obs is not None:
                obs.on_event(self)
            fn = event.fn
            args = event.args
            if perf is not None:
                perf.on_event(fn, len(heap))
            fn(*args)
            # Recycle only after dispatch (inlined): the callback may
            # legally cancel the event that invoked it (timer
            # self-stop), which must hit this dead handle, not a
            # recycled live one.
            event.cancelled = True
            event._sim = None
            event.fn = None
            event.args = ()
            if len(pool) < _POOL_MAX:
                pool_append(event)
            processed += 1
            self._events_processed += 1
            if processed >= limit:
                break
        return processed

    def _run_fast_perf(self, until: Optional[float],
                       max_events: Optional[int], perf) -> int:
        """The probe-only dispatch loop (bench protocol).

        Identical event ordering and counting to :meth:`_run_fast`
        with only the probe attached; the probe's per-event counting
        is inlined on loop locals and the ``_live``/
        ``_events_processed`` bookkeeping is batched (safe here: the
        probe never reads either, and with no gauges/watchdog nothing
        samples them mid-run).
        """
        heap = self._heap
        heappop = heapq.heappop
        pool = self._pool
        pool_append = pool.append
        # Probe bookkeeping is inlined on locals (the counts dict, the
        # running heap peak) and folded back in ``finally`` — exactly
        # what PerfProbe.on_event computes, without a method call per
        # event.  Safe for the same reason the _live batching is: the
        # probe is only read after run() returns.
        counts = perf._raw_counts
        peak = perf.peak_heap
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        processed = 0
        fired = 0
        now = self.now
        try:
            while True:
                if not heap:
                    if self._far_count and self._advance_epoch():
                        continue
                    break
                entry = heappop(heap)
                if len(entry) == 4:
                    time = entry[0]
                    if time > horizon:
                        _heappush(heap, entry)
                        break
                    if time < now:
                        raise SimulationError(
                            "event heap yielded an event in the past")
                    fired += 1
                    self.now = now = time
                    fn = entry[2]
                    depth = len(heap)
                    if depth > peak:
                        peak = depth
                    try:
                        counts[fn] += 1
                    except KeyError:
                        counts[fn] = 1
                    except TypeError:
                        key = getattr(fn, "__qualname__", None) or repr(fn)
                        counts[key] = counts.get(key, 0) + 1
                    fn(*entry[3])
                    processed += 1
                    if processed >= limit:
                        break
                    continue
                event = entry[2]
                if event.cancelled:
                    event.fn = None
                    event.args = ()
                    if len(pool) < _POOL_MAX:
                        pool_append(event)
                    continue
                time = entry[0]
                if time > horizon:
                    _heappush(heap, entry)
                    break
                event._sim = None
                if time < now:
                    raise SimulationError(
                        "event heap yielded an event in the past")
                fired += 1
                self.now = now = time
                fn = event.fn
                args = event.args
                depth = len(heap)
                if depth > peak:
                    peak = depth
                try:
                    counts[fn] += 1
                except KeyError:
                    counts[fn] = 1
                except TypeError:
                    key = getattr(fn, "__qualname__", None) or repr(fn)
                    counts[key] = counts.get(key, 0) + 1
                fn(*args)
                event.cancelled = True
                event.fn = None
                event.args = ()
                if len(pool) < _POOL_MAX:
                    pool_append(event)
                processed += 1
                if processed >= limit:
                    break
        finally:
            self._live -= fired
            self._events_processed += processed
            perf.events += fired
            if peak > perf.peak_heap:
                perf.peak_heap = peak
        return processed

    def _run_fast_bare(self, until: Optional[float],
                       max_events: Optional[int]) -> int:
        """The no-hooks dispatch loop (no probe/checker/watchdog/gauges).

        Identical event ordering and counting to :meth:`_run_fast`;
        only the per-event hook tests are gone and the
        ``_live``/``_events_processed`` bookkeeping is batched (safe:
        nothing reads either mid-run without a hook attached).
        """
        heap = self._heap
        heappop = heapq.heappop
        pool = self._pool
        pool_append = pool.append
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        processed = 0
        fired = 0
        now = self.now
        try:
            while True:
                if not heap:
                    if self._far_count and self._advance_epoch():
                        continue
                    break
                entry = heappop(heap)
                if len(entry) == 4:
                    time = entry[0]
                    if time > horizon:
                        _heappush(heap, entry)
                        break
                    if time < now:
                        raise SimulationError(
                            "event heap yielded an event in the past")
                    fired += 1
                    self.now = now = time
                    entry[2](*entry[3])
                    processed += 1
                    if processed >= limit:
                        break
                    continue
                event = entry[2]
                if event.cancelled:
                    event.fn = None
                    event.args = ()
                    if len(pool) < _POOL_MAX:
                        pool_append(event)
                    continue
                time = entry[0]
                if time > horizon:
                    _heappush(heap, entry)
                    break
                event._sim = None
                if time < now:
                    raise SimulationError(
                        "event heap yielded an event in the past")
                fired += 1
                self.now = now = time
                fn = event.fn
                args = event.args
                fn(*args)
                event.cancelled = True
                event.fn = None
                event.args = ()
                if len(pool) < _POOL_MAX:
                    pool_append(event)
                processed += 1
                if processed >= limit:
                    break
        finally:
            self._live -= fired
            self._events_processed += processed
        return processed

    def _run_slow(self, until: Optional[float],
                  max_events: Optional[int]) -> int:
        """The seed engine's loop, kept verbatim as the reference path."""
        processed = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self._live -= 1
            event._sim = None
            if event.time < self.now:
                raise SimulationError("event heap yielded an event in the past")
            self.now = event.time
            if self.checker is not None:
                self.checker.on_event(self)
            if self.watchdog is not None:
                self.watchdog.on_event(self)
            if self.obs is not None:
                self.obs.on_event(self)
            if self.perf is not None:
                self.perf.on_event(event.fn, len(self._heap))
            event.fn(*event.args)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    def _has_pending_before(self, horizon: float) -> bool:
        # Pruning cancelled events off the top keeps this O(1)
        # amortised: each cancelled event is popped at most once over
        # the simulator's lifetime.  Once the top is live it is the
        # global minimum, so a single comparison answers the question.
        heap = self._heap
        if self._fast:
            while True:
                while heap and len(heap[0]) == 3 and heap[0][2].cancelled:
                    self._recycle(heapq.heappop(heap)[2])
                if heap:
                    return heap[0][0] <= horizon
                # Heap drained to all-cancelled: pull the next calendar
                # bucket (if any) and keep pruning.  Amortised O(1) —
                # each entry is loaded at most once ever.
                if not (self._far_count and self._advance_epoch()):
                    return False
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return bool(heap) and heap[0].time <= horizon

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_processed

    @property
    def heap_size(self) -> int:
        """Raw heap length, including lazily-deleted cancelled events.

        Far events parked in calendar buckets are *not* counted; see
        :attr:`far_events`.
        """
        return len(self._heap)

    @property
    def far_events(self) -> int:
        """Events parked in far-horizon calendar buckets (may include
        cancelled handles, mirroring :attr:`heap_size`)."""
        return self._far_count

    @property
    def far_events_peak(self) -> int:
        """Largest number of simultaneously parked far events seen.

        Zero means the calendar wheel never engaged and the run used
        the plain tuple heap throughout.  Deterministic, so scaling
        cells can gate on it."""
        return self._far_peak

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
