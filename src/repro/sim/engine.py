"""Discrete-event simulation engine.

The engine is a classic event-heap scheduler.  Events are callbacks
scheduled at absolute simulated times; ties are broken by insertion
order so runs are fully deterministic.  The x-kernel simulator the
paper used worked the same way: real protocol code driven by a virtual
clock.

Typical use::

    sim = Simulator()
    sim.schedule(1.0, lambda: print("one second in"))
    sim.run(until=10.0)

Components keep a reference to their :class:`Simulator` and use
:meth:`Simulator.schedule` for everything time-related: link
transmission completions, protocol timers, application send times.

Hot path
--------

Millions of events per run means the scheduler's constant factors
dominate wall clock, so the default ("fast") engine:

* stores ``(time, seq, event)`` tuples in the heap, so ``heapq``
  compares C tuples instead of calling ``Event.__lt__`` — ``seq`` is
  unique, so the comparison never reaches the event object;
* recycles :class:`Event` objects through a free list, cutting
  allocator churn on the schedule/fire cycle.

Both changes preserve execution order bit-for-bit: ordering is
``(time, seq)`` either way.  The pre-optimization engine survives as
the *slow path* — set ``REPRO_ENGINE_SLOWPATH=1`` before constructing
a :class:`Simulator` to get an object heap ordered by
``Event.__lt__`` with a fresh allocation per event.  The determinism
suite runs the same cell on both paths and asserts identical results.

Event-handle contract: an :class:`Event` returned by ``schedule`` is
only a valid handle until it fires.  Cancelling after the callback ran
is a safe no-op, but holders that may outlive their event must null
their reference when it fires (see ``TCPConnection._pace_fire``),
because a fired event's object may be recycled for a later
``schedule`` call.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, List, Optional

from repro.checks import runtime as checks_runtime
from repro.errors import SimulationError
from repro.obs import runtime as obs_runtime
from repro.perf import runtime as perf_runtime
from repro.sim import watchdog as watchdog_runtime

#: Most recently constructed Simulator in this process; see
#: :func:`last_simulator`.
_last_simulator: Optional["Simulator"] = None

_heappush = heapq.heappush

#: Upper bound on the event free list.  Steady-state simulations churn
#: far fewer live events than this; the cap only bounds memory after a
#: transient burst of cancellations.
_POOL_MAX = 4096

#: Environment variable selecting the seed-equivalent slow path.
SLOWPATH_ENV = "REPRO_ENGINE_SLOWPATH"


def slow_path_requested() -> bool:
    """True when the environment asks for the pre-optimization engine."""
    return os.environ.get(SLOWPATH_ENV, "") not in ("", "0")


def last_simulator() -> Optional["Simulator"]:
    """Return the most recently constructed :class:`Simulator`.

    Every experiment builds exactly one simulator per run, but none of
    the experiment entry points return it.  The harness uses this hook
    to read :attr:`Simulator.events_processed` after a cell finishes,
    without threading the engine through every experiment signature.
    Only valid between one experiment's construction and the next.
    """
    return _last_simulator


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can
    cancel them.  A cancelled event stays in the heap but is skipped
    when popped (lazy deletion), which keeps cancellation O(1).

    Once the callback has fired the handle is dead: ``cancel()`` is a
    no-op (``cancelled`` is set as the event leaves the heap), and the
    object may be reused for a future ``schedule`` call, so holders
    must drop their reference when their event fires.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference for the owner's live-event counter; cleared
        # once the event leaves the heap so late cancels stay no-ops.
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will not fire.  No-op after it fired."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        # heapq needs a total order; (time, seq) is unique per event.
        # Only exercised by the slow path — the fast path's heap holds
        # (time, seq, event) tuples that never compare beyond seq.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event scheduler.

    The simulator owns the virtual clock (:attr:`now`, in seconds) and
    an event heap.  ``run()`` pops events in (time, insertion-order)
    order until the heap empties, a time horizon passes, or an event
    limit is hit.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Fast path: list of (time, seq, Event).  Slow path: list of
        # Event ordered by Event.__lt__.  Never mixed — the path is
        # fixed at construction.
        self._heap: List[Any] = []
        self._seq: int = 0
        self._live: int = 0
        self._events_processed: int = 0
        self._running = False
        self._fast = not slow_path_requested()
        self._pool: List[Event] = []
        # Bound at construction so the run loop pays one attribute
        # test when checking/profiling is off (see repro.checks.runtime
        # and repro.perf.runtime).
        self.checker = checks_runtime.active()
        if self.checker is not None:
            self.checker.register_simulator(self)
        self.perf = perf_runtime.active()
        if self.perf is not None:
            self.perf.register_simulator(self)
        # Liveness watchdog (repro.sim.watchdog): like the checker, its
        # hooks read state and schedule nothing, so events_processed is
        # identical with the watchdog on.
        self.watchdog = watchdog_runtime.active()
        if self.watchdog is not None:
            self.watchdog.register_simulator(self)
        # Telemetry gauges (repro.obs): read-only sampler on the same
        # contract — it never schedules, so events_processed is
        # identical with gauges armed.
        self.obs = obs_runtime.active()
        if self.obs is not None:
            self.obs.register_simulator(self)
        global _last_simulator
        _last_simulator = self

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* to run *delay* seconds from now.

        Negative delays are rejected: an event in the past would break
        the monotone-clock invariant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay}s in the past")
        # _push inlined: this is the single hottest entry point (one
        # call per event), and the extra frame is measurable.
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if self._fast:
            pool = self._pool
            if pool:
                event = pool.pop()
                event.time = time
                event.seq = seq
                event.fn = fn
                event.args = args
                event.cancelled = False
                event._sim = self
            else:
                event = Event(time, seq, fn, args, sim=self)
            _heappush(self._heap, (time, seq, event))
        else:
            event = Event(time, seq, fn, args, sim=self)
            _heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* at absolute simulated time *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self.now:.6f}"
            )
        return self._push(time, fn, args)

    def _push(self, time: float, fn: Callable[..., Any], args: tuple) -> Event:
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if self._fast:
            pool = self._pool
            if pool:
                event = pool.pop()
                event.time = time
                event.seq = seq
                event.fn = fn
                event.args = args
                event.cancelled = False
                event._sim = self
            else:
                event = Event(time, seq, fn, args, sim=self)
            _heappush(self._heap, (time, seq, event))
        else:
            event = Event(time, seq, fn, args, sim=self)
            _heappush(self._heap, event)
        return event

    def _recycle(self, event: Event) -> None:
        # Neutralise the handle before pooling: a late cancel() on a
        # fired event must be a no-op and must not hold references.
        event.cancelled = True
        event._sim = None
        event.fn = None
        event.args = ()
        if len(self._pool) < _POOL_MAX:
            self._pool.append(event)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel *event* if it is pending.  ``None`` is accepted as a no-op."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the heap drains or a bound is reached.

        ``until`` is an inclusive time horizon: events scheduled at
        exactly ``until`` still fire.  Returns the number of events
        processed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            if self._fast:
                processed = self._run_fast(until, max_events)
            else:
                processed = self._run_slow(until, max_events)
            if (until is not None and self.now < until
                    and not self._has_pending_before(until)):
                # Advance the clock to the horizon so back-to-back
                # run(until=...) calls observe monotone time.
                self.now = until
        finally:
            self._running = False
        if self.checker is not None:
            self.checker.on_run_end(self)
        if self.watchdog is not None:
            self.watchdog.on_run_end(self)
        if self.obs is not None:
            self.obs.on_run_end(self)
        return processed

    def _run_fast(self, until: Optional[float],
                  max_events: Optional[int]) -> int:
        """Tuple-heap dispatch loop with hoisted lookups."""
        heap = self._heap
        heappop = heapq.heappop
        checker = self.checker
        perf = self.perf
        watchdog = self.watchdog
        obs = self.obs
        pool = self._pool
        pool_append = pool.append
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        processed = 0
        while heap:
            entry = heappop(heap)
            event = entry[2]
            if event.cancelled:
                event.fn = None
                event.args = ()
                if len(pool) < _POOL_MAX:
                    pool_append(event)
                continue
            time = entry[0]
            if time > horizon:
                # Overshot the horizon: the popped event stays pending.
                heapq.heappush(heap, entry)
                break
            self._live -= 1
            event._sim = None
            if time < self.now:
                raise SimulationError("event heap yielded an event in the past")
            self.now = time
            if checker is not None:
                # Clock monotonicity plus a periodic structural
                # audit; piggybacked here (never scheduled) so
                # events_processed is identical with checks on.
                checker.on_event(self)
            if watchdog is not None:
                watchdog.on_event(self)
            if obs is not None:
                obs.on_event(self)
            fn = event.fn
            args = event.args
            if perf is not None:
                perf.on_event(fn, len(heap))
            fn(*args)
            # Recycle only after dispatch (inlined): the callback may
            # legally cancel the event that invoked it (timer
            # self-stop), which must hit this dead handle, not a
            # recycled live one.
            event.cancelled = True
            event._sim = None
            event.fn = None
            event.args = ()
            if len(pool) < _POOL_MAX:
                pool_append(event)
            processed += 1
            self._events_processed += 1
            if processed >= limit:
                break
        return processed

    def _run_slow(self, until: Optional[float],
                  max_events: Optional[int]) -> int:
        """The seed engine's loop, kept verbatim as the reference path."""
        processed = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self._live -= 1
            event._sim = None
            if event.time < self.now:
                raise SimulationError("event heap yielded an event in the past")
            self.now = event.time
            if self.checker is not None:
                self.checker.on_event(self)
            if self.watchdog is not None:
                self.watchdog.on_event(self)
            if self.obs is not None:
                self.obs.on_event(self)
            if self.perf is not None:
                self.perf.on_event(event.fn, len(self._heap))
            event.fn(*event.args)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    def _has_pending_before(self, horizon: float) -> bool:
        # Pruning cancelled events off the top keeps this O(1)
        # amortised: each cancelled event is popped at most once over
        # the simulator's lifetime.  Once the top is live it is the
        # global minimum, so a single comparison answers the question.
        heap = self._heap
        if self._fast:
            while heap and heap[0][2].cancelled:
                self._recycle(heapq.heappop(heap)[2])
            return bool(heap) and heap[0][0] <= horizon
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return bool(heap) and heap[0].time <= horizon

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_processed

    @property
    def heap_size(self) -> int:
        """Raw heap length, including lazily-deleted cancelled events."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
