"""Discrete-event simulation engine.

The engine is a classic event-heap scheduler.  Events are callbacks
scheduled at absolute simulated times; ties are broken by insertion
order so runs are fully deterministic.  The x-kernel simulator the
paper used worked the same way: real protocol code driven by a virtual
clock.

Typical use::

    sim = Simulator()
    sim.schedule(1.0, lambda: print("one second in"))
    sim.run(until=10.0)

Components keep a reference to their :class:`Simulator` and use
:meth:`Simulator.schedule` for everything time-related: link
transmission completions, protocol timers, application send times.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.checks import runtime as checks_runtime
from repro.errors import SimulationError

#: Most recently constructed Simulator in this process; see
#: :func:`last_simulator`.
_last_simulator: Optional["Simulator"] = None


def last_simulator() -> Optional["Simulator"]:
    """Return the most recently constructed :class:`Simulator`.

    Every experiment builds exactly one simulator per run, but none of
    the experiment entry points return it.  The harness uses this hook
    to read :attr:`Simulator.events_processed` after a cell finishes,
    without threading the engine through every experiment signature.
    Only valid between one experiment's construction and the next.
    """
    return _last_simulator


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can
    cancel them.  A cancelled event stays in the heap but is skipped
    when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference for the owner's live-event counter; cleared
        # once the event leaves the heap so late cancels stay no-ops.
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        # heapq needs a total order; (time, seq) is unique per event.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event scheduler.

    The simulator owns the virtual clock (:attr:`now`, in seconds) and
    an event heap.  ``run()`` pops events in (time, insertion-order)
    order until the heap empties, a time horizon passes, or an event
    limit is hit.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._live: int = 0
        self._events_processed: int = 0
        self._running = False
        # Bound at construction so the run loop pays one attribute
        # test when checking is off (see repro.checks.runtime).
        self.checker = checks_runtime.active()
        if self.checker is not None:
            self.checker.register_simulator(self)
        global _last_simulator
        _last_simulator = self

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* to run *delay* seconds from now.

        Negative delays are rejected: an event in the past would break
        the monotone-clock invariant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay}s in the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* at absolute simulated time *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self.now:.6f}"
            )
        event = Event(time, self._seq, fn, args, sim=self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel *event* if it is pending.  ``None`` is accepted as a no-op."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the heap drains or a bound is reached.

        ``until`` is an inclusive time horizon: events scheduled at
        exactly ``until`` still fire.  Returns the number of events
        processed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._live -= 1
                event._sim = None
                if event.time < self.now:
                    raise SimulationError("event heap yielded an event in the past")
                self.now = event.time
                if self.checker is not None:
                    # Clock monotonicity plus a periodic structural
                    # audit; piggybacked here (never scheduled) so
                    # events_processed is identical with checks on.
                    self.checker.on_event(self)
                event.fn(*event.args)
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if (until is not None and self.now < until
                    and not self._has_pending_before(until)):
                # Advance the clock to the horizon so back-to-back
                # run(until=...) calls observe monotone time.
                self.now = until
        finally:
            self._running = False
        if self.checker is not None:
            self.checker.on_run_end(self)
        return processed

    def _has_pending_before(self, horizon: float) -> bool:
        # Pruning cancelled events off the top keeps this O(1)
        # amortised: each cancelled event is popped at most once over
        # the simulator's lifetime.  Once the top is live it is the
        # global minimum, so a single comparison answers the question.
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return bool(self._heap) and self._heap[0].time <= horizon

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
