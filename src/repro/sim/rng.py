"""Seeded random-number streams and the distributions used by tcplib.

Every stochastic component in the library draws from its own named
stream, derived deterministically from the experiment seed.  Two
benefits: runs are bit-reproducible, and adding a new consumer of
randomness does not perturb the draws seen by existing components
(each stream is independent).

The distribution helpers cover what the traffic generator needs:
exponential interarrivals, log-normal object sizes, bounded geometric
counts, and draws from small empirical tables.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List, Sequence, Tuple


class RngRegistry:
    """Factory for named, independently seeded ``random.Random`` streams.

    ``registry.stream("traffic")`` always returns the same object for a
    given name, seeded from a SHA-256 hash of ``(root_seed, name)`` so
    that streams are decorrelated even for adjacent seeds.
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under *name*, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of this one."""
        digest = hashlib.sha256(f"{self.root_seed}/spawn/{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))


def exponential(rng: random.Random, mean: float) -> float:
    """Draw from an exponential distribution with the given *mean*."""
    if mean <= 0:
        raise ValueError("exponential mean must be positive")
    return rng.expovariate(1.0 / mean)


def lognormal_bytes(rng: random.Random, median: float, sigma: float,
                    minimum: int = 1, maximum: int = 10 * 1024 * 1024) -> int:
    """Draw an object size in bytes from a log-normal distribution.

    *median* is the distribution median in bytes; *sigma* the shape
    parameter of the underlying normal.  The draw is clamped to
    ``[minimum, maximum]`` — tcplib's tables are similarly truncated by
    the finite traces they came from.
    """
    mu = math.log(median)
    value = int(round(rng.lognormvariate(mu, sigma)))
    return max(minimum, min(maximum, value))


def bounded_geometric(rng: random.Random, mean: float, minimum: int = 1,
                      maximum: int = 1000) -> int:
    """Draw a count from a geometric distribution with the given *mean*.

    Used for "number of items in an FTP conversation"-style quantities,
    which tcplib reports as heavy-tailed small integers.
    """
    if mean < minimum:
        return minimum
    p = 1.0 / (mean - minimum + 1.0)
    count = minimum
    while rng.random() > p and count < maximum:
        count += 1
    return count


def empirical(rng: random.Random, table: Sequence[Tuple[float, float]]) -> float:
    """Draw from an empirical CDF given as ``[(cum_prob, value), ...]``.

    The table must be sorted by cumulative probability and end at 1.0.
    Values between listed points are linearly interpolated, mirroring
    how tcplib interpolates its trace-derived tables.
    """
    if not table:
        raise ValueError("empirical table must not be empty")
    u = rng.random()
    prev_p, prev_v = 0.0, table[0][1]
    for p, v in table:
        if u <= p:
            if p == prev_p:
                return v
            frac = (u - prev_p) / (p - prev_p)
            return prev_v + frac * (v - prev_v)
        prev_p, prev_v = p, v
    return table[-1][1]


def weighted_choice(rng: random.Random, weights: Dict[str, float]) -> str:
    """Pick a key from *weights* with probability proportional to its value."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    u = rng.random() * total
    acc = 0.0
    keys: List[str] = sorted(weights)  # sorted for determinism
    for key in keys:
        acc += weights[key]
        if u <= acc:
            return key
    return keys[-1]
