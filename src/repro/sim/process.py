"""Periodic-timer helper built on the event engine.

BSD TCP drives its protocol machinery from two free-running periodic
timers: the 500 ms "slow" timer (retransmission bookkeeping) and the
200 ms "fast" timer (delayed ACKs).  :class:`PeriodicTimer` models
exactly that: a callback invoked every *period* seconds, starting from
an optional phase offset, until stopped.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Event, Simulator


class PeriodicTimer:
    """Fire a callback every *period* seconds of simulated time.

    The first firing happens at ``start + phase + period`` (i.e. the
    timer "ticks" at the end of each period, like the BSD callout).  A
    random phase per host avoids the unrealistic situation of every
    host's coarse timer firing at the same instant.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], Any], phase: float = 0.0):
        if period <= 0:
            raise ConfigurationError("timer period must be positive")
        if phase < 0:
            raise ConfigurationError("timer phase must be non-negative")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.phase = phase
        self._event: Optional[Event] = None
        self._running = False
        self.ticks = 0

    def start(self) -> None:
        """Begin ticking.  Starting an already-running timer is a no-op."""
        if self._running:
            return
        self._running = True
        self._event = self.sim.schedule(self.phase + self.period, self._fire)

    def stop(self) -> None:
        """Stop ticking.  Safe to call when already stopped."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # -- idle suppression ------------------------------------------------
    # A suspended timer schedules nothing at all: a host whose
    # connections are quiescent pays zero events per period instead of
    # one.  Resuming behaves like a fresh start (first fire one full
    # period out), so a resumed timer's ticks are NOT phase-aligned
    # with the uninterrupted schedule — which is why idle suppression
    # is opt-in and excluded from the bit-identical gate.
    def suspend(self) -> None:
        """Alias of :meth:`stop`, named for the idle-suppression path."""
        self.stop()

    def resume(self) -> None:
        """Start ticking again after :meth:`suspend` (no-op if running)."""
        self.start()

    @property
    def running(self) -> bool:
        return self._running

    def _fire(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self.callback()
        if self._running:
            self._event = self.sim.schedule(self.period, self._fire)
