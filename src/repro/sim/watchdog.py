"""Simulation liveness watchdog: detect stalls instead of hanging.

Fault profiles can drive a topology into regimes where the simulation
makes no forward progress — a permanently-down flap schedule leaves
TCP retransmitting into the void while its timers tick the clock
forward forever, or the event heap drains mid-transfer after an abort.
Without a guard such a run either spins until its horizon (wasting the
cell's entire wall-clock budget) or silently returns partial metrics.

The :class:`LivenessWatchdog` is the opt-in guard.  It mirrors the
invariant checker's wiring (:mod:`repro.checks.runtime`): activated
process-wide, components register with it at *construction* time, and
its hooks are piggybacked on the engine's run loop — the watchdog
never schedules events, so ``events_processed`` is bit-identical with
the watchdog on.  When it detects a stall it raises a typed
:class:`~repro.errors.SimulationStalled` carrying a snapshot of every
registered connection's sender state (``snd_una``/``snd_nxt``, flight,
retransmit-timer status) so the failure is diagnosable post mortem.

Stall conditions:

* **no-progress** — simulated time advanced ``stall_after`` seconds
  while at least one registered connection had unfinished work
  (unacked flight, queued-but-unsent bytes, an unacked FIN, or an
  abort) and *no* connection's progress counter moved.
* **queue-drained** — a ``run()`` call ended with the event heap empty
  while some connection still had unfinished work: nothing can ever
  complete it.

This module imports only :mod:`repro.errors`, so ``sim.engine`` and
``tcp.connection`` can consult it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.errors import SimulationStalled

#: Default window (simulated seconds) of zero progress that counts as
#: a stall.  Generous against delayed handshakes and coarse timeouts:
#: a healthy connection acknowledges *something* well within this.
DEFAULT_STALL_AFTER = 30.0

#: How many engine events pass between progress audits.  Purely a
#: constant-factor knob: audits read state and schedule nothing.
DEFAULT_CHECK_EVERY = 64

_active: Optional["LivenessWatchdog"] = None


class LivenessWatchdog:
    """Opt-in stall detector for one simulation run.

    Registered connections must expose ``liveness_progress()`` (a
    monotone counter that moves whenever the connection advances),
    ``has_unfinished_work()`` and ``liveness_snapshot()`` — see
    :class:`repro.tcp.connection.TCPConnection`.
    """

    def __init__(self, stall_after: float = DEFAULT_STALL_AFTER,
                 check_every: int = DEFAULT_CHECK_EVERY):
        if stall_after <= 0:
            raise ValueError(
                f"stall_after must be positive, got {stall_after}")
        self.stall_after = stall_after
        self.check_every = max(1, int(check_every))
        self._connections: List[Any] = []
        self._tick = 0
        self._last_progress = -1
        self._since = 0.0

    # ------------------------------------------------------------------
    # Registration (construction-time, like the invariant checker)
    # ------------------------------------------------------------------
    def register_simulator(self, sim) -> None:
        """A fresh simulator starts a fresh liveness episode."""
        self._connections = []
        self._tick = 0
        self._last_progress = -1
        self._since = sim.now

    def register_connection(self, conn) -> None:
        self._connections.append(conn)

    # ------------------------------------------------------------------
    # Progress model
    # ------------------------------------------------------------------
    def _progress(self) -> int:
        total = 0
        for conn in self._connections:
            total += conn.liveness_progress()
        return total

    def _unfinished(self) -> List[Any]:
        return [c for c in self._connections if c.has_unfinished_work()]

    def snapshot(self) -> List[Dict[str, Any]]:
        """Per-connection diagnostic state, unfinished connections first."""
        snap = [c.liveness_snapshot() for c in self._connections]
        snap.sort(key=lambda entry: (not entry.get("unfinished"),
                                     str(entry.get("flow"))))
        return snap

    # ------------------------------------------------------------------
    # Engine hooks (piggybacked on the run loop; never scheduled)
    # ------------------------------------------------------------------
    def on_event(self, sim) -> None:
        """Periodic progress audit; raises on a no-progress window."""
        self._tick += 1
        if self._tick % self.check_every:
            return
        progress = self._progress()
        if progress != self._last_progress:
            self._last_progress = progress
            self._since = sim.now
            return
        if not self._unfinished():
            self._since = sim.now
            return
        stalled_for = sim.now - self._since
        if stalled_for >= self.stall_after:
            raise SimulationStalled("no-progress", sim.now,
                                    stalled_for=stalled_for,
                                    snapshot=self.snapshot())

    def on_run_end(self, sim) -> None:
        """Drained-heap audit: unfinished work that nothing can finish."""
        if sim.pending_events == 0 and self._unfinished():
            raise SimulationStalled("queue-drained", sim.now,
                                    snapshot=self.snapshot())


# ----------------------------------------------------------------------
# Process-wide activation, mirroring repro.checks.runtime
# ----------------------------------------------------------------------

def active() -> Optional[LivenessWatchdog]:
    """The currently active watchdog, or ``None``."""
    return _active


def activate(watchdog: LivenessWatchdog) -> LivenessWatchdog:
    """Install *watchdog* as the process-wide active watchdog."""
    global _active
    if _active is not None:
        raise RuntimeError("a liveness watchdog is already active")
    _active = watchdog
    return _active


def deactivate() -> None:
    """Remove the active watchdog (idempotent)."""
    global _active
    _active = None


@contextmanager
def watching(watchdog: Optional[LivenessWatchdog] = None,
             stall_after: float = DEFAULT_STALL_AFTER):
    """Context manager: run a block with an active watchdog.

    ::

        with watching(stall_after=10.0):
            ... build topology, run ...   # raises SimulationStalled
    """
    if watchdog is None:
        watchdog = LivenessWatchdog(stall_after=stall_after)
    activate(watchdog)
    try:
        yield watchdog
    finally:
        deactivate()
