"""Discrete-event simulation core: scheduler, RNG streams, timers."""

from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicTimer
from repro.sim.rng import RngRegistry

__all__ = ["Event", "Simulator", "PeriodicTimer", "RngRegistry"]
