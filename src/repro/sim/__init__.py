"""Discrete-event simulation core: scheduler, RNG streams, timers."""

from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicTimer
from repro.sim.rng import RngRegistry
from repro.sim.watchdog import LivenessWatchdog, watching

__all__ = ["Event", "LivenessWatchdog", "PeriodicTimer", "RngRegistry",
           "Simulator", "watching"]
