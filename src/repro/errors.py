"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Configuration mistakes raise
:class:`ConfigurationError` at construction time rather than surfacing
as confusing behaviour mid-simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class InvariantViolation(SimulationError):
    """A runtime invariant check failed.

    Raised (or collected) by :class:`repro.checks.InvariantChecker`.
    Carries enough structure to locate the failure without a debugger:
    the invariant's name, the simulated time, the subject component
    (queue/channel/connection label) and, where applicable, the flow.
    """

    def __init__(self, invariant: str, sim_time: float, subject: str = "",
                 flow: object = None, detail: str = ""):
        self.invariant = invariant
        self.sim_time = sim_time
        self.subject = subject
        self.flow = flow
        self.detail = detail
        where = subject or (str(flow) if flow is not None else "?")
        message = f"[t={sim_time:.6f}] {invariant} violated at {where}"
        if flow is not None and subject:
            message += f" (flow {flow})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class RoutingError(ReproError):
    """A packet could not be routed to its destination."""


class ProtocolError(ReproError):
    """A TCP endpoint received a segment it cannot process."""
