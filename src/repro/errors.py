"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Configuration mistakes raise
:class:`ConfigurationError` at construction time rather than surfacing
as confusing behaviour mid-simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed or wired with invalid parameters.

    Also a :class:`ValueError`: callers validating user-supplied specs
    (CLI fault strings, plan fields) can catch the stdlib type without
    importing this module.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class InvariantViolation(SimulationError):
    """A runtime invariant check failed.

    Raised (or collected) by :class:`repro.checks.InvariantChecker`.
    Carries enough structure to locate the failure without a debugger:
    the invariant's name, the simulated time, the subject component
    (queue/channel/connection label) and, where applicable, the flow.
    """

    def __init__(self, invariant: str, sim_time: float, subject: str = "",
                 flow: object = None, detail: str = ""):
        self.invariant = invariant
        self.sim_time = sim_time
        self.subject = subject
        self.flow = flow
        self.detail = detail
        where = subject or (str(flow) if flow is not None else "?")
        message = f"[t={sim_time:.6f}] {invariant} violated at {where}"
        if flow is not None and subject:
            message += f" (flow {flow})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class SimulationStalled(SimulationError):
    """The liveness watchdog detected a stalled simulation.

    Raised by :class:`repro.sim.watchdog.LivenessWatchdog` instead of
    letting a run spin (or silently drain) forever.  ``reason`` is
    ``"no-progress"`` (simulated time kept advancing but no registered
    connection moved a byte for ``stalled_for`` seconds) or
    ``"queue-drained"`` (the event heap emptied while transfers were
    unfinished).  ``snapshot`` is a list of per-connection state dicts
    (``snd_una``/``snd_nxt``, flight, timer status, ...) captured at
    detection time for post-mortem diagnosis.
    """

    def __init__(self, reason: str, sim_time: float,
                 stalled_for: float = 0.0, snapshot: object = None):
        self.reason = reason
        self.sim_time = sim_time
        self.stalled_for = stalled_for
        self.snapshot = list(snapshot) if snapshot else []
        message = f"[t={sim_time:.6f}] simulation stalled ({reason})"
        if reason == "no-progress":
            message += (f": no connection progress for "
                        f"{stalled_for:.1f}s of simulated time")
        elif reason == "queue-drained":
            message += ": event queue drained with transfers unfinished"
        if self.snapshot:
            message += f" [{len(self.snapshot)} connection(s) snapshotted]"
        super().__init__(message)


class RoutingError(ReproError):
    """A packet could not be routed to its destination."""


class ProtocolError(ReproError):
    """A TCP endpoint received a segment it cannot process."""
