"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Configuration mistakes raise
:class:`ConfigurationError` at construction time rather than surfacing
as confusing behaviour mid-simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class RoutingError(ReproError):
    """A packet could not be routed to its destination."""


class ProtocolError(ReproError):
    """A TCP endpoint received a segment it cannot process."""
