"""Seeded ask/tell search strategies.

Every strategy follows the same two-call protocol the driver speaks:

* :meth:`Strategy.ask` proposes a batch of candidate points;
* :meth:`Strategy.tell` feeds back ``(point, fitness)`` pairs, where
  fitness is already **maximization-normalized** by the driver (the
  objective's ``min`` direction is sign-flipped before it gets here)
  and ``None`` marks a failed evaluation.

The driver may truncate an asked batch to the remaining budget, so a
strategy can never assume it hears back about everything it proposed.

Determinism contract: a strategy owns a single ``random.Random(seed)``
and consumes it only inside ``ask``/``tell``, so the full proposal
sequence is a pure function of ``(space, seed, fitness feedback)`` —
and the fitnesses themselves are deterministic because every cell is
seeded.  Same space + seed + budget ⇒ identical evaluation sequence.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError
from repro.search.space import Point, SearchSpace

Evaluation = Tuple[Point, Optional[float]]

#: Fitness assigned to failed evaluations when a strategy must rank.
FAILED_FITNESS = float("-inf")


class Strategy:
    """Base: seeded proposal state over one search space."""

    name = "?"

    def __init__(self, space: SearchSpace, seed: int):
        self.space = space
        self.seed = seed
        self.rng = random.Random(seed)

    def ask(self) -> List[Point]:
        raise NotImplementedError

    def tell(self, evaluations: Sequence[Evaluation]) -> None:
        raise NotImplementedError


class RandomStrategy(Strategy):
    """Pure seeded random search — the baseline every paper demands."""

    name = "random"

    def __init__(self, space: SearchSpace, seed: int, batch: int = 8):
        super().__init__(space, seed)
        self.batch = batch

    def ask(self) -> List[Point]:
        return [self.space.sample(self.rng) for _ in range(self.batch)]

    def tell(self, evaluations: Sequence[Evaluation]) -> None:
        pass  # memoryless


class GridRefineStrategy(Strategy):
    """Coordinate grid-refine: axial sweeps around the incumbent.

    Each round proposes the incumbent plus ``levels`` values per
    dimension across the current span (categoricals contribute every
    option), re-centers on the best point seen so far, and halves the
    span — a deterministic pattern search that converges onto a local
    basin while the early wide rounds still cover the space.
    """

    name = "grid"

    def __init__(self, space: SearchSpace, seed: int, levels: int = 3):
        super().__init__(space, seed)
        if levels < 2:
            raise ConfigurationError(
                f"grid-refine needs levels >= 2, got {levels}")
        self.levels = levels
        self.span = 1.0
        self.center: Point = space.sample(self.rng)
        self.best_fitness: Optional[float] = None

    def ask(self) -> List[Point]:
        candidates = [dict(self.center)]
        for dim in self.space.dimensions:
            for value in dim.refine(self.center[dim.name], self.span,
                                    self.levels):
                if value == self.center[dim.name]:
                    continue
                point = dict(self.center)
                point[dim.name] = value
                candidates.append(point)
        self.span *= 0.5
        return candidates

    def tell(self, evaluations: Sequence[Evaluation]) -> None:
        for point, fitness in evaluations:
            if fitness is None:
                continue
            if self.best_fitness is None or fitness > self.best_fitness:
                self.best_fitness = fitness
                self.center = dict(point)


class GeneticStrategy(Strategy):
    """Small steady-state genetic search.

    Seeds a random population, then each round breeds ``batch``
    children by tournament selection + per-dimension blend crossover +
    seeded mutation, and keeps the best ``population`` individuals.
    Failed evaluations enter the pool at ``-inf`` so they are bred
    away from, not resampled.
    """

    name = "genetic"

    def __init__(self, space: SearchSpace, seed: int, population: int = 8,
                 batch: int = 4, tournament: int = 3,
                 mutate_p: float = 0.25):
        super().__init__(space, seed)
        if population < 2:
            raise ConfigurationError(
                f"genetic search needs population >= 2, got {population}")
        self.population = population
        self.batch = batch
        self.tournament = tournament
        self.mutate_p = mutate_p
        self.pool: List[Tuple[Point, float]] = []

    def ask(self) -> List[Point]:
        if len(self.pool) < self.population:
            missing = self.population - len(self.pool)
            return [self.space.sample(self.rng) for _ in range(missing)]
        children = []
        for _ in range(self.batch):
            mother = self._select()
            father = self._select()
            child = {dim.name: dim.blend(mother[dim.name], father[dim.name],
                                         self.rng)
                     for dim in self.space.dimensions}
            for dim in self.space.dimensions:
                if self.rng.random() < self.mutate_p:
                    child[dim.name] = dim.mutate(child[dim.name], self.rng)
            children.append(child)
        return children

    def _select(self) -> Point:
        """Tournament: best of k seeded picks (lowest index on ties)."""
        k = min(self.tournament, len(self.pool))
        contenders = sorted(self.rng.sample(range(len(self.pool)), k))
        best = contenders[0]
        for index in contenders[1:]:
            if self.pool[index][1] > self.pool[best][1]:
                best = index
        return self.pool[best][0]

    def tell(self, evaluations: Sequence[Evaluation]) -> None:
        for point, fitness in evaluations:
            self.pool.append(
                (point, FAILED_FITNESS if fitness is None else fitness))
        # Stable sort: ties keep insertion (= evaluation) order, which
        # keeps survivor selection deterministic across runs.
        self.pool.sort(key=lambda entry: -entry[1])
        del self.pool[self.population:]


STRATEGIES: Dict[str, Type[Strategy]] = {
    RandomStrategy.name: RandomStrategy,
    GridRefineStrategy.name: GridRefineStrategy,
    GeneticStrategy.name: GeneticStrategy,
}


def make_strategy(name: str, space: SearchSpace, seed: int,
                  **options) -> Strategy:
    """Instantiate a strategy by registry name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown search strategy {name!r} "
            f"(available: {sorted(STRATEGIES)})") from None
    return cls(space, seed, **options)
