"""Built-in search objectives.

An :class:`Objective` binds together the three things a search needs:
a :class:`~repro.search.space.SearchSpace` to draw points from, a
mapping from a point to registered harness cells, and a scorer that
folds the cells' metrics into one fitness number.  Scores are reported
in the objective's native direction (``max`` or ``min``); the driver
sign-flips for strategies, which always maximize.

* ``vegas_regret`` — maximize Reno−Vegas goodput in a head-to-head
  duel: finds the adversarial scenarios where the paper's headline
  claim inverts.
* ``fairness_cliff`` — minimize the Jain index of a homogeneous
  cohort: finds regimes where same-scheme flows starve each other.
* ``table_calibrate`` — minimize the L2 distance between measured
  Vegas/Reno throughput+retransmit ratios and the paper's Table 2
  targets: finds the bottleneck that best reproduces the published
  numbers.

A scorer returns ``None`` when its cells were quarantined (or the
score is undefined); the driver records the evaluation as failed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.harness.registry import Cell
from repro.search.space import Dimension, Point, SearchSpace

Metrics = Dict[str, Dict[str, float]]


@dataclass(frozen=True)
class Objective:
    """One search objective: space + point→cells mapping + scorer."""

    name: str
    direction: str                 # "max" or "min"
    description: str
    space: SearchSpace
    builder: Callable[[Point], List[Cell]]
    scorer: Callable[[Point, Metrics], Optional[float]]

    def cells_for(self, point: Point) -> List[Cell]:
        """The registered cells one evaluation of *point* runs."""
        return self.builder(point)

    def score(self, point: Point, metrics: Metrics) -> Optional[float]:
        """Fitness in the objective's native direction, or ``None``."""
        return self.scorer(point, metrics)


def _bottleneck_cell(point: Point, schemes: str) -> Cell:
    return Cell.make("search_cohort", schemes=schemes,
                     bw_kbps=point["bw_kbps"], delay_ms=point["delay_ms"],
                     buffers=point["buffers"], size_kb=point["size_kb"],
                     loss=point["loss"], seed=point["seed"])


# ----------------------------------------------------------------------
# vegas_regret
# ----------------------------------------------------------------------

def _vegas_regret_space(quick: bool) -> SearchSpace:
    return SearchSpace.of(
        Dimension.log_uniform("bw_kbps", 50.0, 1000.0),
        Dimension.log_uniform("delay_ms", 2.0, 150.0),
        Dimension.integer("buffers", 2, 50),
        Dimension.choice("size_kb", *((48, 64) if quick
                                      else (128, 300, 600))),
        Dimension.choice("loss", 0.0, 0.01),
        Dimension.integer("seed", 0, 3),
    )


def _vegas_regret_cells(point: Point) -> List[Cell]:
    return [_bottleneck_cell(point, "reno+vegas")]


def _vegas_regret_score(point: Point, metrics: Metrics) -> Optional[float]:
    (m,) = metrics.values()
    return m["f0_throughput_kbps"] - m["f1_throughput_kbps"]


# ----------------------------------------------------------------------
# fairness_cliff
# ----------------------------------------------------------------------

def _fairness_cliff_space(quick: bool) -> SearchSpace:
    return SearchSpace.of(
        Dimension.choice("scheme", "vegas", "reno"),
        Dimension.integer("flows", 2, 3 if quick else 6),
        Dimension.log_uniform("bw_kbps", 50.0, 800.0),
        Dimension.log_uniform("delay_ms", 2.0, 100.0),
        Dimension.integer("buffers", 2, 40),
        Dimension.choice("size_kb", *((48,) if quick else (128, 300))),
        Dimension.choice("loss", 0.0, 0.01),
        Dimension.integer("seed", 0, 3),
    )


def _fairness_cliff_cells(point: Point) -> List[Cell]:
    schemes = "+".join([point["scheme"]] * point["flows"])
    return [_bottleneck_cell(point, schemes)]


def _fairness_cliff_score(point: Point, metrics: Metrics) -> Optional[float]:
    (m,) = metrics.values()
    return m["fairness_index"]


# ----------------------------------------------------------------------
# table_calibrate
# ----------------------------------------------------------------------

#: Paper Table 2 targets, expressed as Vegas/Reno ratios so the
#: calibration is scale-free (the table's absolute numbers depend on
#: the tcplib background mix, which a 2-flow cohort cannot reproduce).
def _table2_targets() -> Dict[str, float]:
    from repro.experiments.background import PAPER_TABLE2

    throughput = PAPER_TABLE2["Throughput (KB/s)"]
    retransmit = PAPER_TABLE2["Retransmissions (KB)"]
    return {
        "throughput_ratio": throughput["vegas-1,3"] / throughput["reno"],
        "retransmit_ratio": retransmit["vegas-1,3"] / retransmit["reno"],
    }


def _table_calibrate_space(quick: bool) -> SearchSpace:
    return SearchSpace.of(
        Dimension.log_uniform("bw_kbps", 100.0, 400.0),
        Dimension.log_uniform("delay_ms", 20.0, 80.0),
        Dimension.integer("buffers", 5, 30),
        Dimension.choice("size_kb", *((64,) if quick else (300, 600))),
        Dimension.choice("loss", 0.0),
        Dimension.integer("seed", 0, 2),
    )


def _table_calibrate_cells(point: Point) -> List[Cell]:
    return [_bottleneck_cell(point, "reno+reno"),
            _bottleneck_cell(point, "vegas+vegas")]


def _cohort_means(metrics: Dict[str, float]) -> Dict[str, float]:
    flows = int(metrics["flows"])
    return {
        "throughput": sum(metrics[f"f{i}_throughput_kbps"]
                          for i in range(flows)) / flows,
        "retransmit": sum(metrics[f"f{i}_retransmit_kb"]
                          for i in range(flows)) / flows,
    }


def _table_calibrate_score(point: Point,
                           metrics: Metrics) -> Optional[float]:
    reno_key = next(k for k in metrics if "schemes=reno" in k)
    vegas_key = next(k for k in metrics if "schemes=vegas" in k)
    reno = _cohort_means(metrics[reno_key])
    vegas = _cohort_means(metrics[vegas_key])
    if reno["throughput"] <= 0:
        return None  # ratio undefined — not a usable calibration point
    targets = _table2_targets()
    thr_err = (vegas["throughput"] / reno["throughput"]
               - targets["throughput_ratio"])
    # +1 KB regularizer: lossless corners (zero Reno retransmissions)
    # stay scoreable instead of failing the point, and still land far
    # from the paper's 0.49 target unless Vegas also retransmits less.
    retx_err = ((vegas["retransmit"] + 1.0) / (reno["retransmit"] + 1.0)
                - targets["retransmit_ratio"])
    return math.sqrt(thr_err * thr_err + retx_err * retx_err)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_OBJECTIVES: Dict[str, Dict[str, Any]] = {
    "vegas_regret": {
        "direction": "max",
        "description": "maximize Reno minus Vegas goodput (KB/s) in a "
                       "head-to-head duel — adversarial scenarios where "
                       "the paper's claim inverts",
        "space": _vegas_regret_space,
        "builder": _vegas_regret_cells,
        "scorer": _vegas_regret_score,
    },
    "fairness_cliff": {
        "direction": "min",
        "description": "minimize the Jain fairness index of a "
                       "homogeneous cohort — regimes where same-scheme "
                       "flows starve each other",
        "space": _fairness_cliff_space,
        "builder": _fairness_cliff_cells,
        "scorer": _fairness_cliff_score,
    },
    "table_calibrate": {
        "direction": "min",
        "description": "minimize L2 distance between measured "
                       "Vegas/Reno throughput+retransmit ratios and the "
                       "paper's Table 2 targets",
        "space": _table_calibrate_space,
        "builder": _table_calibrate_cells,
        "scorer": _table_calibrate_score,
    },
}

#: Sorted objective names (the CLI's --objective choices).
OBJECTIVES = tuple(sorted(_OBJECTIVES))


def get_objective(name: str, quick: bool = False) -> Objective:
    """Look up a built-in objective (``quick`` shrinks its space)."""
    try:
        spec = _OBJECTIVES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown search objective {name!r} "
            f"(available: {list(OBJECTIVES)})") from None
    return Objective(name=name, direction=spec["direction"],
                     description=spec["description"],
                     space=spec["space"](quick),
                     builder=spec["builder"], scorer=spec["scorer"])
