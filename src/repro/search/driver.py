"""The search loop, the ``repro-search/v1`` artifact, the leaderboard.

:func:`run_search` is ask/evaluate/tell around the supervised harness:
every candidate point maps to registered cells
(:meth:`~repro.search.objectives.Objective.cells_for`) which run
through :func:`repro.harness.runner.run_cells` — so the content-hash
cache, per-cell timeouts/retries/quarantine, telemetry, and the
distributed backend all work unchanged.  Cell results are memoized by
key for the lifetime of the search, so a strategy revisiting a point
(genetic convergence does this constantly) costs nothing even with the
disk cache off.

Artifacts: the aggregate :class:`~repro.harness.runner.RunReport` of
every unique cell feeds the standard harness document (``--json``,
gateable with ``repro check``); the search-level story — points,
fitnesses, ranking — is written as a separate ``repro-search/v1``
document plus a Markdown leaderboard rendered through
:func:`repro.obs.report.markdown_table`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.harness.registry import Cell
from repro.harness.runner import RunReport, run_cells
from repro.obs.report import markdown_table
from repro.search.objectives import Objective
from repro.search.space import Point
from repro.search.strategies import make_strategy

SEARCH_SCHEMA = "repro-search/v1"

#: Hard cap on consecutive ask() rounds that propose nothing runnable —
#: guards the loop against a strategy that stalls below budget.
MAX_IDLE_ROUNDS = 3


@dataclass
class Evaluation:
    """One scored point: index in evaluation order, cells, fitness."""

    index: int
    point: Point
    cells: List[str]
    fitness: Optional[float]       # objective-native direction; None=failed

    @property
    def failed(self) -> bool:
        return self.fitness is None


@dataclass
class SearchOutcome:
    """Everything one search run produced."""

    objective: Objective
    strategy: str
    budget: int
    seed: int
    evaluations: List[Evaluation] = field(default_factory=list)
    report: RunReport = field(default_factory=RunReport)

    def ranked(self) -> List[Evaluation]:
        """Successful evaluations, best first, deduped by point.

        Ties break on evaluation index, so the ranking is reproducible
        run to run; duplicate points (a converged genetic pool) keep
        their first appearance only.
        """
        sign = 1.0 if self.objective.direction == "max" else -1.0
        seen = set()
        unique = []
        for ev in sorted((e for e in self.evaluations if not e.failed),
                         key=lambda e: (-sign * e.fitness, e.index)):
            key = tuple(sorted(ev.point.items()))
            if key not in seen:
                seen.add(key)
                unique.append(ev)
        return unique

    @property
    def best(self) -> Optional[Evaluation]:
        ranked = self.ranked()
        return ranked[0] if ranked else None


def run_search(objective: Objective, strategy: str = "random",
               budget: int = 20, seed: int = 0, *,
               jobs: Optional[int] = None, cache=None,
               progress: Optional[Callable[[str], None]] = None,
               checks: Any = False, timeout_s: Optional[float] = None,
               retries: int = 1, watchdog: Any = False,
               telemetry: Optional[str] = None, backend: str = "local",
               dist_options: Optional[Dict[str, Any]] = None,
               ) -> SearchOutcome:
    """Search *objective*'s space for *budget* evaluations."""
    if budget < 1:
        raise ReproError(f"search budget must be >= 1, got {budget}")
    strat = make_strategy(strategy, objective.space, seed)
    sign = 1.0 if objective.direction == "max" else -1.0
    outcome = SearchOutcome(objective=objective, strategy=strategy,
                            budget=budget, seed=seed)
    report = outcome.report
    report.backend = backend
    results_by_key: Dict[str, Any] = {}
    failed_keys = set()
    idle_rounds = 0

    while len(outcome.evaluations) < budget:
        batch = strat.ask()[:budget - len(outcome.evaluations)]
        if not batch:
            idle_rounds += 1
            if idle_rounds >= MAX_IDLE_ROUNDS:
                break
            continue
        idle_rounds = 0

        pending: List[Cell] = []
        queued = set()
        for point in batch:
            for cell in objective.cells_for(point):
                if (cell.key not in results_by_key
                        and cell.key not in failed_keys
                        and cell.key not in queued):
                    queued.add(cell.key)
                    pending.append(cell)
        if pending:
            round_report = run_cells(
                pending, jobs=jobs, cache=cache, progress=progress,
                checks=checks, timeout_s=timeout_s, retries=retries,
                watchdog=watchdog, telemetry=telemetry, backend=backend,
                dist_options=dist_options)
            for result in round_report.results:
                results_by_key[result.key] = result
            for failure in round_report.failures:
                failed_keys.add(failure.key)
            report.results.extend(round_report.results)
            report.failures.extend(round_report.failures)
            report.cache_hits += round_report.cache_hits
            report.cache_misses += round_report.cache_misses
            report.jobs = round_report.jobs
            report.elapsed_s += round_report.elapsed_s
            if round_report.interrupted:
                report.interrupted = True

        scored = _score_batch(objective, batch, results_by_key, outcome)
        strat.tell([(ev.point,
                     None if ev.fitness is None else sign * ev.fitness)
                    for ev in scored])
        if report.interrupted:
            break

    report.results.sort(key=lambda result: result.key)
    return outcome


def _score_batch(objective: Objective, batch: List[Point],
                 results_by_key: Dict[str, Any],
                 outcome: SearchOutcome) -> List[Evaluation]:
    scored = []
    for point in batch:
        cells = objective.cells_for(point)
        keys = [cell.key for cell in cells]
        fitness = None
        if all(key in results_by_key for key in keys):
            fitness = objective.score(
                point, {key: results_by_key[key].metrics for key in keys})
        evaluation = Evaluation(index=len(outcome.evaluations),
                                point=dict(point), cells=keys,
                                fitness=fitness)
        outcome.evaluations.append(evaluation)
        scored.append(evaluation)
    return scored


# ----------------------------------------------------------------------
# The registry's `search` cell family: the deterministic cell list a
# random-strategy prefix of a search would evaluate.  Gives tests and
# smoke jobs a harness-native way to materialize search cells without
# running the loop.
# ----------------------------------------------------------------------

def family_preview_cells(objective_name: str, count: int = 4,
                         seed: int = 0, quick: bool = False) -> List[Cell]:
    """First *count* random points' cells, deduped, in draw order."""
    from repro.search.objectives import get_objective

    if count < 1:
        raise ReproError(f"search family count must be >= 1, got {count}")
    objective = get_objective(objective_name, quick=quick)
    strat = make_strategy("random", objective.space, seed)
    cells: List[Cell] = []
    seen = set()
    points: List[Point] = []
    while len(points) < count:
        points.extend(strat.ask())
    for point in points[:count]:
        for cell in objective.cells_for(point):
            if cell.key not in seen:
                seen.add(cell.key)
                cells.append(cell)
    return cells


# ----------------------------------------------------------------------
# Artifact
# ----------------------------------------------------------------------

def build_search_document(outcome: SearchOutcome, top: int = 10,
                          src_hash: Optional[str] = None) -> Dict[str, Any]:
    """The JSON-shaped ``repro-search/v1`` document."""
    report = outcome.report

    def entry(ev: Evaluation) -> Dict[str, Any]:
        return {"index": ev.index, "point": dict(ev.point),
                "cells": list(ev.cells), "fitness": ev.fitness}

    ranked = outcome.ranked()
    doc: Dict[str, Any] = {
        "schema_version": SEARCH_SCHEMA,
        "objective": {"name": outcome.objective.name,
                      "direction": outcome.objective.direction,
                      "description": outcome.objective.description},
        "strategy": outcome.strategy,
        "budget": outcome.budget,
        "seed": outcome.seed,
        "space": outcome.objective.space.describe(),
        "run": {
            "evaluations": len(outcome.evaluations),
            "failed_evaluations": sum(1 for e in outcome.evaluations
                                      if e.failed),
            "unique_cells": len({k for e in outcome.evaluations
                                 for k in e.cells}),
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "quarantined": len(report.failures),
            "elapsed_s": round(report.elapsed_s, 3),
            "backend": report.backend,
            "interrupted": report.interrupted,
        },
        "evaluations": [entry(ev) for ev in outcome.evaluations],
        "best": entry(ranked[0]) if ranked else None,
        "leaderboard": [entry(ev) for ev in ranked[:top]],
    }
    if src_hash:
        doc["src_hash"] = src_hash
    return doc


def write_search_document(path: str, doc: Dict[str, Any]) -> None:
    """Atomic write (same tmp+rename discipline as harness artifacts)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_search_document(path: str) -> Dict[str, Any]:
    """Read and schema-check a search artifact."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read search artifact {path!r}: {exc}") \
            from exc
    if doc.get("schema_version") != SEARCH_SCHEMA:
        raise ReproError(
            f"search artifact {path!r} has schema "
            f"{doc.get('schema_version')!r}, expected {SEARCH_SCHEMA!r}")
    return doc


# ----------------------------------------------------------------------
# Leaderboard
# ----------------------------------------------------------------------

def _point_label(point: Point) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(point.items()))


def render_leaderboard(outcome: SearchOutcome, top: int = 10) -> str:
    """Markdown leaderboard of the top-*top* scored points."""
    objective = outcome.objective
    report = outcome.report
    ranked = outcome.ranked()[:top]
    failed = sum(1 for e in outcome.evaluations if e.failed)
    lines = [f"# Search leaderboard — {objective.name}", ""]
    lines.append(f"- objective: {objective.description} "
                 f"(**{objective.direction}imize**)")
    lines.append(f"- strategy: **{outcome.strategy}**, "
                 f"budget {outcome.budget}, seed {outcome.seed}")
    lines.append(f"- evaluations: {len(outcome.evaluations)} "
                 f"({failed} failed), "
                 f"cache: {report.cache_hits} hits / "
                 f"{report.cache_misses} misses")
    if report.failures:
        lines.append(f"- quarantined cells: {len(report.failures)}")
    lines.append("")
    if not ranked:
        lines.append("(no successful evaluations)")
        lines.append("")
        return "\n".join(lines)
    lines.extend(markdown_table(
        ["#", "fitness", "eval", "point"],
        [[rank, f"{ev.fitness:.3f}", ev.index, _point_label(ev.point)]
         for rank, ev in enumerate(ranked, start=1)]))
    lines.append("")
    return "\n".join(lines)
