"""The ``search_cohort`` cell runner: a parameterized arena cohort.

A search point names the bottleneck directly — bandwidth, one-way
delay, queue depth, per-flow transfer size, stochastic loss — instead
of picking a scenario from the named registry.  The runner builds an
anonymous :class:`~repro.arena.scenarios.Scenario` from those numbers
(:func:`repro.arena.scenarios.custom_scenario`) and pushes one flow
per scheme through it with :func:`repro.arena.cells.run_cohort`, so a
search evaluation exercises exactly the simulation path the arena and
paper experiments use.

``schemes`` is a ``"+"``-joined flow list (``"reno+vegas"``,
``"vegas+vegas+vegas"``).  ``+`` is the separator because scheme names
themselves contain commas (``vegas-1,3``) and cell keys use ``/``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.metrics.fairness import jain_fairness_index

#: Upper bound on cohort size: keeps a pathological search point from
#: turning one evaluation into a many-minutes simulation.
MAX_FLOWS = 16


def parse_schemes(schemes: str) -> List[str]:
    """Split and validate a ``"+"``-joined scheme list."""
    flows = [name.strip() for name in str(schemes).split("+") if name.strip()]
    if not flows:
        raise ConfigurationError(
            f"search cohort needs >= 1 scheme, got {schemes!r}")
    if len(flows) > MAX_FLOWS:
        raise ConfigurationError(
            f"search cohort capped at {MAX_FLOWS} flows, got {len(flows)}")
    return flows


def cohort_horizon(flows: int, size_kb: int, bw_kbps: float) -> float:
    """Deterministic horizon: ~4x the cohort's ideal drain time.

    A pure function of the point (never a cell parameter), so the cell
    key stays minimal while every backend computes the same cutoff.
    """
    drain_s = 4.0 * flows * size_kb / bw_kbps
    return min(240.0, max(30.0, 10.0 + drain_s))


def run_search_cohort(schemes: str, bw_kbps: float, delay_ms: float,
                      buffers: int, size_kb: int, loss: float,
                      seed: int) -> Dict[str, float]:
    """Execute one search point; flat per-flow metrics + fairness."""
    from repro.arena.cells import _flow_metrics, run_cohort
    from repro.arena.scenarios import custom_scenario

    flows = parse_schemes(schemes)
    spec = custom_scenario(
        bw_kbps, delay_ms, buffers, size_kb, loss=loss,
        horizon=cohort_horizon(len(flows), size_kb, bw_kbps),
        name="search")
    outcomes = run_cohort(flows, spec, seed=seed)
    metrics: Dict[str, float] = {"flows": float(len(flows))}
    for i, flow in enumerate(outcomes):
        metrics.update(_flow_metrics(f"f{i}", flow))
    metrics["fairness_index"] = jain_fairness_index(
        [flow.throughput_kbps for flow in outcomes])
    return metrics
