"""Frozen, hashable search spaces over scenario parameters.

A :class:`SearchSpace` is a tuple of named :class:`Dimension`\\ s; a
**point** is a plain ``{name: value}`` dict with one entry per
dimension.  Dimensions know how to sample, clip, mutate, blend, and
enumerate themselves, so strategies stay generic over the space.

Continuous samples are quantized to four significant digits.  Cell
keys render floats with ``format(v, "g")``, so quantizing here
guarantees a point's values round-trip bit-identically through the
cell key — which is what makes the content-hash cache and the
regression baseline line up with the search artifact.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigurationError

#: Dimension kinds.
UNIFORM = "uniform"
LOG = "log"
INTEGER = "int"
CHOICE = "choice"

Point = Dict[str, Any]


def _quantize(value: float) -> float:
    """Round to 4 significant digits (stable through cell-key ``%g``)."""
    return float(format(value, ".4g"))


@dataclass(frozen=True)
class Dimension:
    """One named axis of a search space.

    Build through the factory classmethods (:meth:`uniform`,
    :meth:`log_uniform`, :meth:`integer`, :meth:`choice`) — they
    validate bounds once so every later operation can assume a
    well-formed axis.
    """

    name: str
    kind: str
    low: float = 0.0
    high: float = 0.0
    choices: Tuple[Any, ...] = ()

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, name: str, low: float, high: float) -> "Dimension":
        """A continuous axis sampled uniformly on ``[low, high]``."""
        cls._check_bounds(name, low, high)
        return cls(name, UNIFORM, low=float(low), high=float(high))

    @classmethod
    def log_uniform(cls, name: str, low: float, high: float) -> "Dimension":
        """A continuous axis sampled uniformly in log space."""
        cls._check_bounds(name, low, high)
        if low <= 0:
            raise ConfigurationError(
                f"dimension {name!r}: log-uniform bounds must be "
                f"positive, got low={low!r}")
        return cls(name, LOG, low=float(low), high=float(high))

    @classmethod
    def integer(cls, name: str, low: int, high: int) -> "Dimension":
        """An integer axis sampled uniformly on ``[low, high]``."""
        cls._check_bounds(name, low, high)
        return cls(name, INTEGER, low=int(low), high=int(high))

    @classmethod
    def choice(cls, name: str, *options: Any) -> "Dimension":
        """A categorical axis over an explicit option tuple."""
        if len(options) < 1:
            raise ConfigurationError(
                f"dimension {name!r}: choice needs at least one option")
        return cls(name, CHOICE, choices=tuple(options))

    @staticmethod
    def _check_bounds(name: str, low: float, high: float) -> None:
        if not low < high:
            raise ConfigurationError(
                f"dimension {name!r}: bounds must satisfy low < high, "
                f"got [{low!r}, {high!r}]")

    # ------------------------------------------------------------------
    # Operations (all deterministic given *rng*)
    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Any:
        """One seeded draw from the axis."""
        if self.kind == UNIFORM:
            return _quantize(rng.uniform(self.low, self.high))
        if self.kind == LOG:
            return _quantize(math.exp(rng.uniform(math.log(self.low),
                                                  math.log(self.high))))
        if self.kind == INTEGER:
            return rng.randint(int(self.low), int(self.high))
        return self.choices[rng.randrange(len(self.choices))]

    def clip(self, value: Any) -> Any:
        """Project *value* back inside the axis."""
        if self.kind == CHOICE:
            return value if value in self.choices else self.choices[0]
        if self.kind == INTEGER:
            return int(min(max(value, self.low), self.high))
        return _quantize(min(max(value, self.low), self.high))

    def mutate(self, value: Any, rng: random.Random,
               scale: float = 0.25) -> Any:
        """A seeded local perturbation of *value* (genetic mutation)."""
        if self.kind == CHOICE:
            return self.choices[rng.randrange(len(self.choices))]
        if self.kind == INTEGER:
            span = max(1, round(scale * (self.high - self.low)))
            return self.clip(value + rng.randint(-span, span))
        if self.kind == LOG:
            spread = scale * (math.log(self.high) - math.log(self.low))
            return self.clip(math.exp(math.log(max(value, self.low))
                                      + rng.gauss(0.0, spread)))
        return self.clip(value + rng.gauss(0.0,
                                           scale * (self.high - self.low)))

    def blend(self, a: Any, b: Any, rng: random.Random) -> Any:
        """Seeded crossover of two parent values."""
        if self.kind == CHOICE:
            return a if rng.random() < 0.5 else b
        t = rng.random()
        if self.kind == INTEGER:
            return self.clip(round(t * a + (1.0 - t) * b))
        if self.kind == LOG:
            return self.clip(math.exp(t * math.log(max(a, self.low))
                                      + (1.0 - t)
                                      * math.log(max(b, self.low))))
        return self.clip(t * a + (1.0 - t) * b)

    def refine(self, center: Any, span: float, levels: int) -> List[Any]:
        """Deterministic candidate values around *center*.

        *span* is the surviving fraction of the axis (grid-refine
        halves it every round); categorical axes ignore it and always
        return every option.
        """
        if self.kind == CHOICE:
            return list(self.choices)
        if levels < 2:
            return [self.clip(center)]
        if self.kind == LOG:
            lo, hi = math.log(self.low), math.log(self.high)
            mid = math.log(max(center, self.low))
            half = span * (hi - lo) / 2.0
            points = [mid - half + i * (2.0 * half) / (levels - 1)
                      for i in range(levels)]
            values = [self.clip(math.exp(p)) for p in points]
        else:
            half = span * (self.high - self.low) / 2.0
            points = [center - half + i * (2.0 * half) / (levels - 1)
                      for i in range(levels)]
            values = [self.clip(p) for p in points]
        unique: List[Any] = []
        for value in values:
            if value not in unique:
                unique.append(value)
        return unique

    def describe(self) -> Dict[str, Any]:
        """JSON-shaped description for the search artifact."""
        doc: Dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.kind == CHOICE:
            doc["choices"] = list(self.choices)
        else:
            doc["low"], doc["high"] = self.low, self.high
        return doc


@dataclass(frozen=True)
class SearchSpace:
    """An ordered, hashable tuple of dimensions."""

    dimensions: Tuple[Dimension, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ConfigurationError("a search space needs >= 1 dimension")
        names = [dim.name for dim in self.dimensions]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate dimension names in search space: {names}")

    @classmethod
    def of(cls, *dimensions: Dimension) -> "SearchSpace":
        return cls(tuple(dimensions))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(dim.name for dim in self.dimensions)

    def dimension(self, name: str) -> Dimension:
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise ConfigurationError(
            f"search space has no dimension {name!r} "
            f"(axes: {list(self.names)})")

    def sample(self, rng: random.Random) -> Point:
        """One seeded point, dimension order fixed by the space."""
        return {dim.name: dim.sample(rng) for dim in self.dimensions}

    def freeze(self, point: Point) -> Tuple[Tuple[str, Any], ...]:
        """A hashable identity for *point* (dedup / leaderboard keys)."""
        return tuple(sorted(point.items()))

    def describe(self) -> List[Dict[str, Any]]:
        return [dim.describe() for dim in self.dimensions]
