"""Black-box scenario search over the harness (``repro search``).

Treats one (or a few) harness cell evaluations as a seeded fitness
function and searches topology/scenario/scheme parameter space for
interesting regimes: scenarios where Vegas loses to Reno
(``vegas_regret``), fairness collapses (``fairness_cliff``), or the
simulator best matches the paper's published tables
(``table_calibrate``).

The subsystem splits the way the harness does:

* :mod:`repro.search.space` — frozen, hashable parameter spaces with
  uniform / log-uniform / integer / choice dimensions;
* :mod:`repro.search.strategies` — pluggable ask/tell strategies
  (seeded random, coordinate grid-refine, steady-state genetic), all
  deterministic given their seed;
* :mod:`repro.search.objectives` — the built-in objectives: each maps a
  point to registered cells and scores the resulting metrics;
* :mod:`repro.search.cells` — the ``search_cohort`` cell runner that
  executes a parameterized arena cohort;
* :mod:`repro.search.driver` — the loop: ask a batch, run the cells
  through :func:`repro.harness.runner.run_cells` (content-hash cache
  and ``--backend dist`` work unchanged), score, tell; plus the
  ``repro-search/v1`` artifact and the Markdown leaderboard;
* :mod:`repro.search.command` — ``python -m repro search``.
"""

from repro.search.objectives import OBJECTIVES, get_objective
from repro.search.space import Dimension, SearchSpace
from repro.search.strategies import STRATEGIES, make_strategy

__all__ = [
    "Dimension",
    "SearchSpace",
    "STRATEGIES",
    "make_strategy",
    "OBJECTIVES",
    "get_objective",
]
