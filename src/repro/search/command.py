"""The ``python -m repro search`` command.

Runs a black-box scenario search: points drawn by a seeded strategy,
each evaluated as registered harness cells through the supervised
runner — content-hash cache, per-cell timeouts/retries/quarantine, and
the distributed backend all apply exactly as in ``run-all``.

::

    python -m repro search --objective vegas_regret --strategy genetic \\
        --budget 40 --seed 1
    python -m repro search --objective fairness_cliff --strategy grid \\
        --budget 24 --json search.json --result search_result.json
    python -m repro search --objective vegas_regret --quick --budget 6 \\
        --out leaderboard.md
    python -m repro search --objective table_calibrate --backend dist \\
        --workers 4 --budget 60

Exit codes: 0 = search completed with at least one scored point,
2 = bad flags/selection, 3 = every evaluation failed, 130 = sweep
interrupted (partial artifacts flushed).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.errors import ReproError


def configure_parser(sub) -> None:
    """Attach the ``search`` subparser to *sub* (a subparsers action)."""
    from repro.harness import supervisor as supervisor_mod
    from repro.search.objectives import OBJECTIVES
    from repro.search.strategies import STRATEGIES

    search = sub.add_parser(
        "search",
        help="black-box scenario search: optimize an objective "
             "(vegas_regret, fairness_cliff, table_calibrate) over "
             "bottleneck parameter space through the supervised harness")
    search.add_argument("--objective", required=True, choices=OBJECTIVES,
                        help="what to optimize (see EXPERIMENTS.md)")
    search.add_argument("--strategy", choices=sorted(STRATEGIES),
                        default="random",
                        help="point-proposal strategy (default random)")
    search.add_argument("--budget", type=int, default=20, metavar="N",
                        help="evaluations to spend (default 20)")
    search.add_argument("--seed", type=int, default=0, metavar="S",
                        help="seed for the strategy's proposal stream; "
                             "same space+seed+budget replays the identical "
                             "evaluation sequence (default 0)")
    search.add_argument("--top", type=int, default=10, metavar="K",
                        help="leaderboard size (default 10)")
    search.add_argument("--quick", action="store_true",
                        help="CI-sized search space: small transfers, "
                             "few flows")
    search.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: cpu count)")
    search.add_argument("--json", metavar="PATH",
                        help="write every evaluated cell as a standard "
                             "harness JSON artifact (gate with "
                             "`repro check`)")
    search.add_argument("--result", metavar="PATH", default=None,
                        help="write the repro-search/v1 result document "
                             "(points, fitnesses, leaderboard) here")
    search.add_argument("--out", metavar="PATH", default=None,
                        help="write the Markdown leaderboard here "
                             "(always printed to stdout)")
    search.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update .repro-cache/")
    search.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache location (default: $REPRO_CACHE_DIR "
                             "or .repro-cache)")
    search.add_argument("--timeout", type=float, metavar="SECONDS",
                        default=supervisor_mod.DEFAULT_TIMEOUT_S,
                        help="per-cell wall-clock deadline (default "
                             f"{supervisor_mod.DEFAULT_TIMEOUT_S:g}s)")
    search.add_argument("--no-timeout", action="store_true",
                        help="run unsupervised in-process (crashes and "
                             "hangs propagate raw)")
    search.add_argument("--retries", type=int, metavar="N",
                        default=supervisor_mod.DEFAULT_RETRIES,
                        help="re-executions before quarantine (default "
                             f"{supervisor_mod.DEFAULT_RETRIES})")
    search.add_argument("--watchdog", nargs="?", type=float,
                        metavar="STALL_SECONDS", const=True, default=False,
                        help="arm the simulation liveness watchdog")
    search.add_argument("--checks", nargs="?", const="raise",
                        choices=("raise", "collect"), default=False,
                        help="run with the runtime invariant checker")
    search.add_argument("--telemetry", metavar="PATH", default=None,
                        help="append the sweep's JSONL telemetry log here")
    search.add_argument("--backend", choices=("local", "dist"),
                        default="local",
                        help="execution backend for each evaluation round")
    search.add_argument("--workers", type=int, default=2, metavar="N",
                        help="[dist] local worker processes (default 2)")
    search.add_argument("--bind", metavar="HOST:PORT", default=None,
                        help="[dist] master listen address")
    search.add_argument("--preload", action="append", default=[],
                        metavar="MODULE",
                        help="[dist] import MODULE in every worker")
    search.set_defaults(fn=main)


def main(args) -> int:
    from repro.harness import artifacts, cache as cache_mod
    from repro.search import driver, objectives

    if args.budget < 1:
        print(f"error: --budget must be >= 1, got {args.budget}",
              file=sys.stderr)
        return 2
    if args.top < 1:
        print(f"error: --top must be >= 1, got {args.top}", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    timeout_s = None if args.no_timeout else args.timeout
    if timeout_s is not None and timeout_s <= 0:
        print(f"error: --timeout must be positive, got {timeout_s}",
              file=sys.stderr)
        return 2

    objective = objectives.get_objective(args.objective, quick=args.quick)

    src_hash = cache_mod.compute_src_hash()
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or cache_mod.default_cache_dir()
        cache = cache_mod.ResultCache(cache_dir, src_hash)

    dist_options = None
    if args.backend == "dist":
        if args.workers < 0:
            print(f"error: --workers must be >= 0, got {args.workers}",
                  file=sys.stderr)
            return 2
        dist_options = {"workers": args.workers, "journal": None,
                        "resume": False, "src_hash": src_hash,
                        "preload": args.preload, "chaos_kill_after": None}
        if args.bind:
            dist_options["bind"] = args.bind

    print(f"search: objective={objective.name} "
          f"({objective.direction}imize), strategy={args.strategy}, "
          f"budget={args.budget}, seed={args.seed}", file=sys.stderr)

    def progress(line: str) -> None:
        print(f"  {line}", file=sys.stderr)

    try:
        outcome = driver.run_search(
            objective, strategy=args.strategy, budget=args.budget,
            seed=args.seed, jobs=args.jobs, cache=cache, progress=progress,
            checks=args.checks, timeout_s=timeout_s, retries=args.retries,
            watchdog=args.watchdog, telemetry=args.telemetry,
            backend=args.backend, dist_options=dist_options)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = outcome.report
    if args.json:
        doc = artifacts.build_document(
            report, mode="search-quick" if args.quick else "search",
            src_hash=src_hash, telemetry=args.telemetry)
        artifacts.write_document(args.json, doc)
    if args.result:
        driver.write_search_document(
            args.result,
            driver.build_search_document(outcome, top=args.top,
                                         src_hash=src_hash))

    board = driver.render_leaderboard(outcome, top=args.top)
    print(board)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(board)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc}", file=sys.stderr)
            return 2
        print(f"leaderboard written to {args.out}", file=sys.stderr)

    failed = sum(1 for ev in outcome.evaluations if ev.failed)
    print(f"{len(outcome.evaluations)} evaluations "
          f"({len(outcome.evaluations) - failed} scored, {failed} failed), "
          f"{len({k for e in outcome.evaluations for k in e.cells})} unique "
          f"cells, {report.elapsed_s:.1f}s harness time; "
          f"cache: {report.cache_hits} hits / {report.cache_misses} misses",
          file=sys.stderr)
    if args.json:
        print(f"JSON artifact: {args.json}", file=sys.stderr)
    if args.result:
        print(f"search result: {args.result}", file=sys.stderr)
    if report.failures:
        print(f"quarantined cells: {len(report.failures)} "
              "(reproduce with `run-all --only <key> --no-timeout`):",
              file=sys.stderr)
        for failure in report.failures:
            print(f"  {failure.key} [{failure.kind}] "
                  f"after {failure.attempts} attempt(s): {failure.message}",
                  file=sys.stderr)
    if report.interrupted:
        print("INTERRUPTED: search drained early; artifacts cover the "
              "settled prefix (exit 130)", file=sys.stderr)
        return 130
    if outcome.best is None:
        print("FAILED: no evaluation produced a score (exit 3)",
              file=sys.stderr)
        return 3
    return 0
