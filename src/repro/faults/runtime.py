"""Process-wide activation of a fault plan.

Mirrors :mod:`repro.checks.runtime`: while a :class:`FaultSession` is
active, every newly built channel whose name matches the plan's target
filter attaches a :class:`~repro.faults.injector.ChannelFaults`.  The
session keeps the injectors so the harness can total their counters
after a run.

This module imports only :mod:`repro.faults.plan` (which has no
networking dependencies), so ``net.link`` can consult it without
import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Union

from repro.faults.plan import FaultPlan

_active: Optional["FaultSession"] = None


class FaultSession:
    """One activation of a plan: the plan plus its live injectors."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injectors: List[object] = []

    def attach(self, channel) -> Optional[object]:
        """Attach an injector to *channel* if the plan targets it."""
        if self.plan.is_null() or not self.plan.matches(channel.name):
            return None
        from repro.faults.injector import ChannelFaults

        injector = ChannelFaults(self.plan, channel)
        self.injectors.append(injector)
        return injector

    def totals(self) -> Dict[str, int]:
        """Summed fault counters across every attached channel."""
        totals: Dict[str, int] = {}
        for injector in self.injectors:
            for key, value in injector.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals


def active() -> Optional[FaultSession]:
    """The active fault session, or ``None``."""
    return _active


def activate(plan: Union[FaultPlan, str]) -> FaultSession:
    """Activate *plan* (a FaultPlan or spec string) process-wide."""
    global _active
    if _active is not None:
        raise RuntimeError("a fault plan is already active")
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _active = FaultSession(plan)
    return _active


def deactivate() -> None:
    """Remove the active fault session (idempotent)."""
    global _active
    _active = None


@contextmanager
def injecting(plan: Union[FaultPlan, str]):
    """Context manager: run a block with *plan* active."""
    session = activate(plan)
    try:
        yield session
    finally:
        deactivate()
