"""Per-channel fault injection.

A :class:`ChannelFaults` sits on one :class:`~repro.net.link.Channel`
between "the last bit left the wire" and "the destination receives the
packet".  The channel calls :meth:`process` instead of delivering
directly; the injector then drops, duplicates, delays or holds the
packet according to its :class:`~repro.faults.plan.FaultPlan`.

Randomness comes from a per-channel ``random.Random`` seeded from
SHA-256 of ``(plan seed, channel name)``, so every channel draws an
independent, reproducible stream: the same plan on the same topology
injects the same faults regardless of how events interleave across
channels.

Fault semantics:

* **corruption-drop** — the packet is discarded at delivery time, as
  if its checksum failed on arrival (counted as ``corrupt_drops``).
* **flap** — the link follows a deterministic up/down schedule; while
  down, arriving packets are discarded (``flap_drops``).
* **duplication** — the packet is delivered, then delivered again
  immediately (``duplicates``).
* **reordering window** — the packet is held; it is released when a
  later packet passes it (arriving behind it) or when a hold timer
  expires, whichever is first (``reorders``).
* **jitter spike** — delivery is postponed by a uniform extra delay in
  ``(0, jitter_max]`` (``delay_spikes``).
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING, List

from repro.faults.plan import FaultPlan
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Channel


def _channel_rng(seed: int, name: str) -> random.Random:
    digest = hashlib.sha256(f"{seed}/{name}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class ChannelFaults:
    """Fault state for one unidirectional channel."""

    def __init__(self, plan: FaultPlan, channel: "Channel"):
        self.plan = plan
        self.channel = channel
        self.rng = _channel_rng(plan.seed, channel.name)
        self._held: List[Packet] = []
        # Counters, also consumed by the invariant checker's link
        # conservation audit (absorbed/extra below).
        self.corrupt_drops = 0
        self.flap_drops = 0
        self.duplicates = 0
        self.reorders = 0
        self.delay_spikes = 0
        self.timer_releases = 0

    # ------------------------------------------------------------------
    # Accounting consumed by the invariant checker
    # ------------------------------------------------------------------
    @property
    def absorbed(self) -> int:
        """Packets the injector destroyed instead of delivering."""
        return self.corrupt_drops + self.flap_drops

    @property
    def extra(self) -> int:
        """Extra deliveries the injector created (duplicates)."""
        return self.duplicates

    @property
    def held(self) -> int:
        """Packets currently parked in a reordering window."""
        return len(self._held)

    def counters(self) -> dict:
        return {
            "corrupt_drops": self.corrupt_drops,
            "flap_drops": self.flap_drops,
            "duplicates": self.duplicates,
            "reorders": self.reorders,
            "delay_spikes": self.delay_spikes,
        }

    # ------------------------------------------------------------------
    # Flap schedule
    # ------------------------------------------------------------------
    def is_down(self, now: float) -> bool:
        """True while the flap schedule has the link down.

        The schedule is a deterministic function of time — the link is
        down for the last ``flap_down`` seconds of every
        ``flap_period`` cycle — so tests and differential runs can
        predict exactly which intervals are dark.
        """
        period = self.plan.flap_period
        down = self.plan.flap_down
        if period <= 0 or down <= 0:
            return False
        return now % period >= period - down

    # ------------------------------------------------------------------
    # The injection point
    # ------------------------------------------------------------------
    def process(self, packet: Packet) -> None:
        """Decide the fate of *packet* at its normal delivery instant."""
        channel = self.channel
        now = channel.sim.now
        if self.is_down(now):
            self.flap_drops += 1
            channel.note_fault_drop(packet)
            return
        if self.plan.drop and self.rng.random() < self.plan.drop:
            self.corrupt_drops += 1
            channel.note_fault_drop(packet)
            return
        if self.plan.reorder and self.rng.random() < self.plan.reorder:
            # Park the packet; a later packet passing it (or the hold
            # timer) releases it, so it arrives out of order but never
            # vanishes.
            self.reorders += 1
            self._held.append(packet)
            channel.sim.schedule_anon(self.plan.reorder_hold,
                                 self._timer_release, packet)
            return
        if self.plan.jitter and self.rng.random() < self.plan.jitter:
            self.delay_spikes += 1
            spike = self.rng.uniform(0.0, self.plan.jitter_max)
            channel.sim.schedule_anon(spike, self._deliver_and_flush, packet)
            return
        self._deliver_and_flush(packet)

    def _deliver_and_flush(self, packet: Packet) -> None:
        channel = self.channel
        channel.deliver_now(packet)
        if self.plan.duplicate and self.rng.random() < self.plan.duplicate:
            self.duplicates += 1
            channel.deliver_extra(packet)
        # Any parked packets have now been overtaken: release them in
        # their original relative order.
        while self._held:
            channel.deliver_now(self._held.pop(0))

    def _timer_release(self, packet: Packet) -> None:
        if packet in self._held:
            self._held.remove(packet)
            self.timer_releases += 1
            self.channel.deliver_now(packet)
