"""Seeded fault injection (see TESTING.md).

Compose a fault plan onto any topology::

    from repro.faults import FaultPlan, injecting

    with injecting(FaultPlan(drop=0.01, seed=3)) as session:
        run_experiment()          # channels self-attach injectors
    print(session.totals())

or through the harness/CLI: ``run_cell(cell, faults="light")`` /
``python -m repro.cli run-all --faults drop=0.01,seed=3``.
"""

from repro.faults.injector import ChannelFaults
from repro.faults.plan import PROFILES, FaultPlan
from repro.faults.runtime import (
    FaultSession,
    activate,
    active,
    deactivate,
    injecting,
)

__all__ = [
    "PROFILES",
    "ChannelFaults",
    "FaultPlan",
    "FaultSession",
    "activate",
    "active",
    "deactivate",
    "injecting",
]
