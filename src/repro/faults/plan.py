"""Fault plans: declarative, seeded descriptions of injected faults.

A :class:`FaultPlan` is an immutable value object describing *what* to
inject — corruption-drop probability, duplication, reordering windows,
delay-jitter spikes, and link up/down flap schedules — plus a seed and
an optional channel-name filter.  It is composable onto any topology:
while a plan is active (see :mod:`repro.faults.runtime`) every newly
built channel whose name matches the filter gets a
:class:`~repro.faults.injector.ChannelFaults` attached.

Plans parse from compact CLI specs::

    drop=0.01,dup=0.005,seed=3
    reorder=0.02,reorder-hold=0.02,target=r1->r2
    flap-period=5,flap-down=0.5

and three named profiles (``light``, ``heavy``, ``flap``) cover the
common sweeps.  :meth:`FaultPlan.describe` renders the canonical spec
string, which the harness folds into cache keys so faulted results
never collide with clean ones.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

from repro.errors import ConfigurationError

#: Named profiles accepted anywhere a spec string is.
PROFILES: Dict[str, str] = {
    "light": "drop=0.005,dup=0.002,reorder=0.005,jitter=0.01",
    "heavy": "drop=0.02,dup=0.01,reorder=0.02,jitter=0.05,jitter-max=0.02",
    "flap": "flap-period=5,flap-down=0.25",
}

_FLOAT_KEYS = {
    "drop": "drop",
    "dup": "duplicate",
    "duplicate": "duplicate",
    "reorder": "reorder",
    "reorder-hold": "reorder_hold",
    "jitter": "jitter",
    "jitter-max": "jitter_max",
    "flap-period": "flap_period",
    "flap-down": "flap_down",
}

_PROBABILITY_FIELDS = ("drop", "duplicate", "reorder", "jitter")


@dataclass(frozen=True)
class FaultPlan:
    """One immutable fault-injection configuration.

    Args:
        drop: per-packet corruption-drop probability at delivery time.
        duplicate: probability a delivered packet is delivered twice.
        reorder: probability a packet is held back so later packets
            overtake it (a reordering window).
        reorder_hold: how long (seconds) a held packet waits before a
            timer forces its release, bounding the reordering window.
        jitter: probability a delivery is hit by a delay spike.
        jitter_max: maximum extra delay (seconds) of one spike.
        flap_period: link up/down cycle length in seconds (0 disables).
        flap_down: seconds the link spends down in each cycle; packets
            arriving while down are dropped.
        target: substring filter on channel names; empty matches all.
        seed: root seed; each channel derives an independent stream
            from (seed, channel name), so plans are deterministic and
            independent of event interleaving across channels.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_hold: float = 0.01
    jitter: float = 0.0
    jitter_max: float = 0.01
    flap_period: float = 0.0
    flap_down: float = 0.0
    target: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"fault {name} must be a probability in [0, 1], "
                    f"got {value}")
        if self.reorder_hold < 0 or self.jitter_max < 0:
            raise ConfigurationError("fault durations must be non-negative")
        if self.flap_period < 0 or self.flap_down < 0:
            raise ConfigurationError("flap timings must be non-negative")
        if self.flap_down > self.flap_period:
            raise ConfigurationError(
                f"flap-down ({self.flap_down}) cannot exceed flap-period "
                f"({self.flap_period})")

    # ------------------------------------------------------------------
    # Parsing / rendering
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a profile name or ``k=v,...`` spec string."""
        spec = spec.strip()
        if spec in PROFILES:
            return cls.parse(PROFILES[spec])
        kwargs: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                known = ", ".join(sorted(PROFILES))
                raise ConfigurationError(
                    f"bad fault spec item {item!r} (expected key=value, or "
                    f"one of the profiles: {known})")
            key, _, raw = item.partition("=")
            key = key.strip().lower().replace("_", "-")
            raw = raw.strip()
            if key == "target":
                kwargs["target"] = raw
            elif key == "seed":
                try:
                    kwargs["seed"] = int(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"fault seed must be an integer, got {raw!r}"
                    ) from None
            elif key in _FLOAT_KEYS:
                try:
                    value = float(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"fault {key} must be a number, got {raw!r}"
                    ) from None
                # Validate ranges here, naming the token exactly as the
                # user spelled it — __post_init__ would catch the same
                # mistakes but reports canonical field names ("dup" has
                # already become "duplicate" by then).
                field_name = _FLOAT_KEYS[key]
                if field_name in _PROBABILITY_FIELDS and not 0.0 <= value <= 1.0:
                    raise ConfigurationError(
                        f"bad fault spec item {item!r}: {key} is a "
                        f"probability and must be in [0, 1]")
                if field_name not in _PROBABILITY_FIELDS and value < 0.0:
                    raise ConfigurationError(
                        f"bad fault spec item {item!r}: {key} is a "
                        f"duration in seconds and must be non-negative")
                kwargs[field_name] = value
            else:
                known = ", ".join(sorted(_FLOAT_KEYS) + ["seed", "target"])
                raise ConfigurationError(
                    f"unknown fault key {key!r} (known: {known})")
        return cls(**kwargs)

    def describe(self) -> str:
        """Canonical spec string: non-default fields, field order.

        Two plans are equal iff their descriptions are equal, which is
        what makes this safe to embed in cache keys.
        """
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value == field.default:
                continue
            key = field.name.replace("_", "-")
            if isinstance(value, float):
                # repr() is the shortest exact round-trip form; %g
                # would truncate to 6 significant digits and alias
                # nearby plans onto one cache key.
                parts.append(f"{key}={value!r}")
            else:
                parts.append(f"{key}={value}")
        return ",".join(parts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (self.drop == 0.0 and self.duplicate == 0.0
                and self.reorder == 0.0 and self.jitter == 0.0
                and (self.flap_period == 0.0 or self.flap_down == 0.0))

    def matches(self, channel_name: str) -> bool:
        """Does this plan apply to the channel named *channel_name*?"""
        return self.target in channel_name if self.target else True
