"""Supervised cell execution: timeouts, crash quarantine, retries.

The plain runner (:mod:`repro.harness.runner`) maps cells over a
``multiprocessing`` pool: one hung worker stalls the sweep forever and
one crashed worker kills it.  The fault profiles (``heavy``, ``flap``)
and the 17-hop ``experiments.internet`` path exist precisely to push
cells into pathological regimes, so the sweep needs to *survive* those
regimes and report them instead of dying.

This module runs each pending cell in its own worker process under a
per-cell wall-clock deadline:

* a worker that exceeds the deadline is terminated (then killed) and
  the attempt is recorded as ``timeout``;
* a worker that raises is recorded as ``crash`` — except the typed
  failures :class:`~repro.errors.InvariantViolation`
  (``check-violation``) and :class:`~repro.errors.SimulationStalled`
  (``divergence``), which carry structured diagnostics;
* a worker that dies without reporting (segfault, ``os._exit``) is a
  ``crash`` with its exit code.

Failed attempts are retried up to ``retries`` times with a seeded
deterministic backoff (a pure function of the cell key and attempt
number — two runs of the same sweep wait the same amount).  A cell
that exhausts its attempts becomes a :class:`FailureRecord` in the
sweep's failure manifest; sibling cells are unaffected and the sweep
always completes with partial results.

Nothing here touches the result cache: quarantined cells are never
written to it, so a partial run cannot poison later sweeps.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation, SimulationStalled
from repro.harness.registry import Cell, cell_budget, run_cell

#: The failure taxonomy, in display order.  ``worker-lost`` is the
#: distributed backend's kind (see :mod:`repro.harness.dist`): the
#: *worker* died or went silent, not the cell's own code — distinct
#: from a cell-level ``crash`` so retry budgets and dashboards can
#: tell infrastructure failures from simulation failures.
FAILURE_KINDS = ("timeout", "crash", "divergence", "check-violation",
                 "worker-lost")

#: Default per-cell wall-clock budget (seconds).  The slowest quick
#: cell finishes in single-digit seconds on any hardware CI uses; two
#: minutes is "hung", not "slow".
DEFAULT_TIMEOUT_S = 120.0

#: Default retry budget: one re-execution before quarantine.
DEFAULT_RETRIES = 1

#: Base of the deterministic backoff schedule (seconds).
DEFAULT_BACKOFF_BASE = 0.05

#: How long a terminated worker gets to die before SIGKILL.
_TERM_GRACE_S = 2.0

#: Poll granularity of the supervision loop (seconds).
_POLL_S = 0.02


@dataclass
class SuccessRecord:
    """One completed cell with its execution provenance.

    ``worker`` is the executing worker's identity (``None`` for the
    local supervised pool), ``attempts`` counts executions including
    the successful one, and ``attempt_log`` records any failed
    attempts that preceded it — the raw material of artifact schema
    v3's per-cell attempt history.
    """

    cell: Cell
    metrics: Dict[str, Any]
    wall_clock_s: float
    worker: Optional[str] = None
    attempts: int = 1
    attempt_log: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.cell.key


@dataclass
class FailureRecord:
    """One quarantined cell: the structured entry of the failure manifest."""

    key: str
    experiment: str
    kind: str                     # one of FAILURE_KINDS (final attempt)
    message: str
    attempts: int                 # executions, including the first
    wall_clock_s: float           # summed across every attempt
    detail: Dict[str, Any] = field(default_factory=dict)
    attempt_log: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "experiment": self.experiment,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "wall_clock_s": self.wall_clock_s,
            "detail": self.detail,
            "attempt_log": self.attempt_log,
        }


def classify_error(exc: BaseException) -> Tuple[str, str, Dict[str, Any]]:
    """Map an exception onto the failure taxonomy.

    Returns ``(kind, message, detail)``.  Order matters:
    :class:`InvariantViolation` subclasses ``SimulationError`` and must
    be tested before the broader stall/crash buckets.
    """
    message = f"{type(exc).__name__}: {exc}"
    if isinstance(exc, InvariantViolation):
        return "check-violation", message, {
            "invariant": exc.invariant,
            "sim_time": exc.sim_time,
            "subject": exc.subject,
            "flow": str(exc.flow) if exc.flow is not None else None,
            "detail": exc.detail,
        }
    if isinstance(exc, SimulationStalled):
        return "divergence", message, {
            "reason": exc.reason,
            "sim_time": exc.sim_time,
            "stalled_for": exc.stalled_for,
            "snapshot": exc.snapshot,
        }
    tb = traceback.format_exception(type(exc), exc, exc.__traceback__)
    return "crash", message, {
        "exception": type(exc).__name__,
        "traceback": "".join(tb)[-4000:],
    }


def retry_backoff(key: str, attempt: int,
                  base: float = DEFAULT_BACKOFF_BASE) -> float:
    """Deterministic exponential backoff with seeded jitter.

    A pure function of ``(cell key, attempt)``: doubling per attempt,
    scaled by a jitter factor in ``[0.5, 1.5)`` drawn from SHA-256 of
    the pair — reproducible across runs and hosts, no shared RNG
    state, and distinct cells never thundering-herd their retries.
    """
    digest = hashlib.sha256(f"{key}#retry{attempt}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:4], "big") / 2 ** 32
    return base * (2 ** max(0, attempt - 1)) * jitter


def _mp_context():
    # fork inherits sys.path, loaded modules, and (crucially for the
    # tests) runtime-registered experiments; fall back to the platform
    # default elsewhere.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _supervised_entry(send_conn, cell: Cell, checks: Any, faults: Any,
                      watchdog: Any, telemetry: Optional[str] = None) -> None:
    """Worker body: run one cell, report outcome through the pipe."""
    start = time.perf_counter()
    sink = None
    if telemetry is not None:
        from repro.obs.events import TelemetrySink

        sink = TelemetrySink(telemetry)
    try:
        if sink is None:
            metrics = run_cell(cell, checks=checks, faults=faults,
                               watchdog=watchdog)
        else:
            with sink.span("cell", cell=cell.key):
                metrics = run_cell(cell, checks=checks, faults=faults,
                                   watchdog=watchdog, telemetry=telemetry)
    except BaseException as exc:  # noqa: BLE001 - taxonomy needs everything
        kind, message, detail = classify_error(exc)
        payload = ("fail", kind, message, detail,
                   time.perf_counter() - start)
    else:
        payload = ("ok", metrics, time.perf_counter() - start)
    finally:
        if sink is not None:
            sink.close()
    try:
        send_conn.send(payload)
    finally:
        send_conn.close()


@dataclass
class _Task:
    """Book-keeping for one cell across its attempts."""

    cell: Cell
    attempts: int = 0
    not_before: float = 0.0       # perf_counter() gate for retries
    wall_clock_s: float = 0.0
    attempt_log: List[Dict[str, Any]] = field(default_factory=list)
    last: Optional[Tuple[str, str, Dict[str, Any]]] = None

    @property
    def key(self) -> str:
        return self.cell.key


class _Running:
    """One live worker process and its result pipe."""

    __slots__ = ("task", "process", "conn", "deadline", "budget")

    def __init__(self, task: _Task, process, conn, deadline: float,
                 budget: Optional[float]):
        self.task = task
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.budget = budget


def run_supervised(cells: Sequence[Cell], jobs: int,
                   timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
                   retries: int = DEFAULT_RETRIES,
                   backoff_base: float = DEFAULT_BACKOFF_BASE,
                   checks: Any = False, faults: Any = None,
                   watchdog: Any = False,
                   progress: Optional[Callable[[str], None]] = None,
                   telemetry: Optional[str] = None,
                   ) -> Tuple[List[SuccessRecord], List[FailureRecord], bool]:
    """Execute *cells* under supervision; never raises for a cell.

    Returns ``(successes, failures, interrupted)`` where each success
    is a :class:`SuccessRecord` and each failure a finalized
    :class:`FailureRecord`.  Every input cell appears in exactly one of
    the two lists — unless the sweep was interrupted (``SIGINT``), in
    which case in-flight and not-yet-started cells appear in neither:
    the drain path kills running workers, keeps everything already
    settled, and reports ``interrupted=True`` so callers can flush a
    partial artifact instead of dying with a raw traceback.  ``timeout_s``
    is the sweep-wide deadline; experiments that registered a
    :func:`~repro.harness.registry.register_timeout_hint` budget get
    the larger of the two (see
    :func:`~repro.harness.registry.cell_budget`).  With ``telemetry``
    set, retry and quarantine decisions are logged from this process
    and each worker appends its own cell span and gauges.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    sink = None
    if telemetry is not None:
        from repro.obs.events import TelemetrySink

        sink = TelemetrySink(telemetry, run_id="supervisor")
    ctx = _mp_context()
    ready: List[_Task] = [_Task(cell) for cell in cells]
    ready.reverse()               # pop() from the end preserves order
    waiting: List[_Task] = []     # backoff gate not yet open
    running: List[_Running] = []
    successes: List[SuccessRecord] = []
    failures: List[FailureRecord] = []

    def launch(task: _Task) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_supervised_entry,
                              args=(send_conn, task.cell, checks, faults,
                                    watchdog, telemetry))
        process.daemon = True
        process.start()
        send_conn.close()         # parent keeps only the read end
        task.attempts += 1
        budget = cell_budget(task.cell, timeout_s)
        deadline = (float("inf") if budget is None
                    else time.perf_counter() + budget)
        running.append(_Running(task, process, recv_conn, deadline, budget))

    def settle_attempt(task: _Task, kind: str, message: str,
                       detail: Dict[str, Any], wall: float) -> None:
        task.wall_clock_s += wall
        task.last = (kind, message, detail)
        task.attempt_log.append({"attempt": task.attempts, "kind": kind,
                                 "message": message,
                                 "wall_clock_s": round(wall, 6)})
        if task.attempts <= retries:
            backoff = retry_backoff(task.key, task.attempts, backoff_base)
            task.attempt_log[-1]["backoff_s"] = round(backoff, 6)
            task.not_before = time.perf_counter() + backoff
            waiting.append(task)
            if sink is not None:
                sink.emit("cell.retry", cell=task.key, kind=kind,
                          attempt=task.attempts, backoff_s=round(backoff, 6))
            if progress is not None:
                progress(f"{task.key}: {kind} on attempt {task.attempts}, "
                         f"retrying in {backoff:.2f}s")
        else:
            failures.append(FailureRecord(
                key=task.key, experiment=task.cell.experiment, kind=kind,
                message=message, attempts=task.attempts,
                wall_clock_s=task.wall_clock_s, detail=detail,
                attempt_log=task.attempt_log))
            if sink is not None:
                sink.emit("cell.quarantine", cell=task.key, kind=kind,
                          attempts=task.attempts, message=message)
            if progress is not None:
                progress(f"{task.key}: FAILED ({kind}) after "
                         f"{task.attempts} attempt(s)")

    def reap(entry: _Running) -> None:
        running.remove(entry)
        task = entry.task
        payload = None
        if entry.conn.poll():
            try:
                payload = entry.conn.recv()
            except EOFError:
                payload = None
        entry.conn.close()
        if payload is not None:
            entry.process.join()
            if payload[0] == "ok":
                _, metrics, wall = payload
                task.wall_clock_s += wall
                successes.append(SuccessRecord(
                    cell=task.cell, metrics=metrics, wall_clock_s=wall,
                    attempts=task.attempts,
                    attempt_log=list(task.attempt_log)))
                if progress is not None:
                    note = " (retry)" if task.attempts > 1 else ""
                    progress(f"{task.key}: {wall:.2f}s{note}")
            else:
                _, kind, message, detail, wall = payload
                settle_attempt(task, kind, message, detail, wall)
            return
        # No payload: the worker died before reporting.
        entry.process.join()
        code = entry.process.exitcode
        settle_attempt(task, "crash",
                       f"worker exited with code {code} before reporting",
                       {"exitcode": code}, 0.0)

    def terminate(entry: _Running) -> None:
        process = entry.process
        process.terminate()
        process.join(_TERM_GRACE_S)
        if process.is_alive():
            process.kill()
            process.join()
        entry.conn.close()

    def kill(entry: _Running) -> None:
        running.remove(entry)
        terminate(entry)
        budget = entry.budget
        settle_attempt(entry.task, "timeout",
                       f"exceeded the per-cell deadline of {budget:g}s",
                       {"timeout_s": budget},
                       budget if budget is not None else 0.0)

    interrupted = False
    try:
        _supervise_loop(ready, waiting, running, jobs, launch, reap, kill)
    except KeyboardInterrupt:
        # Graceful drain: kill in-flight workers without settling their
        # cells (they are neither successes nor failures — simply not
        # run), keep everything already settled, and hand the partial
        # outcome back so the caller can flush artifacts and the
        # failure manifest with an `interrupted` marker.
        interrupted = True
        for entry in list(running):
            running.remove(entry)
            terminate(entry)
        if sink is not None:
            sink.emit("sweep.interrupted", settled=len(successes),
                      failed=len(failures),
                      abandoned=len(ready) + len(waiting))
    finally:
        if sink is not None:
            sink.close()

    return successes, failures, interrupted


def _supervise_loop(ready, waiting, running, jobs, launch, reap, kill) -> None:
    """The supervision event loop, factored out of :func:`run_supervised`."""
    while ready or waiting or running:
        now = time.perf_counter()
        if waiting:
            still = [t for t in waiting if t.not_before > now]
            due = [t for t in waiting if t.not_before <= now]
            if due:
                waiting[:] = still
                ready[:0] = reversed(due)   # retries go to the front
        while ready and len(running) < jobs:
            launch(ready.pop())
        if not running:
            # Only backoff gates left: sleep until the earliest opens
            # (bounded by the poll granularity) and rescan.
            time.sleep(_POLL_S)
            continue
        # Block briefly on every live pipe; a timed-out worker that
        # never writes is caught by the deadline scan below.
        multiprocessing.connection.wait(
            [entry.conn for entry in running], timeout=_POLL_S)
        now = time.perf_counter()
        for entry in list(running):
            if entry.conn.poll() or not entry.process.is_alive():
                reap(entry)
            elif now >= entry.deadline:
                kill(entry)
