"""The distributed sweep worker process.

One worker = one process = one cell at a time.  It connects to the
master, introduces itself with ``hello``, then loops: read a ``grant``,
run the cell through the exact same :func:`~repro.harness.registry.run_cell`
path as every other backend, and report ``result`` or ``fail`` using
the supervisor's failure taxonomy.  A daemon thread heartbeats on the
same socket (serialised by a lock) so the master can tell "busy on a
long cell" from "dead" — the execution thread never has to come up for
air.

The worker is deliberately expendable: it holds no state the master
cannot reconstruct.  Whatever kills it — ``SIGKILL``, ``os._exit`` in
a cell, a dropped connection — the master revokes its lease and
re-queues the cell.  On master EOF or ``shutdown`` the worker simply
exits; a result it could not deliver is recomputed elsewhere.

Spawned workers are fresh interpreters (not forks), so experiments
registered at runtime in the master's process do not exist here unless
re-imported: ``--preload mod`` imports *mod* before serving, which is
how the chaos test family (:mod:`repro.harness.dist.chaos`) and any
extension experiments reach remote workers.

Run directly::

    python -m repro.harness.dist.worker --connect HOST:PORT \
        [--worker-id ID] [--preload MODULE]...
"""

from __future__ import annotations

import argparse
import importlib
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Sequence

from repro.harness.dist import protocol
from repro.harness.registry import run_cell
from repro.harness.supervisor import classify_error


def _run_grant(send: Callable[[Dict[str, Any]], None], worker_id: str,
               message: Dict[str, Any]) -> None:
    """Execute one granted cell and report its outcome."""
    cell = protocol.cell_from_grant(message)
    telemetry = message.get("telemetry")
    start = time.perf_counter()
    sink = None
    if telemetry is not None:
        from repro.obs.events import TelemetrySink

        sink = TelemetrySink(telemetry)
    try:
        if sink is None:
            metrics = run_cell(cell, checks=message.get("checks", False),
                               faults=message.get("faults"),
                               watchdog=message.get("watchdog", False))
        else:
            with sink.span("cell", cell=cell.key, worker=worker_id):
                metrics = run_cell(cell, checks=message.get("checks", False),
                                   faults=message.get("faults"),
                                   watchdog=message.get("watchdog", False),
                                   telemetry=telemetry)
    except BaseException as exc:  # noqa: BLE001 - taxonomy needs everything
        kind, text, detail = classify_error(exc)
        send(protocol.fail(worker_id, message["lease_id"], cell.key,
                           kind, text, detail,
                           time.perf_counter() - start))
    else:
        send(protocol.result(worker_id, message["lease_id"], cell.key,
                             metrics, time.perf_counter() - start))
    finally:
        if sink is not None:
            sink.close()


def serve(connect: str, worker_id: str,
          heartbeat_interval_s: float =
          protocol.DEFAULT_HEARTBEAT_INTERVAL_S,
          preload: Sequence[str] = ()) -> None:
    """Connect to the master at ``host:port`` and serve until shutdown."""
    for module in preload:
        importlib.import_module(module)
    host, _, port = connect.rpartition(":")
    sock = socket.create_connection((host or "127.0.0.1", int(port)))
    reader = sock.makefile("rb")
    write_lock = threading.Lock()

    def send(message: Dict[str, Any]) -> None:
        data = protocol.encode(message)
        with write_lock:
            sock.sendall(data)

    send(protocol.hello(worker_id, os.getpid(), socket.gethostname()))
    stop = threading.Event()

    def beat() -> None:
        seq = 0
        while not stop.wait(heartbeat_interval_s):
            seq += 1
            try:
                send(protocol.heartbeat(worker_id, seq))
            except OSError:
                return             # master gone; main loop sees EOF
    threading.Thread(target=beat, daemon=True,
                     name=f"{worker_id}-heartbeat").start()
    try:
        while True:
            line = reader.readline()
            if not line:
                break              # master gone
            message = protocol.decode(line)
            if message["type"] == "shutdown":
                break
            if message["type"] == "grant":
                _run_grant(send, worker_id, message)
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover - close rarely fails
            pass


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.dist.worker",
        description="Worker process of the distributed sweep backend.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="master address to attach to")
    parser.add_argument("--worker-id", default=None,
                        help="identity announced to the master "
                        "(default: pid-derived)")
    parser.add_argument("--heartbeat", type=float,
                        default=protocol.DEFAULT_HEARTBEAT_INTERVAL_S,
                        metavar="SECONDS", help="heartbeat interval")
    parser.add_argument("--preload", action="append", default=[],
                        metavar="MODULE",
                        help="import MODULE before serving (repeatable); "
                        "how runtime-registered experiments reach a "
                        "spawned worker")
    args = parser.parse_args(argv)
    worker_id = args.worker_id or f"pid{os.getpid()}"
    serve(args.connect, worker_id, heartbeat_interval_s=args.heartbeat,
          preload=args.preload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
