"""Run journal: the master's crash-safe record of a sweep.

The master appends one JSON line per decision — run start, every
grant, every result (metrics included), every failed attempt,
quarantine, worker join/loss, and run end — flushed per line, so a
``SIGKILL``-ed master leaves a journal that is complete up to its last
whole line.

``--resume`` replays that journal: cells with a recorded ``result``
are served from the journal (and re-enter the result cache), cells
with a recorded ``quarantine`` stay quarantined, and only the
remainder is executed.  Replay composes with the content-hash cache —
whichever of the two knows a cell first wins, and both are keyed to
the source tree: a journal written by different source is refused
(the results it holds describe a different program).

A torn final line (the master died mid-write) is tolerated and
dropped; anything malformed *before* the end is an error, because it
means the file is not one of ours.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ReproError

#: Stamped on every journal's first record.
JOURNAL_SCHEMA = "repro-dist-journal/v1"


@dataclass
class JournalState:
    """What a journal replay recovered."""

    src_hash: Optional[str] = None
    #: key -> {"metrics", "wall_clock_s", "worker", "attempts",
    #:         "attempt_log"}
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: key -> FailureRecord-shaped dict
    failures: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    records: int = 0
    truncated: bool = False       # a torn trailing line was dropped

    @property
    def settled(self) -> int:
        return len(self.results) + len(self.failures)


class RunJournal:
    """Append-only journal writer for one master run.

    Open with ``resume=True`` to append to an existing journal (the
    resume path); otherwise an existing file is refused — a journal is
    a run's history and silently appending a second run to it would
    make replay ambiguous.  Writes never raise into the master: like
    the telemetry sink, a journal that cannot be written disables
    itself after recording ``last_error``.
    """

    def __init__(self, path: str, resume: bool = False, clock=time.time):
        self.path = path
        self._clock = clock
        self.last_error: Optional[str] = None
        self.records_written = 0
        if not resume and os.path.exists(path):
            raise ReproError(
                f"journal {path!r} already exists — pass --resume to "
                "continue that run, or point --journal elsewhere")
        try:
            self._file = open(path, "a", buffering=1)
        except OSError as exc:
            self._file = None
            self.last_error = str(exc)

    @property
    def enabled(self) -> bool:
        return self._file is not None

    def record(self, rec: str, **fields: Any) -> None:
        """Append one record; never raises."""
        if self._file is None:
            return
        entry: Dict[str, Any] = {"rec": rec, "ts": self._clock()}
        if self.records_written == 0:
            entry["schema"] = JOURNAL_SCHEMA
        entry.update(fields)
        try:
            self._file.write(
                json.dumps(entry, sort_keys=True, default=str) + "\n")
            self.records_written += 1
        except (OSError, ValueError) as exc:
            self.last_error = str(exc)
            self.close()

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError as exc:  # pragma: no cover - close rarely fails
                self.last_error = str(exc)
            self._file = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay(path: str, src_hash: Optional[str] = None) -> JournalState:
    """Rebuild a :class:`JournalState` from a journal file.

    *src_hash*, when given, is checked against the journal's recorded
    hash: results computed from different source are refused rather
    than replayed into a sweep they do not describe.

    Later records win: a cell granted again after a lease expiry and
    finally completed has exactly one ``result`` record; a cell that
    was quarantined and (in a later resumed run) re-executed to
    success moves from ``failures`` to ``results``.
    """
    state = JournalState()
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read journal {path!r}: {exc}") from exc
    lines = raw.split(b"\n")
    # A file that ends mid-record has a non-empty final fragment with
    # no trailing newline; anything malformed earlier is a real error.
    tail_fragment = lines[-1]
    body = lines[:-1]
    for lineno, line in enumerate(body, 1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise ReproError(
                f"{path}:{lineno}: malformed journal record: {exc}") from exc
        if not isinstance(entry, dict) or "rec" not in entry:
            raise ReproError(
                f"{path}:{lineno}: journal record has no 'rec' field")
        state.records += 1
        rec = entry["rec"]
        if rec == "run.start":
            state.src_hash = entry.get("src_hash")
        elif rec == "result":
            key = entry["key"]
            state.results[key] = {
                "metrics": entry["metrics"],
                "wall_clock_s": entry.get("wall_clock_s", 0.0),
                "worker": entry.get("worker"),
                "attempts": entry.get("attempts", 1),
                "attempt_log": entry.get("attempt_log", []),
            }
            state.failures.pop(key, None)
        elif rec == "quarantine":
            failure = entry.get("failure", {})
            key = failure.get("key")
            if key and key not in state.results:
                state.failures[key] = failure
    if tail_fragment.strip():
        state.truncated = True
    if (src_hash is not None and state.src_hash is not None
            and state.src_hash != src_hash):
        raise ReproError(
            f"journal {path!r} was written by source "
            f"{state.src_hash[:16]}..., current tree is "
            f"{src_hash[:16]}... — its results describe a different "
            "program; start a fresh journal")
    return state
