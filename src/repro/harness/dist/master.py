"""The distributed sweep master: leases, heartbeats, journal, drain.

:func:`run_distributed` is the dist backend's entry point, mirroring
:func:`~repro.harness.supervisor.run_supervised`'s contract — it takes
pending cells and returns ``(successes, failures, interrupted)`` — but
executes them across worker *processes* speaking the
:mod:`~repro.harness.dist.protocol` wire format over TCP, instead of
forked children on pipes.  Robustness is the design driver:

* work moves only as **leases** (:mod:`~repro.harness.dist.lease`):
  every grant has a deadline sized from the cell's budget, expiry
  re-queues the cell, and stale results are dropped;
* workers prove liveness with **heartbeats**; a worker that misses
  enough beats (or whose connection drops) is declared dead, its
  leases revoked as ``worker-lost``, and — when the master spawned it —
  a replacement is started, up to a respawn budget;
* every decision is appended to a **journal**
  (:mod:`~repro.harness.dist.journal`), so a killed master can be
  resumed: replay serves the settled cells and only the remainder
  executes;
* ``SIGINT``/``SIGTERM`` **drain**: stop granting, shut workers down,
  keep everything settled, report ``interrupted=True`` — the same
  partial-artifact contract as the local supervised pool;
* **zero reachable workers degrades** to the local supervised pool
  (with a warning) instead of hanging a sweep on missing
  infrastructure.

The master is a single asyncio task plus one reader coroutine per
worker connection; all lease/journal state is touched from the event
loop only, so there is no locking.  Determinism note: *which* worker
runs a cell is scheduling-dependent, but cells seed themselves from
their parameters, so metrics — and the artifact cells fingerprint —
are identical to a local run's.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.harness.dist import protocol
from repro.harness.dist.journal import RunJournal, replay
from repro.harness.dist.lease import LeaseTable
from repro.harness.registry import Cell, resolve_faults
from repro.harness.supervisor import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_RETRIES,
    FailureRecord,
    SuccessRecord,
    run_supervised,
)

#: Scheduler tick (seconds): lease expiry and heartbeat scans, grants.
_TICK_S = 0.02

#: How long the master waits for a spawned/attached worker before
#: degrading to the local supervised pool.
DEFAULT_CONNECT_TIMEOUT_S = 15.0


class _Worker:
    """One connected worker, from hello to loss."""

    __slots__ = ("worker_id", "writer", "last_beat", "lease_id", "lost")

    def __init__(self, worker_id: str, writer, now: float):
        self.worker_id = worker_id
        self.writer = writer
        self.last_beat = now
        self.lease_id: Optional[str] = None
        self.lost = False


class _Master:
    """State and event handlers of one distributed run."""

    def __init__(self, table: LeaseTable, *, workers: int, bind: str,
                 checks: Any, faults_spec: Optional[str], watchdog_spec: Any,
                 telemetry: Optional[str], sink, journal: Optional[RunJournal],
                 progress: Optional[Callable[[str], None]],
                 heartbeat_interval_s: float, heartbeat_misses: int,
                 preload: Sequence[str], connect_timeout_s: float,
                 max_respawns: Optional[int],
                 chaos_kill_after: Optional[int]):
        self.table = table
        self.target_workers = workers
        self.bind = bind
        self.checks = checks
        self.faults_spec = faults_spec
        self.watchdog_spec = watchdog_spec
        self.telemetry = telemetry
        self.sink = sink
        self.journal = journal
        self.progress = progress
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_misses = heartbeat_misses
        self.preload = tuple(preload)
        self.connect_timeout_s = connect_timeout_s
        self.respawns_left = (workers * 2 if max_respawns is None
                              else max_respawns)
        self.chaos_kill_after = chaos_kill_after

        self.successes: List[SuccessRecord] = []
        self.workers: Dict[str, _Worker] = {}
        self.procs: Dict[str, subprocess.Popen] = {}
        self.port: Optional[int] = None
        self.draining = False
        self.degraded = False
        self.ever_connected = False
        self.started = self._now()
        self.results_seen = 0
        self.workers_lost = 0
        self.respawned = 0
        self._spawned = 0
        self._chaos_fired = False
        self._conn_tasks: set = set()

    @staticmethod
    def _now() -> float:
        return time.monotonic()

    # ------------------------------------------------------------------
    # Small sinks: telemetry / journal / progress, all optional.
    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:
        if self.sink is not None:
            self.sink.emit(event, **fields)

    def _rec(self, rec: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.record(rec, **fields)

    def _say(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        self._spawned += 1
        worker_id = f"w{self._spawned}"
        cmd = [sys.executable, "-m", "repro.harness.dist.worker",
               "--connect", f"127.0.0.1:{self.port}",
               "--worker-id", worker_id,
               "--heartbeat", str(self.heartbeat_interval_s)]
        for module in self.preload:
            cmd.extend(["--preload", module])
        env = dict(os.environ)
        # Make sure the child resolves the same `repro` package as the
        # master, wherever the master was launched from.
        import repro

        pkg_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [pkg_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
        self.procs[worker_id] = subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL)

    def _alive_local(self) -> int:
        return sum(1 for proc in self.procs.values() if proc.poll() is None)

    def _maybe_respawn(self) -> None:
        if self.draining or self.degraded or self.table.done:
            return
        while (self._alive_local() < self.target_workers
               and self.respawns_left > 0):
            self.respawns_left -= 1
            self.respawned += 1
            self._spawn_worker()
            self._emit("dist.worker.respawn", respawns_left=self.respawns_left)

    def _reap_procs(self) -> None:
        """Notice local workers that died without ever (re)connecting."""
        for worker_id, proc in list(self.procs.items()):
            if proc.poll() is None or worker_id in self.workers:
                continue
            # Died outside a connection (e.g. crashed at import, or we
            # killed it after its connection was already dropped).
            del self.procs[worker_id]
        self._maybe_respawn()

    def _drop_worker(self, worker: _Worker, reason: str) -> None:
        """Declare *worker* dead: revoke its leases, kill, respawn."""
        if worker.lost:
            return
        worker.lost = True
        self.workers.pop(worker.worker_id, None)
        self.workers_lost += 1
        now = self._now()
        for lease, outcome in self.table.revoke_worker(
                worker.worker_id, reason, now):
            self._note_failed_attempt(lease.task, "worker-lost", outcome)
        self._emit("dist.worker.lost", worker=worker.worker_id, reason=reason)
        self._rec("worker.lost", worker=worker.worker_id, reason=reason)
        self._say(f"worker {worker.worker_id} lost ({reason})")
        try:
            worker.writer.close()
        except (OSError, RuntimeError):  # pragma: no cover - close races
            pass
        proc = self.procs.pop(worker.worker_id, None)
        if proc is not None and proc.poll() is None:
            proc.kill()
        self._maybe_respawn()

    # ------------------------------------------------------------------
    # Settlement bookkeeping shared by fail/expire/revoke paths
    # ------------------------------------------------------------------
    def _note_failed_attempt(self, task, kind: str,
                             outcome: Tuple[str, float]) -> None:
        action, backoff = outcome
        entry = task.attempt_log[-1]
        self._rec("attempt", key=task.key, kind=kind,
                  attempt=entry["attempt"], message=entry["message"])
        if action == "retry":
            self._emit("dist.retry", cell=task.key, kind=kind,
                       attempt=entry["attempt"], backoff_s=round(backoff, 6))
            self._say(f"{task.key}: {kind} on attempt {entry['attempt']}, "
                      f"retrying in {backoff:.2f}s")
        else:
            failure = self.table.failures[-1]
            self._rec("quarantine", failure=failure.as_dict())
            self._emit("dist.quarantine", cell=task.key, kind=kind,
                       attempts=failure.attempts)
            self._say(f"{task.key}: FAILED ({kind}) after "
                      f"{failure.attempts} attempt(s)")

    # ------------------------------------------------------------------
    # Connection handling (one coroutine per worker)
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._conn_tasks.add(asyncio.current_task())
        worker = None
        try:
            line = await reader.readline()
            if not line:
                return
            worker_id = protocol.check_hello(protocol.decode(line))
            if worker_id in self.workers:
                writer.write(protocol.encode(
                    protocol.shutdown(f"duplicate worker id {worker_id!r}")))
                await writer.drain()
                return
            worker = _Worker(worker_id, writer, self._now())
            self.workers[worker_id] = worker
            self.ever_connected = True
            self._emit("dist.worker.join", worker=worker_id)
            self._rec("worker.join", worker=worker_id)
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = protocol.decode(line)
                worker.last_beat = self._now()
                kind = message["type"]
                if kind == "result":
                    self._on_result(worker, message)
                elif kind == "fail":
                    self._on_fail(worker, message)
                elif kind != "heartbeat":
                    raise protocol.ProtocolError(
                        f"unexpected message from worker: {kind!r}")
        except (protocol.ProtocolError, ConnectionError, OSError) as exc:
            if worker is not None:
                self._drop_worker(worker, f"protocol error: {exc}")
            return
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            if worker is not None:
                self._drop_worker(worker, "connection closed")
            try:
                writer.close()
            except (OSError, RuntimeError):  # pragma: no cover
                pass

    def _on_result(self, worker: _Worker, message: Dict[str, Any]) -> None:
        if worker.lease_id == message.get("lease_id"):
            worker.lease_id = None
        task = self.table.settle_ok(message["lease_id"], worker.worker_id,
                                    message["metrics"],
                                    message["wall_clock_s"])
        if task is None:
            self._emit("dist.stale", worker=worker.worker_id,
                       key=message.get("key"))
            return
        record = SuccessRecord(
            cell=task.cell, metrics=message["metrics"],
            wall_clock_s=message["wall_clock_s"], worker=worker.worker_id,
            attempts=task.attempts, attempt_log=list(task.attempt_log))
        self.successes.append(record)
        self.results_seen += 1
        self._rec("result", key=task.key, metrics=record.metrics,
                  wall_clock_s=record.wall_clock_s, worker=record.worker,
                  attempts=record.attempts, attempt_log=record.attempt_log)
        note = " (retry)" if task.attempts > 1 else ""
        self._say(f"{task.key}: {record.wall_clock_s:.2f}s{note}")
        self._maybe_chaos_kill()

    def _on_fail(self, worker: _Worker, message: Dict[str, Any]) -> None:
        if worker.lease_id == message.get("lease_id"):
            worker.lease_id = None
        settled = self.table.settle_fail(
            message["lease_id"], worker.worker_id, message["kind"],
            message["message"], message.get("detail", {}),
            message["wall_clock_s"], self._now())
        if settled is None:
            self._emit("dist.stale", worker=worker.worker_id,
                       key=message.get("key"))
            return
        task, outcome = settled
        self._note_failed_attempt(task, message["kind"], outcome)

    def _maybe_chaos_kill(self) -> None:
        """CI fault injection: SIGKILL one busy local worker mid-sweep."""
        if (self.chaos_kill_after is None or self._chaos_fired
                or self.results_seen < self.chaos_kill_after):
            return
        victims = [w for w in self.workers.values() if w.worker_id in
                   self.procs and self.procs[w.worker_id].poll() is None]
        busy = [w for w in victims if w.lease_id is not None]
        victim = (busy or victims or [None])[0]
        if victim is None:
            return
        self._chaos_fired = True
        self._emit("dist.chaos.kill", worker=victim.worker_id)
        self._rec("chaos.kill", worker=victim.worker_id)
        self._say(f"chaos: SIGKILL worker {victim.worker_id}")
        self.procs[victim.worker_id].kill()

    # ------------------------------------------------------------------
    # Scheduler ticks
    # ------------------------------------------------------------------
    def _check_heartbeats(self, now: float) -> None:
        silence = self.heartbeat_interval_s * self.heartbeat_misses
        for worker in list(self.workers.values()):
            if now - worker.last_beat > silence:
                self._drop_worker(
                    worker, f"missed {self.heartbeat_misses} heartbeats")

    def _check_expiry(self, now: float) -> None:
        for lease in self.table.expired(now):
            outcome = self.table.expire(lease, now)
            self._emit("dist.lease.expire", cell=lease.task.key,
                       worker=lease.worker, lease=lease.lease_id)
            self._note_failed_attempt(lease.task, "timeout", outcome)
            # The (single-threaded) worker is still grinding on the
            # expired cell; reclaim the slot by dropping it.  Local
            # workers are killed and respawned; a remote worker sees
            # its connection close and exits.
            worker = self.workers.get(lease.worker)
            if worker is not None:
                self._drop_worker(worker, "lease expired")

    async def _grant_idle(self, now: float) -> None:
        for worker in list(self.workers.values()):
            if worker.lease_id is not None or worker.lost:
                continue
            lease = self.table.grant(worker.worker_id, now)
            if lease is None:
                break
            worker.lease_id = lease.lease_id
            message = protocol.grant(
                lease.lease_id, lease.task.cell, lease.attempt,
                lease.budget_s, checks=self.checks, faults=self.faults_spec,
                watchdog=self.watchdog_spec, telemetry=self.telemetry)
            try:
                worker.writer.write(protocol.encode(message))
                await worker.writer.drain()
            except (ConnectionError, OSError, RuntimeError):
                self._drop_worker(worker, "write failed")
                continue
            self._emit("dist.lease.grant", cell=lease.task.key,
                       worker=worker.worker_id, lease=lease.lease_id,
                       attempt=lease.attempt, budget_s=lease.budget_s)
            self._rec("grant", key=lease.task.key, lease=lease.lease_id,
                      worker=worker.worker_id, attempt=lease.attempt,
                      budget_s=lease.budget_s)

    def _check_degrade(self, now: float) -> None:
        if self.workers or self._alive_local() or self.table.done:
            return
        if self.respawns_left > 0 and self.target_workers > 0:
            return                 # a respawn is coming on the next reap
        if (not self.ever_connected
                and now - self.started < self.connect_timeout_s):
            return                 # still inside the attach window
        self.degraded = True

    def _request_drain(self) -> None:
        self.draining = True

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    async def run(self) -> bool:
        """Drive the sweep to completion; returns ``interrupted``."""
        host, _, port = self.bind.rpartition(":")
        server = await asyncio.start_server(
            self._handle_conn, host or "127.0.0.1", int(port or 0))
        self.port = server.sockets[0].getsockname()[1]
        self._emit("dist.start", bind=f"{host or '127.0.0.1'}:{self.port}",
                   workers=self.target_workers,
                   cells=self.table.outstanding())
        if self.target_workers == 0:
            self._say(f"dist master listening on port {self.port}; "
                      f"waiting {self.connect_timeout_s:g}s for workers "
                      "to attach")
        for _ in range(self.target_workers):
            self._spawn_worker()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._request_drain)
                installed.append(signum)
            except (ValueError, OSError, NotImplementedError, RuntimeError):
                pass               # non-main thread / platform limits
        try:
            while not (self.table.done or self.draining or self.degraded):
                now = self._now()
                self._reap_procs()
                self._check_heartbeats(now)
                self._check_expiry(now)
                await self._grant_idle(now)
                self._check_degrade(now)
                await asyncio.sleep(_TICK_S)
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self._shutdown_workers(
                "drain" if self.draining else "done")
            server.close()
            await server.wait_closed()
            if self._conn_tasks:
                # Closed writers EOF the reader coroutines; wait for
                # them rather than cancelling (3.11's stream protocol
                # logs cancelled handler tasks noisily).
                await asyncio.wait(self._conn_tasks, timeout=2.0)
        return self.draining

    async def _shutdown_workers(self, reason: str) -> None:
        for worker in list(self.workers.values()):
            worker.lost = True     # suppress the EOF drop path
            self.workers.pop(worker.worker_id, None)
            try:
                worker.writer.write(protocol.encode(
                    protocol.shutdown(reason)))
                await worker.writer.drain()
                worker.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        for proc in self.procs.values():
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.procs.clear()

    def emergency_cleanup(self) -> None:
        """Last-resort teardown when the event loop itself was killed."""
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()
        self.procs.clear()


def _wire_specs(checks: Any, faults: Any,
                watchdog: Any) -> Tuple[Any, Optional[str], Any]:
    """Flatten run configuration into JSON-safe grant fields."""
    checks_spec = "collect" if checks == "collect" else bool(checks)
    plan = resolve_faults(faults)
    faults_spec = plan.describe() if plan is not None else None
    if not watchdog:
        watchdog_spec: Any = False
    elif isinstance(watchdog, bool):
        watchdog_spec = True
    elif isinstance(watchdog, (int, float)):
        watchdog_spec = float(watchdog)
    else:                          # a built LivenessWatchdog
        watchdog_spec = float(getattr(watchdog, "stall_after", 0.0)) or True
    return checks_spec, faults_spec, watchdog_spec


def _replayed_records(cells: Sequence[Cell], state
                      ) -> Tuple[List[SuccessRecord], List[FailureRecord],
                                 List[Cell]]:
    """Split *cells* into journal-served results and the remainder."""
    successes: List[SuccessRecord] = []
    failures: List[FailureRecord] = []
    remainder: List[Cell] = []
    for cell in cells:
        if cell.key in state.results:
            entry = state.results[cell.key]
            successes.append(SuccessRecord(
                cell=cell, metrics=entry["metrics"],
                wall_clock_s=entry["wall_clock_s"], worker=entry["worker"],
                attempts=entry["attempts"],
                attempt_log=list(entry["attempt_log"])))
        elif cell.key in state.failures:
            entry = state.failures[cell.key]
            failures.append(FailureRecord(
                key=entry["key"], experiment=entry["experiment"],
                kind=entry["kind"], message=entry["message"],
                attempts=entry["attempts"],
                wall_clock_s=entry["wall_clock_s"],
                detail=entry.get("detail", {}),
                attempt_log=entry.get("attempt_log", [])))
        else:
            remainder.append(cell)
    return successes, failures, remainder


def run_distributed(cells: Sequence[Cell],
                    timeout_s: Optional[float] = None,
                    retries: int = DEFAULT_RETRIES,
                    backoff_base: float = DEFAULT_BACKOFF_BASE,
                    checks: Any = False, faults: Any = None,
                    watchdog: Any = False,
                    progress: Optional[Callable[[str], None]] = None,
                    telemetry: Optional[str] = None,
                    workers: int = 2,
                    bind: str = "127.0.0.1:0",
                    journal: Optional[str] = None,
                    resume: bool = False,
                    src_hash: Optional[str] = None,
                    heartbeat_interval_s: float =
                    protocol.DEFAULT_HEARTBEAT_INTERVAL_S,
                    heartbeat_misses: int = protocol.DEFAULT_HEARTBEAT_MISSES,
                    lease_grace_s: float = protocol.DEFAULT_LEASE_GRACE_S,
                    preload: Sequence[str] = (),
                    connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
                    max_respawns: Optional[int] = None,
                    chaos_kill_after: Optional[int] = None,
                    fallback_jobs: Optional[int] = None,
                    ) -> Tuple[List[SuccessRecord], List[FailureRecord], bool]:
    """Execute *cells* on the distributed backend.

    Same contract as :func:`~repro.harness.supervisor.run_supervised`:
    returns ``(successes, failures, interrupted)`` and never raises for
    a cell.  ``workers`` local worker processes are spawned (0 = attach
    only: listen on ``bind`` and wait ``connect_timeout_s`` for
    external ``python -m repro dist worker`` processes).  With
    ``journal`` set every decision is logged; ``resume=True`` replays
    an existing journal first and executes only the remainder.  If no
    worker is ever reachable (or every worker died and the respawn
    budget is spent) the remaining cells degrade to the local
    supervised pool rather than stranding the sweep.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    replayed_ok: List[SuccessRecord] = []
    replayed_fail: List[FailureRecord] = []
    pending = list(cells)
    if resume:
        if journal is None:
            raise ReproError("--resume requires --journal (the run to "
                             "resume is identified by its journal file)")
        if not os.path.exists(journal):
            raise ReproError(f"cannot resume: journal {journal!r} "
                             "does not exist")
        state = replay(journal, src_hash=src_hash)
        replayed_ok, replayed_fail, pending = _replayed_records(
            pending, state)
        if progress is not None:
            progress(f"resume: {len(replayed_ok)} results and "
                     f"{len(replayed_fail)} quarantines replayed from "
                     f"journal, {len(pending)} cells remain")

    sink = None
    if telemetry is not None:
        from repro.obs.events import TelemetrySink

        sink = TelemetrySink(telemetry, run_id="dist")
    journal_file = (RunJournal(journal, resume=resume)
                    if journal is not None else None)
    checks_spec, faults_spec, watchdog_spec = _wire_specs(
        checks, faults, watchdog)
    table = LeaseTable(pending, timeout_s=timeout_s, retries=retries,
                       backoff_base=backoff_base,
                       lease_grace_s=lease_grace_s)
    master = _Master(
        table, workers=workers, bind=bind, checks=checks_spec,
        faults_spec=faults_spec, watchdog_spec=watchdog_spec,
        telemetry=telemetry, sink=sink, journal=journal_file,
        progress=progress, heartbeat_interval_s=heartbeat_interval_s,
        heartbeat_misses=heartbeat_misses, preload=preload,
        connect_timeout_s=connect_timeout_s, max_respawns=max_respawns,
        chaos_kill_after=chaos_kill_after)
    if resume:
        master._rec("run.resume", replayed=len(replayed_ok),
                    remaining=len(pending))
    else:
        master._rec("run.start", src_hash=src_hash, cells=len(pending),
                    workers=workers, timeout_s=timeout_s, retries=retries)

    interrupted = False
    if pending:
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            interrupted = loop.run_until_complete(master.run())
        except KeyboardInterrupt:
            interrupted = True
            master.emergency_cleanup()
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    successes = replayed_ok + master.successes
    failures = replayed_fail + list(table.failures)

    if master.degraded and not interrupted:
        remaining = [task.cell for task in table.pending]
        if remaining:
            if progress is not None:
                progress(f"warning: no reachable dist workers — degrading "
                         f"{len(remaining)} cells to the local supervised "
                         "pool")
            if sink is not None:
                sink.emit("dist.degrade", remaining=len(remaining))
            master._rec("degrade", remaining=len(remaining))
            import multiprocessing

            local_ok, local_fail, interrupted = run_supervised(
                remaining,
                jobs=fallback_jobs or multiprocessing.cpu_count(),
                timeout_s=timeout_s, retries=retries,
                backoff_base=backoff_base, checks=checks, faults=faults,
                watchdog=watchdog, progress=progress, telemetry=telemetry)
            successes.extend(local_ok)
            failures.extend(local_fail)
            for record in local_ok:
                master._rec("result", key=record.key, metrics=record.metrics,
                            wall_clock_s=record.wall_clock_s, worker=None,
                            attempts=record.attempts,
                            attempt_log=record.attempt_log)
            for failure in local_fail:
                master._rec("quarantine", failure=failure.as_dict())

    if sink is not None:
        sink.emit("dist.end", ok=len(successes), failed=len(failures),
                  interrupted=interrupted,
                  expired_leases=table.expired_leases,
                  stale_results=table.stale_results,
                  workers_lost=master.workers_lost,
                  respawns=master.respawned)
        sink.close()
    master._rec("run.end", ok=len(successes), failed=len(failures),
                interrupted=interrupted)
    if journal_file is not None:
        journal_file.close()
    return successes, failures, interrupted
