"""Fault-tolerant distributed sweep backend.

The ``dist`` backend shards a sweep's cells across worker processes —
spawned locally by the master or attached over a socket — with
robustness as the design driver rather than raw throughput:

* :mod:`~repro.harness.dist.protocol` — the newline-delimited JSON
  wire format (versioned; ``hello``/``heartbeat``/``grant``/``result``/
  ``fail``/``shutdown``);
* :mod:`~repro.harness.dist.lease` — lease-based work assignment:
  deadlines per cell (timeout hints included), expiry re-queue with
  seeded backoff, stale-result rejection, ``worker-lost`` revocation;
* :mod:`~repro.harness.dist.journal` — the append-only run journal
  behind ``--resume``;
* :mod:`~repro.harness.dist.master` — the asyncio master
  (:func:`~repro.harness.dist.master.run_distributed`);
* :mod:`~repro.harness.dist.worker` — the expendable worker process;
* :mod:`~repro.harness.dist.chaos` — adversarial cells used by the
  failure-mode tests and the CI smoke job.

Entry points: ``python -m repro run-all --backend dist --workers N``
(or ``python -m repro dist run``), and ``python -m repro dist worker
--connect HOST:PORT`` to attach extra workers to a listening master.
"""

from repro.harness.dist.journal import JournalState, RunJournal, replay
from repro.harness.dist.lease import DistTask, Lease, LeaseTable
from repro.harness.dist.master import run_distributed
from repro.harness.dist.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
)

__all__ = [
    "DistTask",
    "JournalState",
    "Lease",
    "LeaseTable",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RunJournal",
    "replay",
    "run_distributed",
]
