"""Wire protocol of the distributed sweep backend.

Masters and workers speak newline-delimited JSON over a byte stream
(a TCP socket in practice): one message per line, every message a flat
object carrying a ``type`` field.  The format is deliberately boring —
debuggable with ``nc`` and greppable in a journal — and versioned so a
stale worker from an older checkout is rejected at handshake instead
of corrupting a sweep.

Message types
-------------

Worker -> master:

``hello``       first message after connect: ``worker_id``, ``pid``,
                ``host``, and the protocol ``version``.
``heartbeat``   periodic liveness beacon (``seq`` monotonically
                increasing).  A worker that misses enough beats is
                declared dead and its leases are revoked.
``result``      a completed cell: ``lease_id``, ``key``, ``metrics``,
                ``wall_clock_s``.
``fail``        a cell whose execution raised: ``lease_id``, ``key``,
                plus the supervisor taxonomy fields ``kind`` /
                ``message`` / ``detail`` and ``wall_clock_s``.

Master -> worker:

``grant``       a lease: the cell (``experiment`` + ``params``), the
                ``lease_id``, the ``attempt`` number, the lease
                ``budget_s``, and the run configuration the worker
                must apply (``checks``/``faults``/``watchdog``/
                ``telemetry``).
``shutdown``    no more work (or an immediate drain): exit now.

Cells cross the wire as ``(experiment, params)`` and are rebuilt with
:meth:`repro.harness.registry.Cell.make`, so a grant round-trips to
the exact same cell key the master leased.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.harness.registry import Cell

#: Bump on any incompatible message change; checked at ``hello``.
PROTOCOL_VERSION = "repro-dist/v1"

#: Seconds between worker heartbeats.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.5

#: Missed beats before a worker is declared dead.
DEFAULT_HEARTBEAT_MISSES = 6

#: Grace the master adds on top of a cell's budget when sizing its
#: lease: result messages need time to cross the wire, and a worker
#: importing heavy experiment modules pays a one-off warmup.
DEFAULT_LEASE_GRACE_S = 5.0


class ProtocolError(ReproError):
    """A malformed or out-of-order message on a dist connection."""


def encode(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (one line, ``\\n``).

    ``default=str`` keeps failure ``detail`` payloads (which may carry
    arbitrary diagnostic objects) wire-safe rather than crashing the
    reporting path.
    """
    return (json.dumps(message, sort_keys=True, separators=(",", ":"),
                       default=str) + "\n").encode()


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict, validating shape."""
    try:
        message = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed dist message: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(
            f"dist message has no 'type' field: {message!r}")
    return message


# ----------------------------------------------------------------------
# Message constructors: one function per type keeps field names in one
# place for both ends of the wire.
# ----------------------------------------------------------------------

def hello(worker_id: str, pid: int, host: str = "") -> Dict[str, Any]:
    return {"type": "hello", "version": PROTOCOL_VERSION,
            "worker_id": worker_id, "pid": pid, "host": host}


def heartbeat(worker_id: str, seq: int) -> Dict[str, Any]:
    return {"type": "heartbeat", "worker_id": worker_id, "seq": seq}


def grant(lease_id: str, cell: Cell, attempt: int,
          budget_s: Optional[float], checks: Any = False,
          faults: Optional[str] = None, watchdog: Any = False,
          telemetry: Optional[str] = None) -> Dict[str, Any]:
    return {"type": "grant", "lease_id": lease_id,
            "experiment": cell.experiment, "params": cell.as_dict(),
            "key": cell.key, "attempt": attempt, "budget_s": budget_s,
            "checks": checks, "faults": faults, "watchdog": watchdog,
            "telemetry": telemetry}


def result(worker_id: str, lease_id: str, key: str,
           metrics: Dict[str, float], wall_clock_s: float) -> Dict[str, Any]:
    return {"type": "result", "worker_id": worker_id, "lease_id": lease_id,
            "key": key, "metrics": metrics, "wall_clock_s": wall_clock_s}


def fail(worker_id: str, lease_id: str, key: str, kind: str,
         message: str, detail: Dict[str, Any],
         wall_clock_s: float) -> Dict[str, Any]:
    return {"type": "fail", "worker_id": worker_id, "lease_id": lease_id,
            "key": key, "kind": kind, "message": message, "detail": detail,
            "wall_clock_s": wall_clock_s}


def shutdown(reason: str = "done") -> Dict[str, Any]:
    return {"type": "shutdown", "reason": reason}


def cell_from_grant(message: Dict[str, Any]) -> Cell:
    """Rebuild the leased cell from a ``grant`` message.

    Verifies the round-tripped key matches what the master leased —
    a mismatch means JSON mangled a parameter value (or the two ends
    run different registry code) and the result could be filed under
    the wrong cache key.
    """
    cell = Cell.make(message["experiment"], **message["params"])
    if cell.key != message["key"]:
        raise ProtocolError(
            f"grant round-trip changed the cell key: leased "
            f"{message['key']!r}, rebuilt {cell.key!r}")
    return cell


def check_hello(message: Dict[str, Any]) -> str:
    """Validate a ``hello`` and return the worker id."""
    if message.get("type") != "hello":
        raise ProtocolError(
            f"expected hello, got {message.get('type')!r}")
    version = message.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"worker speaks {version!r}, master speaks "
            f"{PROTOCOL_VERSION!r} — mixed checkouts?")
    worker_id = message.get("worker_id")
    if not isinstance(worker_id, str) or not worker_id:
        raise ProtocolError(f"hello carries no worker_id: {message!r}")
    return worker_id
