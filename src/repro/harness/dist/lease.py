"""Lease-based work assignment for the distributed master.

A **lease** is the unit of fault tolerance: a cell is never *sent* to
a worker, it is *leased* — granted with a deadline sized from the
cell's budget (per-cell timeout hints included) plus grace.  Whatever
happens to the worker afterwards, the master's view stays consistent:

* the worker returns a result before the deadline → the lease settles
  and the cell is done;
* the deadline passes → the lease **expires**: the cell re-queues with
  the supervisor's seeded exponential backoff and the attempt is
  recorded as ``timeout``.  A result arriving after expiry is *stale*
  and must be dropped (the cell may already be leased elsewhere) — the
  table refuses to settle a lease it no longer holds;
* the worker dies or goes silent → every lease it held is revoked at
  once and each cell re-queues with the distinct ``worker-lost`` kind.

Attempts are capped exactly as in the local supervised runner: a cell
that exhausts ``retries`` re-executions becomes a
:class:`~repro.harness.supervisor.FailureRecord` in the sweep's
failure manifest.  The backoff schedule is the same pure function of
``(cell key, attempt)``, so a distributed sweep retries on the same
schedule as a local one.

The table is plain single-threaded state — the asyncio master is the
only caller — and takes ``now`` explicitly everywhere, which is what
makes expiry/backoff behaviour unit-testable without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.registry import Cell, cell_budget
from repro.harness.supervisor import (
    DEFAULT_BACKOFF_BASE,
    FailureRecord,
    retry_backoff,
)
from repro.harness.dist.protocol import DEFAULT_LEASE_GRACE_S


@dataclass
class DistTask:
    """One cell's book-keeping across grants, mirroring the local
    supervisor's ``_Task``."""

    cell: Cell
    attempts: int = 0
    not_before: float = 0.0       # backoff gate (master's clock)
    wall_clock_s: float = 0.0
    attempt_log: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.cell.key


@dataclass
class Lease:
    """One outstanding grant: a cell on a worker, with a deadline."""

    lease_id: str
    task: DistTask
    worker: str
    attempt: int
    budget_s: Optional[float]
    deadline: float               # master's clock; inf when unbounded


class LeaseTable:
    """Pending cells, outstanding leases, and the retry policy.

    The master drives it with five calls: :meth:`grant` when a worker
    is idle, :meth:`settle_ok` / :meth:`settle_fail` when messages
    arrive, :meth:`expire` on its periodic scan, and
    :meth:`revoke_worker` when a worker is lost.
    """

    def __init__(self, cells, timeout_s: Optional[float],
                 retries: int,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 lease_grace_s: float = DEFAULT_LEASE_GRACE_S):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base = backoff_base
        self.lease_grace_s = lease_grace_s
        # Longest-first packing: granting the biggest declared budgets
        # first keeps a 1,000-flow cell from becoming the straggler tail
        # of the sweep.  The sort is stable and keyed on the *declared*
        # budget only, so it cannot change any cell's metrics — artifact
        # fingerprints stay backend-independent (results are re-sorted
        # by key downstream).  ``None`` budgets (unsupervised runs) are
        # unbounded, so they sort first.
        def _declared(cell: Cell) -> float:
            budget = cell_budget(cell, timeout_s)
            return float("inf") if budget is None else budget

        self.pending: List[DistTask] = [
            DistTask(cell)
            for cell in sorted(cells, key=_declared, reverse=True)]
        self.leases: Dict[str, Lease] = {}
        self.successes: List[Tuple[DistTask, Dict[str, float], float, str]] = []
        self.failures: List[FailureRecord] = []
        self._next_lease = 0
        # Counters folded into telemetry / `repro report`.
        self.expired_leases = 0
        self.stale_results = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self.pending and not self.leases

    def outstanding(self) -> int:
        """Cells not yet settled (pending + leased)."""
        return len(self.pending) + len(self.leases)

    def next_due(self, now: float) -> Optional[DistTask]:
        """Pop the first pending task whose backoff gate is open."""
        for index, task in enumerate(self.pending):
            if task.not_before <= now:
                return self.pending.pop(index)
        return None

    def earliest_gate(self) -> Optional[float]:
        """The soonest ``not_before`` among pending tasks, if any."""
        if not self.pending:
            return None
        return min(task.not_before for task in self.pending)

    # ------------------------------------------------------------------
    # Granting
    # ------------------------------------------------------------------
    def grant(self, worker: str, now: float) -> Optional[Lease]:
        """Lease the next due cell to *worker*, or ``None`` if none."""
        task = self.next_due(now)
        if task is None:
            return None
        task.attempts += 1
        self._next_lease += 1
        budget = cell_budget(task.cell, self.timeout_s)
        deadline = (float("inf") if budget is None
                    else now + budget + self.lease_grace_s)
        lease = Lease(lease_id=f"L{self._next_lease}", task=task,
                      worker=worker, attempt=task.attempts,
                      budget_s=budget, deadline=deadline)
        self.leases[lease.lease_id] = lease
        return lease

    # ------------------------------------------------------------------
    # Settling
    # ------------------------------------------------------------------
    def _take(self, lease_id: str, worker: str) -> Optional[Lease]:
        """Claim a live lease for settling; ``None`` if stale.

        Stale = the lease expired (and was re-queued or re-granted) or
        belongs to a different worker incarnation.  Dropping stale
        settlements is the no-cache-poisoning guarantee: only the
        current holder of a live lease can file a result for its cell.
        """
        lease = self.leases.get(lease_id)
        if lease is None or lease.worker != worker:
            self.stale_results += 1
            return None
        del self.leases[lease_id]
        return lease

    def settle_ok(self, lease_id: str, worker: str,
                  metrics: Dict[str, float],
                  wall_clock_s: float) -> Optional[DistTask]:
        """A result arrived; returns the task, or ``None`` if stale."""
        lease = self._take(lease_id, worker)
        if lease is None:
            return None
        task = lease.task
        task.wall_clock_s += wall_clock_s
        self.successes.append((task, metrics, wall_clock_s, worker))
        return task

    def settle_fail(self, lease_id: str, worker: str, kind: str,
                    message: str, detail: Dict[str, Any],
                    wall_clock_s: float, now: float,
                    ) -> Optional[Tuple[DistTask, Tuple[str, float]]]:
        """A failure arrived; retry or quarantine the cell.

        Returns the task with its outcome — ``("retry", backoff_s)`` or
        ``("quarantine", 0.0)`` — or ``None`` when the lease was stale.
        """
        lease = self._take(lease_id, worker)
        if lease is None:
            return None
        outcome = self._settle_attempt(lease.task, kind, message, detail,
                                       wall_clock_s, now)
        return (lease.task, outcome)

    def _settle_attempt(self, task: DistTask, kind: str, message: str,
                        detail: Dict[str, Any], wall_clock_s: float,
                        now: float) -> Tuple[str, float]:
        task.wall_clock_s += wall_clock_s
        task.attempt_log.append({"attempt": task.attempts, "kind": kind,
                                 "message": message,
                                 "wall_clock_s": round(wall_clock_s, 6)})
        if task.attempts <= self.retries:
            backoff = retry_backoff(task.key, task.attempts,
                                    self.backoff_base)
            task.attempt_log[-1]["backoff_s"] = round(backoff, 6)
            task.not_before = now + backoff
            self.pending.append(task)
            return ("retry", backoff)
        self.failures.append(FailureRecord(
            key=task.key, experiment=task.cell.experiment, kind=kind,
            message=message, attempts=task.attempts,
            wall_clock_s=task.wall_clock_s, detail=detail,
            attempt_log=task.attempt_log))
        return ("quarantine", 0.0)

    # ------------------------------------------------------------------
    # Expiry and revocation
    # ------------------------------------------------------------------
    def expired(self, now: float) -> List[Lease]:
        """Leases past their deadline (not yet revoked)."""
        return [lease for lease in self.leases.values()
                if now >= lease.deadline]

    def expire(self, lease: Lease, now: float) -> Tuple[str, float]:
        """Revoke one expired lease; the attempt settles as ``timeout``."""
        self.leases.pop(lease.lease_id, None)
        self.expired_leases += 1
        budget = lease.budget_s
        wall = budget if budget is not None else 0.0
        return self._settle_attempt(
            lease.task, "timeout",
            f"lease expired: exceeded the per-cell budget of "
            f"{budget:g}s on worker {lease.worker}",
            {"timeout_s": budget, "worker": lease.worker}, wall, now)

    def revoke_worker(self, worker: str, reason: str,
                      now: float) -> List[Tuple[Lease, Tuple[str, float]]]:
        """Revoke every lease held by *worker* (it died or went dark).

        Each revoked cell settles one ``worker-lost`` attempt — the
        infrastructure failed, not the cell — and re-queues (or
        quarantines, once attempts are exhausted).  Returns the
        revoked leases with their settle outcomes.
        """
        revoked = []
        for lease in [entry for entry in self.leases.values()
                      if entry.worker == worker]:
            del self.leases[lease.lease_id]
            outcome = self._settle_attempt(
                lease.task, "worker-lost",
                f"worker {worker} lost mid-cell ({reason})",
                {"worker": worker, "reason": reason}, 0.0, now)
            revoked.append((lease, outcome))
        return revoked
