"""Chaos cells: adversarial experiments for torturing the dist backend.

These cells exist to *fail* in precisely the ways the distributed
master must survive, so tests and the CI ``dist-smoke`` job can assert
the recovery behaviour instead of hoping for it:

``ok``      returns immediately (control group, and sweep filler).
``sleep``   sleeps ``delay`` seconds — with a small lease budget this
            runs past the deadline, exercising lease expiry and the
            result-after-expiry staleness race.
``exit``    ``os._exit(42)`` mid-cell: the worker process vanishes
            without reporting, exercising EOF detection and
            ``worker-lost`` revocation.
``stop``    ``SIGSTOP``s its own process: the worker (heartbeat thread
            included) freezes while the connection stays open,
            exercising heartbeat-silence detection.
``crash``   raises — an ordinary cell-level ``crash``, distinct from
            the infrastructure kinds above.
``flaky``   crashes on the first execution, succeeds on the second,
            using a marker file under the ``scratch`` parameter —
            exercising re-queue + deterministic backoff end to end.

The module registers the ``dist_chaos`` experiment at import time, so
spawned workers pick it up via ``--preload repro.harness.dist.chaos``
(spawned workers are fresh interpreters and see no runtime
registrations otherwise).  Import is idempotent per process.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict

from repro.errors import ReproError
from repro.harness.registry import register_experiment

#: The experiment name the chaos runner registers under.
CHAOS_EXPERIMENT = "dist_chaos"


def chaos_cell(mode: str, delay: float = 0.0, seed: int = 0,
               scratch: str = "") -> Dict[str, float]:
    """Run one chaos cell.  Most modes do not return normally."""
    if mode == "ok":
        if delay:
            time.sleep(delay)
        return {"value": float(seed), "chaos": 0.0}
    if mode == "sleep":
        time.sleep(delay)
        return {"value": float(seed), "chaos": 1.0}
    if mode == "exit":
        os._exit(42)
    if mode == "stop":
        os.kill(os.getpid(), signal.SIGSTOP)
        # Only reached once something SIGCONTs or SIGKILLs fail; treat
        # resumption as success so the mode is safe under fork workers.
        return {"value": float(seed), "chaos": 2.0}
    if mode == "crash":
        raise RuntimeError(f"chaos crash (seed={seed})")
    if mode == "flaky":
        marker = os.path.join(scratch, f"flaky-{seed}.attempted")
        if os.path.exists(marker):
            return {"value": float(seed), "chaos": 3.0}
        with open(marker, "w") as handle:
            handle.write("attempt 1\n")
        raise RuntimeError(f"chaos flaky first attempt (seed={seed})")
    raise ReproError(f"unknown chaos mode {mode!r}")


try:
    register_experiment(CHAOS_EXPERIMENT, chaos_cell)
except ReproError:  # pragma: no cover - double import in one process
    pass
