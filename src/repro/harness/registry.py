"""Scenario registry: every paper artifact decomposed into cells.

A **cell** is one independent simulation run — the atom of the
evaluation grid.  ``table2`` is 27 cells (3 protocols x 3 buffer
counts x 3 seeds); ``figure7`` is a single traced run.  Cells carry a
stable string key (``table2/buffers=10/proto=reno/seed=0``) used for
caching, JSON artifacts, and the regression baseline, so the key
format is a compatibility contract: changing it invalidates every
cached and committed result.

Each experiment registers a *grid* (quick and full variants) and a
*runner* that executes one cell and returns a flat ``{metric: number}``
dict.  Runners are module-level functions so cells can cross a
``multiprocessing`` pickle boundary.  Seeds are part of the cell
parameters — never derived from worker identity — which is what makes
``--jobs 1`` and ``--jobs N`` bit-identical by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

#: Metric key every runner gets for free (see :func:`run_cell`).
EVENTS_METRIC = "events_processed"


def _fmt(value: Any) -> str:
    """Render one parameter value for a cell key, stably."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


@dataclass(frozen=True)
class Cell:
    """One grid point: an experiment name plus its parameters.

    ``params`` is a key-sorted tuple of pairs so cells are hashable,
    picklable, and render to the same key however they were built.
    """

    experiment: str
    params: Tuple[Tuple[str, Any], ...]

    @classmethod
    def make(cls, experiment: str, **params: Any) -> "Cell":
        return cls(experiment, tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def key(self) -> str:
        parts = [self.experiment]
        parts.extend(f"{k}={_fmt(v)}" for k, v in self.params)
        return "/".join(parts)

    def __str__(self) -> str:
        return self.key


# ----------------------------------------------------------------------
# Cell runners: one function per experiment, returning flat metrics.
# Imports are deferred so pool workers only load what their cells use.
# ----------------------------------------------------------------------

def _table1_cell(small: str, large: str, buffers: int, delay: float,
                 seed: int) -> Dict[str, float]:
    from repro.experiments.one_on_one import run_one_on_one

    result = run_one_on_one(small, large, delay, buffers, seed=seed)
    return {
        "small_throughput_kbps": result.small.throughput_kbps,
        "small_retransmit_kb": result.small.retransmitted_kb,
        "small_coarse_timeouts": result.small.coarse_timeouts,
        "large_throughput_kbps": result.large.throughput_kbps,
        "large_retransmit_kb": result.large.retransmitted_kb,
        "large_coarse_timeouts": result.large.coarse_timeouts,
    }


def _table2_cell(proto: str, buffers: int, seed: int) -> Dict[str, float]:
    from repro.experiments.background import run_with_background

    run = run_with_background(proto, buffers=buffers, seed=seed)
    return {
        "throughput_kbps": run.transfer.throughput_kbps,
        "retransmit_kb": run.transfer.retransmitted_kb,
        "coarse_timeouts": run.transfer.coarse_timeouts,
        "background_throughput_kbps": run.background_throughput_kbps,
    }


def _table3_cell(background: str, transfer: str, buffers: int,
                 seed: int) -> Dict[str, float]:
    from repro.experiments.background import run_with_background

    run = run_with_background(transfer, background_cc=background,
                              buffers=buffers, seed=seed)
    return {
        "background_throughput_kbps": run.background_throughput_kbps,
        "transfer_throughput_kbps": run.transfer.throughput_kbps,
    }


def _table4_cell(proto: str, seed: int) -> Dict[str, float]:
    from repro.experiments.internet import run_internet_transfer

    result = run_internet_transfer(proto, seed=seed)
    return {
        "throughput_kbps": result.throughput_kbps,
        "retransmit_kb": result.retransmitted_kb,
        "coarse_timeouts": result.coarse_timeouts,
    }


def _table5_cell(proto: str, size_kb: int, seed: int) -> Dict[str, float]:
    from repro.experiments.internet import run_internet_transfer
    from repro.units import kb

    result = run_internet_transfer(proto, size=kb(size_kb), seed=seed)
    return {
        "throughput_kbps": result.throughput_kbps,
        "retransmit_kb": result.retransmitted_kb,
        "coarse_timeouts": result.coarse_timeouts,
    }


def _traced_metrics(graph, result) -> Dict[str, float]:
    return {
        "throughput_kbps": result.throughput_kbps,
        "retransmit_kb": result.retransmitted_kb,
        "coarse_timeouts": result.coarse_timeouts,
        "segments_lost": graph.losses(),
    }


def _figure6_cell(seed: int) -> Dict[str, float]:
    from repro.experiments.traces import figure6

    return _traced_metrics(*figure6(seed=seed))


def _figure7_cell(seed: int) -> Dict[str, float]:
    from repro.experiments.traces import figure7

    return _traced_metrics(*figure7(seed=seed))


def _figure9_cell(seed: int) -> Dict[str, float]:
    from repro.experiments.traces import figure9

    return _traced_metrics(*figure9(seed=seed))


def _sendbuf_cell(cc: str, size_kb: int, seed: int) -> Dict[str, float]:
    from repro.experiments.transfers import run_solo_transfer
    from repro.units import kb

    result = run_solo_transfer(cc, seed=seed, sndbuf=kb(size_kb))
    return {
        "throughput_kbps": result.throughput_kbps,
        "retransmit_kb": result.retransmitted_kb,
        "coarse_timeouts": result.coarse_timeouts,
    }


def _fairness_cell(cc: str, count: int, mixed: bool,
                   seed: int) -> Dict[str, float]:
    from repro.experiments.fairness_exp import run_competing_connections
    from repro.units import kb, mb

    # The CLI's grid: 2 MB transfers for 2/4 connections, 512 KB for 16.
    size = mb(2) if count <= 4 else kb(512)
    result = run_competing_connections(cc, count, transfer_bytes=size,
                                       mixed_delays=mixed, buffers=20,
                                       seed=seed)
    return {
        "fairness_index": result.fairness_index,
        "aggregate_throughput_kbps": result.aggregate_throughput,
        "retransmit_kb": result.total_retransmit_kb,
        "coarse_timeouts": result.coarse_timeouts,
    }


def _twoway_cell(proto: str, buffers: int, seed: int) -> Dict[str, float]:
    from repro.experiments.background import run_with_background

    run = run_with_background(proto, buffers=buffers, seed=seed,
                              two_way=True)
    return {
        "throughput_kbps": run.transfer.throughput_kbps,
        "retransmit_kb": run.transfer.retransmitted_kb,
        "coarse_timeouts": run.transfer.coarse_timeouts,
    }


def _telnet_cell(cc: str, seed: int) -> Dict[str, float]:
    from repro.experiments.telnet_response import run_telnet_response

    result = run_telnet_response(cc, seed=seed, arrival_mean=0.22,
                                 duration=120.0)
    return {
        "mean_response_s": result.mean,
        "median_response_s": result.median,
        "p95_response_s": result.p95,
        "n_samples": len(result.samples),
    }


def _many_flows_cell(flows: int, seed: int) -> Dict[str, float]:
    from repro.experiments.many_flows import many_flows_metrics

    return many_flows_metrics(flows, seed)


# Arena matchup cells (see repro.arena): registered as built-in
# runners so worker processes resolve them by name under any
# multiprocessing start method, but with *no* fixed grid — their cells
# come from the parameterized ``arena`` family (family_cells) instead
# of the run-all sweep.

def _arena_solo_cell(scheme: str, scenario: str, seed: int) -> Dict[str, float]:
    from repro.arena.cells import arena_solo

    return arena_solo(scheme, scenario, seed)


def _arena_duel_cell(a: str, b: str, scenario: str,
                     seed: int) -> Dict[str, float]:
    from repro.arena.cells import arena_duel

    return arena_duel(a, b, scenario, seed)


def _arena_mix_cell(scheme: str, cross: str, n_cross: int, scenario: str,
                    seed: int) -> Dict[str, float]:
    from repro.arena.cells import arena_mix

    return arena_mix(scheme, cross, n_cross, scenario, seed)


def _search_cohort_cell(schemes: str, bw_kbps: float, delay_ms: float,
                        buffers: int, size_kb: int, loss: float,
                        seed: int) -> Dict[str, float]:
    from repro.search.cells import run_search_cohort

    return run_search_cohort(schemes=schemes, bw_kbps=bw_kbps,
                             delay_ms=delay_ms, buffers=buffers,
                             size_kb=size_kb, loss=loss, seed=seed)


_RUNNERS: Dict[str, Callable[..., Dict[str, float]]] = {
    "table1": _table1_cell,
    "table2": _table2_cell,
    "table3": _table3_cell,
    "table4": _table4_cell,
    "table5": _table5_cell,
    "figure6": _figure6_cell,
    "figure7": _figure7_cell,
    "figure9": _figure9_cell,
    "sendbuf": _sendbuf_cell,
    "fairness": _fairness_cell,
    "twoway": _twoway_cell,
    "telnet": _telnet_cell,
    "many_flows": _many_flows_cell,
    "arena_solo": _arena_solo_cell,
    "arena_duel": _arena_duel_cell,
    "arena_mix": _arena_mix_cell,
    "search_cohort": _search_cohort_cell,
}


# ----------------------------------------------------------------------
# Grids: the quick/full parameter sweeps, mirroring the CLI defaults.
# ----------------------------------------------------------------------

_TABLE1_COMBOS = (("reno", "reno"), ("reno", "vegas"),
                  ("vegas", "reno"), ("vegas", "vegas"))
_TABLE2_PROTOCOLS = ("reno", "vegas-1,3", "vegas-2,4")


def _table1_grid(quick: bool) -> List[Cell]:
    delays = (0.0, 1.0, 2.0) if quick else (0.0, 0.5, 1.0, 1.5, 2.0, 2.5)
    buffers = (15, 20)
    cells = []
    for small, large in _TABLE1_COMBOS:
        # Seeds follow the serial driver: one run index per
        # (buffers, delay) grid point, restarting per combo.
        run_index = 0
        for nbuf in buffers:
            for delay in delays:
                cells.append(Cell.make("table1", small=small, large=large,
                                       buffers=nbuf, delay=delay,
                                       seed=run_index))
                run_index += 1
    return cells


def _table2_grid(quick: bool) -> List[Cell]:
    buffers = (10,) if quick else (10, 15, 20)
    seeds = (0,) if quick else (0, 1, 2)
    return [Cell.make("table2", proto=proto, buffers=nbuf, seed=seed)
            for proto in _TABLE2_PROTOCOLS
            for nbuf in buffers for seed in seeds]


def _table3_grid(quick: bool) -> List[Cell]:
    buffers = (10,) if quick else (10, 15, 20)
    seeds = (0,) if quick else (0, 1, 2)
    return [Cell.make("table3", background=bg, transfer=xfer,
                      buffers=nbuf, seed=seed)
            for bg in ("reno", "vegas") for xfer in ("reno", "vegas")
            for nbuf in buffers for seed in seeds]


def _table4_grid(quick: bool) -> List[Cell]:
    seeds = (0, 1) if quick else (0, 1, 2)
    return [Cell.make("table4", proto=proto, seed=seed)
            for proto in _TABLE2_PROTOCOLS for seed in seeds]


def _table5_grid(quick: bool) -> List[Cell]:
    sizes = (512, 128) if quick else (1024, 512, 128)
    seeds = (0, 1) if quick else (0, 1, 2)
    return [Cell.make("table5", proto=proto, size_kb=size, seed=seed)
            for size in sizes for proto in ("reno", "vegas-1,3")
            for seed in seeds]


def _figure_grid(name: str):
    def grid(quick: bool) -> List[Cell]:
        return [Cell.make(name, seed=0)]
    return grid


def _sendbuf_grid(quick: bool) -> List[Cell]:
    sizes = (5, 20, 50) if quick else (5, 10, 15, 20, 30, 40, 50)
    return [Cell.make("sendbuf", cc=cc, size_kb=size, seed=0)
            for cc in ("reno", "vegas") for size in sizes]


def _fairness_grid(quick: bool) -> List[Cell]:
    counts = (2, 16) if quick else (2, 4, 16)
    return [Cell.make("fairness", cc=cc, count=count, mixed=mixed, seed=0)
            for count in counts for cc in ("reno", "vegas")
            for mixed in (False, True)]


def _twoway_grid(quick: bool) -> List[Cell]:
    buffers = (10,) if quick else (10, 15, 20)
    seeds = (0,) if quick else (0, 1, 2)
    return [Cell.make("twoway", proto=proto, buffers=nbuf, seed=seed)
            for proto in ("reno", "vegas")
            for nbuf in buffers for seed in seeds]


def _telnet_grid(quick: bool) -> List[Cell]:
    seeds = (0,) if quick else (0, 1, 2)
    return [Cell.make("telnet", cc=cc, seed=seed)
            for cc in ("reno", "vegas") for seed in seeds]


_GRIDS: Dict[str, Callable[[bool], List[Cell]]] = {
    "table1": _table1_grid,
    "table2": _table2_grid,
    "table3": _table3_grid,
    "table4": _table4_grid,
    "table5": _table5_grid,
    "figure6": _figure_grid("figure6"),
    "figure7": _figure_grid("figure7"),
    "figure9": _figure_grid("figure9"),
    "sendbuf": _sendbuf_grid,
    "fairness": _fairness_grid,
    "twoway": _twoway_grid,
    "telnet": _telnet_grid,
}

#: Registry order — also the order ``run-all`` reports experiments in.
EXPERIMENTS: Tuple[str, ...] = tuple(_GRIDS)


# ----------------------------------------------------------------------
# Cell families: parameterized grids generated from selection
# arguments (scheme/scenario/seed subsets), unlike the fixed quick/full
# experiment grids above.  A family's cells run through the same
# supervised runner/cache/quarantine pipeline as any sweep cell.
# ----------------------------------------------------------------------

def _arena_family(**selection) -> List[Cell]:
    from repro.arena.matrix import generate_matrix

    return generate_matrix(**selection)


def _many_flows_family(flows=None, seeds=(0,)) -> List[Cell]:
    from repro.experiments.many_flows import BENCH_FLOW_COUNTS

    counts = BENCH_FLOW_COUNTS if flows is None else tuple(flows)
    return [Cell.make("many_flows", flows=n, seed=seed)
            for n in counts for seed in seeds]


def _search_family(objective: str = "vegas_regret", count: int = 4,
                   seed: int = 0, quick: bool = False) -> List[Cell]:
    from repro.search.driver import family_preview_cells

    return family_preview_cells(objective, count=count, seed=seed,
                                quick=quick)


_FAMILIES: Dict[str, Callable[..., List[Cell]]] = {
    "arena": _arena_family,
    "many_flows": _many_flows_family,
    "search": _search_family,
}


def families() -> List[str]:
    """Sorted list of registered cell-family names."""
    return sorted(_FAMILIES)


def register_family(name: str,
                    generator: Callable[..., List[Cell]]) -> None:
    """Register a parameterized cell family at runtime."""
    if name in _FAMILIES:
        raise ReproError(f"cell family {name!r} is already registered")
    _FAMILIES[name] = generator


def family_cells(name: str, **selection: Any) -> List[Cell]:
    """Generate one family's cells from keyword selection arguments."""
    try:
        generator = _FAMILIES[name]
    except KeyError:
        known = ", ".join(families())
        raise ReproError(
            f"unknown cell family {name!r} (known: {known})") from None
    return generator(**selection)


# ----------------------------------------------------------------------
# Per-cell timeout hints: experiments whose cells need more wall clock
# than the global supervised deadline declare their own budget here, so
# a nightly sweep never needs a global ``--timeout`` bump just because
# one family is slow — and the distributed master sizes leases per cell.
# ----------------------------------------------------------------------

#: experiment -> float seconds, or callable(params dict) -> seconds.
_TIMEOUT_HINTS: Dict[str, Any] = {}


def register_timeout_hint(experiment: str, hint: Any) -> None:
    """Declare a per-cell wall-clock budget for one experiment.

    *hint* is either a float (seconds) or a callable taking the cell's
    params dict and returning seconds — e.g. ``many_flows`` scales its
    budget with the flow count.  Hints only ever *raise* the effective
    deadline (see :func:`cell_budget`); they can never shrink it below
    the sweep-wide timeout.  Re-registering replaces the prior hint.
    """
    _TIMEOUT_HINTS[experiment] = hint


def timeout_hint(cell: Cell) -> Optional[float]:
    """The declared budget of *cell* in seconds, or ``None``.

    Hints are validated here, at use time, because a callable hint only
    misbehaves once it sees a concrete params dict — and the supervisor
    and dist master both call this mid-sweep, where a raw ``TypeError``
    or a NaN deadline would otherwise surface as an opaque crash.
    """
    hint = _TIMEOUT_HINTS.get(cell.experiment)
    if hint is None:
        return None
    if callable(hint):
        try:
            value = hint(cell.as_dict())
        except Exception as exc:
            raise ReproError(
                f"timeout hint for experiment {cell.experiment!r} raised "
                f"{type(exc).__name__} on cell {cell.key!r}: {exc}") from exc
    else:
        value = hint
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"timeout hint for experiment {cell.experiment!r} returned "
            f"non-numeric budget {value!r} for cell {cell.key!r}") from exc
    if math.isnan(seconds) or seconds <= 0:
        raise ReproError(
            f"timeout hint for experiment {cell.experiment!r} returned "
            f"invalid budget {seconds!r} for cell {cell.key!r} "
            f"(must be a positive number of seconds)")
    return seconds


def cell_budget(cell: Cell,
                timeout_s: Optional[float]) -> Optional[float]:
    """Effective supervised deadline for *cell*.

    ``None`` (unsupervised / no deadline) passes through.  Otherwise
    the budget is the *larger* of the sweep-wide ``timeout_s`` and the
    cell's registered hint: a hint widens slow families without letting
    a forgotten registration silently shrink anyone's deadline.
    """
    if timeout_s is None:
        return None
    hint = timeout_hint(cell)
    if hint is None:
        return timeout_s
    return max(timeout_s, hint)


# The 500/1,000-conversation cells legitimately run for minutes; size
# their deadline with the population instead of bumping every sweep's
# global timeout (quick cells keep the tight default).
register_timeout_hint(
    "many_flows", lambda params: max(180.0, 1.2 * params.get("flows", 0)))

# Search points range over arbitrary cohort sizes and horizons; give
# each flow a generous slice so a slow corner of the space quarantines
# on its own merits rather than on the sweep-wide default.
register_timeout_hint(
    "search_cohort",
    lambda params: max(150.0,
                       30.0 * len(str(params.get("schemes", "")).split("+"))))


def register_experiment(name: str,
                        runner: Callable[..., Dict[str, float]],
                        grid: Optional[Callable[[bool], List[Cell]]] = None,
                        ) -> None:
    """Register an extra experiment at runtime.

    Used by extension code and the supervisor test-suite to add cells
    beyond the paper's grids.  *runner* must be a module-level callable
    (cells cross process boundaries); *grid*, when given, makes the
    experiment part of :func:`all_cells` sweeps.  Worker processes see
    runtime registrations only under the ``fork`` start method — the
    supervised runner's default on POSIX.
    """
    global EXPERIMENTS
    if name in _RUNNERS:
        raise ReproError(f"experiment {name!r} is already registered")
    _RUNNERS[name] = runner
    if grid is not None:
        _GRIDS[name] = grid
        EXPERIMENTS = tuple(_GRIDS)


def unregister_experiment(name: str) -> None:
    """Remove a runtime registration (idempotent; built-ins protected)."""
    global EXPERIMENTS
    if name in _BUILTIN_EXPERIMENTS:
        raise ReproError(f"cannot unregister built-in experiment {name!r}")
    _RUNNERS.pop(name, None)
    _TIMEOUT_HINTS.pop(name, None)
    if _GRIDS.pop(name, None) is not None:
        EXPERIMENTS = tuple(_GRIDS)


# Covers grid experiments *and* grid-less built-in runners (the arena
# cell families dispatch through those).
_BUILTIN_EXPERIMENTS = frozenset(_RUNNERS)


def cells_for(experiment: str, quick: bool = False) -> List[Cell]:
    """All cells of one experiment's grid (quick or full variant)."""
    try:
        grid = _GRIDS[experiment]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ReproError(
            f"unknown experiment {experiment!r} (known: {known})") from None
    return grid(quick)


def all_cells(quick: bool = False,
              experiments: Optional[Iterable[str]] = None) -> List[Cell]:
    """The full sweep: every experiment's grid, in registry order."""
    names = list(experiments) if experiments is not None else list(EXPERIMENTS)
    cells: List[Cell] = []
    for name in names:
        cells.extend(cells_for(name, quick=quick))
    return cells


def resolve_faults(faults: Any):
    """Normalise a faults argument to a FaultPlan (or None).

    Accepts ``None``, a spec/profile string, or a ``FaultPlan``; a
    plan that injects nothing collapses to ``None`` so clean runs stay
    on the clean cache namespace.
    """
    if faults is None:
        return None
    from repro.faults.plan import FaultPlan

    plan = faults if isinstance(faults, FaultPlan) else FaultPlan.parse(faults)
    return None if plan.is_null() else plan


def resolve_watchdog(watchdog: Any):
    """Normalise a watchdog argument to a LivenessWatchdog (or None).

    Accepts ``False``/``None`` (off), ``True`` (default stall window),
    a number of simulated seconds, or a built
    :class:`~repro.sim.watchdog.LivenessWatchdog`.
    """
    if not watchdog:
        return None
    from repro.sim.watchdog import LivenessWatchdog

    if isinstance(watchdog, LivenessWatchdog):
        return watchdog
    if isinstance(watchdog, bool):
        return LivenessWatchdog()
    return LivenessWatchdog(stall_after=float(watchdog))


def run_cell(cell: Cell, checks: Any = False,
             faults: Any = None, watchdog: Any = False,
             telemetry: Optional[str] = None) -> Dict[str, float]:
    """Execute one cell and return its metrics.

    Adds ``events_processed`` (from the cell's simulator, via
    :func:`repro.sim.engine.last_simulator`) to whatever the
    experiment runner reports.

    ``checks`` enables the runtime invariant checker for the run:
    truthy for fail-fast (``"raise"``), or ``"collect"`` to record
    violations and report their count as the ``invariant_violations``
    metric.  ``faults`` composes a fault plan (spec string, profile
    name, or :class:`~repro.faults.plan.FaultPlan`) onto the cell's
    topology; the injector's summed counters join the metrics.
    ``watchdog`` arms the liveness guard (see :func:`resolve_watchdog`),
    turning a stalled simulation into a typed
    :class:`~repro.errors.SimulationStalled` instead of a spin to the
    horizon.  ``telemetry`` (a JSONL path) arms the telemetry gauge
    sampler (:mod:`repro.obs`) for the run; the file is opened in
    append mode so a sweep's workers interleave into one log.  The
    checker's, watchdog's and sampler's hooks schedule nothing, so
    none of them ever changes ``events_processed``.
    """
    from repro.sim import engine

    try:
        runner = _RUNNERS[cell.experiment]
    except KeyError:
        raise ReproError(f"no runner for experiment {cell.experiment!r}") from None

    checker = None
    if checks:
        from repro.checks.checker import InvariantChecker

        mode = "collect" if checks == "collect" else "raise"
        checker = InvariantChecker(mode=mode)
    plan = resolve_faults(faults)
    guard = resolve_watchdog(watchdog)

    engine._last_simulator = None
    session = None
    sink = None
    try:
        if checker is not None:
            from repro.checks import runtime as checks_runtime

            checks_runtime.activate(checker)
        if plan is not None:
            from repro.faults import runtime as faults_runtime

            session = faults_runtime.activate(plan)
        if guard is not None:
            from repro.sim import watchdog as watchdog_runtime

            watchdog_runtime.activate(guard)
        if telemetry is not None:
            from repro.obs import runtime as obs_runtime
            from repro.obs.events import TelemetrySink
            from repro.obs.gauges import GaugeSampler

            sink = TelemetrySink(telemetry)
            obs_runtime.activate(GaugeSampler(sink, cell=cell.key))
        metrics = runner(**cell.as_dict())
    finally:
        if sink is not None:
            from repro.obs import runtime as obs_runtime

            obs_runtime.deactivate()
            sink.close()
        if guard is not None:
            from repro.sim import watchdog as watchdog_runtime

            watchdog_runtime.deactivate()
        if plan is not None:
            from repro.faults import runtime as faults_runtime

            faults_runtime.deactivate()
        if checker is not None:
            from repro.checks import runtime as checks_runtime

            checks_runtime.deactivate()
    sim = engine.last_simulator()
    if sim is not None:
        metrics[EVENTS_METRIC] = sim.events_processed
    if checker is not None:
        metrics["invariant_violations"] = float(len(checker.violations))
        if checker.violations:
            import sys

            for violation in checker.violations[:10]:
                print(f"invariant violation in {cell.key}: {violation}",
                      file=sys.stderr)
    if session is not None:
        for name, value in sorted(session.totals().items()):
            metrics[f"fault_{name}"] = float(value)
    return metrics
