"""Re-assemble harness cells into the paper-style experiment outputs.

The serial CLI subcommands loop over a grid and feed samples into a
:class:`~repro.metrics.tables.MetricTable` as they go; the harness
runs the same grid as independent cells and this module folds the
cells back into those tables (and the non-tabular summaries) after
the fact.  Aggregation works on JSON-shaped cell dicts —
``{"experiment", "params", "metrics"}`` — so it applies equally to a
fresh :class:`~repro.harness.runner.RunReport` rendered by
:func:`repro.harness.artifacts.build_document` and to a document
loaded back from disk.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.metrics.tables import MetricTable, format_table

Cells = Sequence[Dict[str, Any]]


def _group(cells: Cells) -> Dict[str, List[Dict[str, Any]]]:
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for cell in sorted(cells, key=lambda c: c["key"]):
        grouped.setdefault(cell["experiment"], []).append(cell)
    return grouped


def _table1(cells: Cells) -> str:
    from repro.experiments.one_on_one import PAPER_TABLE1

    columns = sorted({f"{c['params']['small']}/{c['params']['large']}"
                      for c in cells})
    table = MetricTable(columns)
    for cell in cells:
        column = f"{cell['params']['small']}/{cell['params']['large']}"
        metrics = cell["metrics"]
        table.add_sample("Small throughput (KB/s)", column,
                         metrics["small_throughput_kbps"])
        table.add_sample("Large throughput (KB/s)", column,
                         metrics["large_throughput_kbps"])
        table.add_sample("Small retransmits (KB)", column,
                         metrics["small_retransmit_kb"])
        table.add_sample("Large retransmits (KB)", column,
                         metrics["large_retransmit_kb"])
        table.add_sample("Combined retransmits (KB)", column,
                         metrics["small_retransmit_kb"]
                         + metrics["large_retransmit_kb"])
    ratios = {}
    if "reno/reno" in columns:
        ratios = {"Small throughput (KB/s)": "reno/reno",
                  "Large throughput (KB/s)": "reno/reno"}
    return format_table("Table 1: one-on-one transfers", table,
                        ratios_for=ratios, paper=PAPER_TABLE1)


def _simple_transfer_table(cells: Cells, title: str, column_param: str,
                           paper=None) -> str:
    columns = sorted({str(c["params"][column_param]) for c in cells})
    table = MetricTable(columns)
    for cell in cells:
        column = str(cell["params"][column_param])
        metrics = cell["metrics"]
        table.add_sample("Throughput (KB/s)", column,
                         metrics["throughput_kbps"])
        table.add_sample("Retransmissions (KB)", column,
                         metrics["retransmit_kb"])
        table.add_sample("Coarse timeouts", column,
                         metrics["coarse_timeouts"])
        if "background_throughput_kbps" in metrics:
            table.add_sample("Background throughput (KB/s)", column,
                             metrics["background_throughput_kbps"])
    ratios = {}
    if "reno" in columns:
        ratios = {"Throughput (KB/s)": "reno", "Retransmissions (KB)": "reno"}
    return format_table(title, table, ratios_for=ratios, paper=paper)


def _table2(cells: Cells) -> str:
    from repro.experiments.background import PAPER_TABLE2

    return _simple_transfer_table(
        cells, "Table 2: 1MB transfer vs tcplib background", "proto",
        paper=PAPER_TABLE2)


def _table3(cells: Cells) -> str:
    from repro.experiments.background import PAPER_TABLE3

    sums: Dict[tuple, List[float]] = {}
    for cell in cells:
        pair = (cell["params"]["background"], cell["params"]["transfer"])
        sums.setdefault(pair, []).append(
            cell["metrics"]["background_throughput_kbps"])
    lines = ["Table 3: background throughput (KB/s)",
             "background CC | transfer CC | measured | paper"]
    for pair in sorted(sums):
        mean = sum(sums[pair]) / len(sums[pair])
        lines.append(f"{pair[0]:>13} | {pair[1]:>11} | {mean:8.1f} | "
                     f"{PAPER_TABLE3[pair]:5.0f}")
    return "\n".join(lines)


def _table4(cells: Cells) -> str:
    from repro.experiments.internet import PAPER_TABLE4

    return _simple_transfer_table(
        cells, "Table 4: 1MB over the emulated UA->NIH path", "proto",
        paper=PAPER_TABLE4)


def _table5(cells: Cells) -> str:
    from repro.experiments.internet import PAPER_TABLE5
    from repro.units import kb

    sizes = sorted({c["params"]["size_kb"] for c in cells}, reverse=True)
    sections = []
    for size_kb in sizes:
        subset = [c for c in cells if c["params"]["size_kb"] == size_kb]
        sections.append(_simple_transfer_table(
            subset, f"Table 5 — {size_kb} KB transfers", "proto",
            paper=PAPER_TABLE5.get(kb(size_kb))))
    return "\n\n".join(sections)


def _figure(title: str, paper_note: str):
    def render(cells: Cells) -> str:
        lines = [f"{title} ({paper_note})"]
        for cell in cells:
            metrics = cell["metrics"]
            lines.append(
                f"seed {cell['params']['seed']}: "
                f"{metrics['throughput_kbps']:.1f} KB/s, "
                f"{metrics['retransmit_kb']:.1f} KB retransmitted, "
                f"{metrics['coarse_timeouts']:.0f} timeouts, "
                f"{metrics['segments_lost']:.0f} segments lost")
        return "\n".join(lines)
    return render


def _sendbuf(cells: Cells) -> str:
    by_size: Dict[int, Dict[str, List[Dict[str, float]]]] = {}
    for cell in cells:
        size = cell["params"]["size_kb"]
        by_size.setdefault(size, {}).setdefault(
            cell["params"]["cc"], []).append(cell["metrics"])
    lines = ["§4.3 send-buffer sweep (1 MB solo transfers)",
             "sndbuf | Reno KB/s (retx) | Vegas KB/s (retx)"]

    def mean(metrics_list, field):
        return sum(m[field] for m in metrics_list) / len(metrics_list)

    for size in sorted(by_size):
        cols = []
        for cc in ("reno", "vegas"):
            runs = by_size[size].get(cc)
            if runs:
                cols.append(f"{mean(runs, 'throughput_kbps'):8.1f} "
                            f"({mean(runs, 'retransmit_kb'):5.1f})")
            else:
                cols.append(f"{'-':>16}")
        lines.append(f"{size:4d}KB | {cols[0]} | {cols[1]}")
    return "\n".join(lines)


def _fairness(cells: Cells) -> str:
    lines = ["§4.3 multiple competing connections (Jain index)"]
    ordered = sorted(cells, key=lambda c: (c["params"]["count"],
                                           c["params"]["cc"],
                                           c["params"]["mixed"]))
    for cell in ordered:
        params, metrics = cell["params"], cell["metrics"]
        delays = "2:1" if params["mixed"] else "equal"
        lines.append(f"{params['count']:3d} conns, {delays:5s} delays, "
                     f"{params['cc']:5s}: "
                     f"Jain {metrics['fairness_index']:.3f}, "
                     f"{metrics['coarse_timeouts']:.0f} timeouts")
    return "\n".join(lines)


def _twoway(cells: Cells) -> str:
    return _simple_transfer_table(
        cells, "§4.3 two-way background traffic", "proto")


def _telnet(cells: Cells) -> str:
    pooled: Dict[str, List[Dict[str, float]]] = {}
    for cell in cells:
        pooled.setdefault(cell["params"]["cc"], []).append(cell["metrics"])

    def pooled_mean(runs):
        total = sum(m["n_samples"] for m in runs)
        if not total:
            return 0.0
        return sum(m["mean_response_s"] * m["n_samples"] for m in runs) / total

    lines = ["§6 TELNET response time (all-Reno vs all-Vegas world)"]
    means = {cc: pooled_mean(runs) for cc, runs in pooled.items()}
    for cc in sorted(means):
        lines.append(f"all-{cc}: {means[cc] * 1000:7.1f} ms mean response")
    if means.get("reno"):
        speedup = (means["reno"] - means.get("vegas", 0.0)) / means["reno"]
        lines.append(f"vegas vs reno: {speedup * 100:+.1f}% "
                     "(paper: ~25% faster)")
    return "\n".join(lines)


_AGGREGATORS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "figure6": _figure("Figure 6 — Reno, no other traffic",
                       "paper: 105 KB/s"),
    "figure7": _figure("Figure 7 — Vegas, no other traffic",
                       "paper: 169 KB/s"),
    "figure9": _figure("Figure 9 — Vegas + tcplib background",
                       "trace headline numbers"),
    "sendbuf": _sendbuf,
    "fairness": _fairness,
    "twoway": _twoway,
    "telnet": _telnet,
}


def summarize(cells: Cells) -> str:
    """Paper-style text report for every experiment present in *cells*."""
    from repro.harness.registry import EXPERIMENTS

    grouped = _group(cells)
    sections = []
    # Registry order first, then anything unknown (forward compatibility).
    order = [e for e in EXPERIMENTS if e in grouped]
    order.extend(e for e in sorted(grouped) if e not in EXPERIMENTS)
    for experiment in order:
        aggregator = _AGGREGATORS.get(experiment)
        if aggregator is None:
            sections.append(f"{experiment}: {len(grouped[experiment])} cells "
                            "(no aggregator)")
        else:
            sections.append(aggregator(grouped[experiment]))
    return "\n\n".join(sections)
