"""Schema-versioned JSON artifacts for harness sweeps.

The artifact is the machine-readable record of a sweep: one entry per
cell with its parameters and metrics, plus run metadata (job count,
cache accounting, wall clock).  Determinism contract: for the same
source tree and cells, the ``cells`` array is byte-identical across
``--jobs`` settings, across cached/uncached runs, **and across
execution backends** (local pool vs the distributed master) except for
the ``wall_clock_s``/``cached`` bookkeeping and the v3 provenance
fields (``worker``/``attempts``/``attempt_log``), which is why
:func:`cells_fingerprint` — the hash CI compares — covers only the
deterministic fields.

Since v2 the document also carries a ``failures`` array — the
supervised runner's quarantine manifest (see
:mod:`repro.harness.supervisor`): one structured record per cell that
timed out, crashed, diverged or violated an invariant after its
retries were exhausted.  Failures never enter the fingerprint; they
describe what could *not* be computed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from repro.errors import ReproError

#: Bump on any change to the document layout or cell key format.
#: v2 added the ``failures`` section (the supervised runner's
#: quarantine manifest); v3 adds per-cell execution provenance —
#: ``worker`` (the executing distributed worker, ``null`` locally),
#: ``attempts`` and ``attempt_log`` (retry history) — plus the run's
#: ``backend`` and ``interrupted`` markers.  Older documents are still
#: readable; they simply predate those fields.
SCHEMA_VERSION = "repro-harness/v3"

#: Versions :func:`load_document` accepts.
COMPATIBLE_VERSIONS = ("repro-harness/v1", "repro-harness/v2",
                       "repro-harness/v3")


def build_document(report, mode: str, src_hash: str,
                   telemetry: str = None) -> Dict[str, Any]:
    """Render a :class:`~repro.harness.runner.RunReport` as an artifact.

    ``telemetry`` records the path of the sweep's telemetry JSONL (when
    one was written) in the run metadata, so ``repro report`` and CI
    can pair the two files.  It never enters the cells fingerprint.
    """
    cells: List[Dict[str, Any]] = []
    for result in sorted(report.results, key=lambda r: r.key):
        cells.append({
            "key": result.key,
            "experiment": result.cell.experiment,
            "params": result.cell.as_dict(),
            "metrics": dict(sorted(result.metrics.items())),
            "wall_clock_s": result.wall_clock_s,
            "cached": result.cached,
            "worker": getattr(result, "worker", None),
            "attempts": getattr(result, "attempts", 1),
            "attempt_log": list(getattr(result, "attempt_log", ()) or ()),
        })
    failures = [f.as_dict() for f in
                sorted(getattr(report, "failures", ()) or (),
                       key=lambda f: f.key)]
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "src_hash": src_hash,
        "run": {
            "jobs": report.jobs,
            "backend": getattr(report, "backend", "local"),
            "interrupted": getattr(report, "interrupted", False),
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "cells": len(cells),
            "failed": len(failures),
            "elapsed_s": report.elapsed_s,
            "cell_wall_clock_s": sum(c["wall_clock_s"] for c in cells),
            "telemetry": telemetry,
        },
        "cells": cells,
        "failures": failures,
    }


def cells_fingerprint(doc: Dict[str, Any]) -> str:
    """Hash of the deterministic part of a document's cells.

    Two sweeps of the same code and grid have equal fingerprints no
    matter how many jobs ran them or what was cached.
    """
    stable = [{"key": c["key"], "experiment": c["experiment"],
               "params": c["params"], "metrics": c["metrics"]}
              for c in sorted(doc["cells"], key=lambda c: c["key"])]
    blob = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def write_document(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_document(path: str) -> Dict[str, Any]:
    """Load and validate an artifact written by :func:`write_document`."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read harness artifact {path!r}: {exc}") from exc
    version = doc.get("schema_version") if isinstance(doc, dict) else None
    if version not in COMPATIBLE_VERSIONS:
        raise ReproError(
            f"{path!r}: unsupported schema {version!r} "
            f"(expected one of {', '.join(COMPATIBLE_VERSIONS)})")
    if not isinstance(doc.get("cells"), list):
        raise ReproError(f"{path!r}: artifact has no cells array")
    if not isinstance(doc.get("failures", []), list):
        raise ReproError(f"{path!r}: artifact failures section is not a list")
    return doc
