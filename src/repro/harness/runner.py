"""Parallel cell execution.

Every cell is an independent deterministic simulation — it builds its
own :class:`~repro.sim.engine.Simulator` from its own seed — so the
grid is embarrassingly parallel and the results cannot depend on
worker scheduling.  The runner therefore guarantees: for the same
registry cells, ``--jobs 1`` and ``--jobs N`` produce identical
metrics, and a populated cache short-circuits execution entirely.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness.cache import ResultCache
from repro.harness.registry import Cell, resolve_faults, run_cell
from repro.harness.supervisor import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_RETRIES,
    FailureRecord,
    run_supervised,
)


@dataclass
class CellResult:
    """One executed (or cache-served) cell.

    ``worker`` names the executing worker (distributed backend only),
    ``attempts`` counts executions including the successful one, and
    ``attempt_log`` carries any failed attempts that preceded it —
    together the provenance fields of artifact schema v3.
    """

    cell: Cell
    metrics: Dict[str, float]
    wall_clock_s: float
    cached: bool = False
    worker: Optional[str] = None
    attempts: int = 1
    attempt_log: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.cell.key


@dataclass
class RunReport:
    """Outcome of one sweep: per-cell results plus cache accounting.

    ``failures`` is the failure manifest: cells the supervised runner
    quarantined after exhausting their retries.  Every requested cell
    lands in exactly one of ``results``/``failures`` — unless
    ``interrupted`` is set, in which case cells that never settled
    before the drain appear in neither.
    """

    results: List[CellResult] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    interrupted: bool = False
    backend: str = "local"

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def ok(self) -> bool:
        """True when no cell was quarantined."""
        return not self.failures

    def by_experiment(self) -> Dict[str, List[CellResult]]:
        out: Dict[str, List[CellResult]] = {}
        for result in self.results:
            out.setdefault(result.cell.experiment, []).append(result)
        return out


def execute_cell(cell: Cell, checks: Any = False,
                 faults: Any = None, watchdog: Any = False,
                 telemetry: Optional[str] = None) -> CellResult:
    """Run one cell, timing it.  Top-level so pools can pickle it.

    With ``telemetry`` set, the cell is bracketed by a ``cell`` span
    written from this (worker) process, and the gauge sampler is armed
    for the run (see :func:`~repro.harness.registry.run_cell`).
    """
    start = time.perf_counter()
    if telemetry is None:
        metrics = run_cell(cell, checks=checks, faults=faults,
                           watchdog=watchdog)
    else:
        from repro.obs.events import TelemetrySink

        with TelemetrySink(telemetry) as sink:
            with sink.span("cell", cell=cell.key):
                metrics = run_cell(cell, checks=checks, faults=faults,
                                   watchdog=watchdog, telemetry=telemetry)
    return CellResult(cell=cell, metrics=metrics,
                      wall_clock_s=time.perf_counter() - start)


def storage_key(cell_key: str, checks: Any = False,
                faults: Any = None) -> str:
    """Cache key for one cell under a checks/faults configuration.

    Checked and faulted runs report extra metrics (and faulted runs
    produce entirely different dynamics), so each configuration gets
    its own namespace suffix; plain runs keep the bare cell key for
    compatibility with existing caches and baselines.
    """
    key = cell_key
    if checks:
        key += "#checks=collect" if checks == "collect" else "#checks"
    plan = resolve_faults(faults)
    if plan is not None:
        key += f"#faults={plan.describe()}"
    return key


def _pool_context():
    # fork inherits sys.path and loaded modules, which keeps workers
    # cheap; fall back to the platform default (spawn) elsewhere.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_cells(cells: Sequence[Cell], jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[str], None]] = None,
              checks: Any = False, faults: Any = None,
              timeout_s: Optional[float] = None,
              retries: int = DEFAULT_RETRIES,
              backoff_base: float = DEFAULT_BACKOFF_BASE,
              watchdog: Any = False,
              telemetry: Optional[str] = None,
              backend: str = "local",
              dist_options: Optional[Dict[str, Any]] = None) -> RunReport:
    """Execute *cells*, serving from *cache* where possible.

    ``jobs=None`` uses ``os.cpu_count()``.  Results come back sorted
    by cell key regardless of execution order or cache state.
    ``checks``/``faults``/``watchdog`` are forwarded to every
    :func:`~repro.harness.registry.run_cell`; cached entries are
    looked up under a per-configuration namespace (see
    :func:`storage_key`) so a checked or faulted sweep never serves a
    plain run's results.

    ``telemetry`` (a JSONL path) arms the run-scoped telemetry log:
    this process records the sweep bracket and cache hits, each worker
    appends its cell span and gauge samples, and the supervisor adds
    retry/quarantine events — all interleaved into the one file.
    Telemetry never affects metrics: sampler hooks schedule nothing,
    and the cache key is telemetry-independent.

    A non-``None`` ``timeout_s`` selects **supervised execution** (see
    :mod:`repro.harness.supervisor`): every pending cell runs in its
    own worker under that wall-clock deadline, failed cells are retried
    up to ``retries`` times with deterministic backoff, and cells that
    exhaust their attempts land in :attr:`RunReport.failures` instead
    of aborting the sweep.  Quarantined cells are never written to the
    cache, so partial runs cannot poison later sweeps.

    ``backend="dist"`` hands the pending cells to the fault-tolerant
    distributed master (:mod:`repro.harness.dist`): lease-based
    assignment over worker processes, heartbeats, journal + resume.
    ``dist_options`` (workers/journal/resume/bind/...) are forwarded to
    :func:`repro.harness.dist.master.run_distributed`.  Cache serving,
    cache writing, and result ordering are identical across backends —
    which is what makes local and distributed sweeps of the same cells
    produce the same cells fingerprint.

    A ``KeyboardInterrupt`` during any backend drains instead of
    propagating: already-settled results and failures are returned
    with :attr:`RunReport.interrupted` set, so callers can flush a
    partial artifact.
    """
    if backend not in ("local", "dist"):
        raise ValueError(f"unknown backend {backend!r} "
                         "(expected 'local' or 'dist')")
    if jobs is None:
        jobs = multiprocessing.cpu_count()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    started = time.perf_counter()
    report = RunReport(jobs=jobs, backend=backend)
    faults = resolve_faults(faults)
    execute = functools.partial(execute_cell, checks=checks, faults=faults,
                                watchdog=watchdog, telemetry=telemetry)
    sink = None
    if telemetry is not None:
        from repro.obs.events import TelemetrySink

        sink = TelemetrySink(telemetry, run_id="harness")
        sink.emit("sweep.start", cells=len(cells), jobs=jobs,
                  supervised=timeout_s is not None)

    pending: List[Cell] = []
    for cell in cells:
        cache_key = storage_key(cell.key, checks=checks, faults=faults)
        payload = cache.get(cache_key) if cache is not None else None
        if payload is not None:
            report.cache_hits += 1
            report.results.append(CellResult(
                cell=cell, metrics=payload["metrics"],
                wall_clock_s=payload.get("wall_clock_s", 0.0), cached=True))
            if sink is not None:
                sink.emit("cache.hit", cell=cell.key)
            if progress is not None:
                progress(f"{cell.key}: cached")
        else:
            report.cache_misses += 1
            pending.append(cell)

    if backend == "dist":
        from repro.harness.dist.master import run_distributed

        successes, failures, interrupted = run_distributed(
            pending, timeout_s=timeout_s, retries=retries,
            backoff_base=backoff_base, checks=checks, faults=faults,
            watchdog=watchdog, progress=progress, telemetry=telemetry,
            **(dist_options or {}))
        executed = [CellResult(cell=s.cell, metrics=s.metrics,
                               wall_clock_s=s.wall_clock_s, worker=s.worker,
                               attempts=s.attempts,
                               attempt_log=list(s.attempt_log))
                    for s in successes]
        report.failures = sorted(failures, key=lambda f: f.key)
        report.interrupted = interrupted
    elif timeout_s is not None:
        successes, failures, interrupted = run_supervised(
            pending, jobs=jobs, timeout_s=timeout_s, retries=retries,
            backoff_base=backoff_base, checks=checks, faults=faults,
            watchdog=watchdog, progress=progress, telemetry=telemetry)
        executed = [CellResult(cell=s.cell, metrics=s.metrics,
                               wall_clock_s=s.wall_clock_s,
                               attempts=s.attempts,
                               attempt_log=list(s.attempt_log))
                    for s in successes]
        report.failures = sorted(failures, key=lambda f: f.key)
        report.interrupted = interrupted
    elif len(pending) > 1 and jobs > 1:
        ctx = _pool_context()
        executed = []
        pool = ctx.Pool(processes=min(jobs, len(pending)))
        try:
            for result in pool.imap(execute, pending, chunksize=1):
                executed.append(result)
                if progress is not None:
                    progress(f"{result.key}: {result.wall_clock_s:.2f}s")
            pool.close()
        except KeyboardInterrupt:
            # Same drain contract as the supervised/dist paths: keep
            # what already settled, flush a partial artifact upstream.
            report.interrupted = True
            pool.terminate()
        finally:
            pool.join()
    else:
        executed = []
        try:
            for cell in pending:
                result = execute(cell)
                executed.append(result)
                if progress is not None:
                    progress(f"{result.key}: {result.wall_clock_s:.2f}s")
        except KeyboardInterrupt:
            report.interrupted = True

    for result in executed:
        if cache is not None:
            cache.put(storage_key(result.key, checks=checks, faults=faults),
                      {"metrics": result.metrics,
                       "wall_clock_s": result.wall_clock_s})
        report.results.append(result)

    report.results.sort(key=lambda r: r.key)
    report.elapsed_s = time.perf_counter() - started
    if sink is not None:
        sink.emit("sweep.end", ok=len(report.results),
                  failed=len(report.failures),
                  interrupted=report.interrupted,
                  cache_hits=report.cache_hits,
                  cache_misses=report.cache_misses,
                  elapsed_s=round(report.elapsed_s, 6))
        sink.close()
    return report
