"""Regression gate: compare a sweep artifact against a baseline.

::

    python -m repro.harness.check results.json baselines/expected.json \
        --tolerance 0.15

Every cell in the baseline must be present in the results, and every
baseline metric must match within the relative tolerance.  Cells only
present in the results (new experiments) are reported but do not fail
the check — baselines are ratcheted forward by regenerating them, not
by blocking additions.

Exit codes: 0 = within tolerance, 1 = drift/missing cells,
2 = unreadable or schema-incompatible input, 3 = the results artifact
carries quarantined cells (its ``failures`` manifest names baseline
cells that never produced metrics).  Execution failures are a
different condition from metric drift — the cell did not run to
completion at all — so CI can route them to different owners.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.harness.artifacts import load_document


def _within(actual: float, expected: float, tolerance: float) -> bool:
    # Relative tolerance with an absolute floor of one unit, so
    # near-zero expectations (0 coarse timeouts) do not demand
    # infinite precision but cannot drift far either.
    return abs(actual - expected) <= tolerance * max(1.0, abs(expected))


def compare(results: Dict[str, Any], expected: Dict[str, Any],
            tolerance: float) -> List[str]:
    """All tolerance violations of *results* against *expected*."""
    problems: List[str] = []
    actual_cells = {c["key"]: c for c in results["cells"]}
    expected_cells = {c["key"]: c for c in expected["cells"]}

    missing = sorted(set(expected_cells) - set(actual_cells))
    for key in missing:
        problems.append(f"missing cell: {key}")

    for key in sorted(set(expected_cells) & set(actual_cells)):
        want = expected_cells[key].get("metrics", {})
        got = actual_cells[key].get("metrics", {})
        for metric in sorted(want):
            if metric not in got:
                problems.append(f"{key}: metric {metric} missing")
                continue
            w, g = want[metric], got[metric]
            if not _within(g, w, tolerance):
                problems.append(
                    f"{key}: {metric} = {g:g}, expected {w:g} "
                    f"(tolerance {tolerance:g})")
    return problems


def extra_cells(results: Dict[str, Any], expected: Dict[str, Any]) -> List[str]:
    """Cell keys present in *results* but absent from the baseline."""
    have = {c["key"] for c in expected["cells"]}
    return sorted(c["key"] for c in results["cells"] if c["key"] not in have)


def failed_cells(results: Dict[str, Any],
                 expected: Dict[str, Any]) -> List[str]:
    """Execution failures of *results* that cover baseline cells.

    One line per quarantined baseline cell, naming its failure kind —
    these dominate plain drift (the cell produced no metrics to
    compare) and map to exit code 3.
    """
    baseline_keys = {c["key"] for c in expected["cells"]}
    lines = []
    for failure in results.get("failures", []) or []:
        if failure.get("key") in baseline_keys:
            lines.append(
                f"failed cell: {failure['key']} "
                f"[{failure.get('kind', '?')}] after "
                f"{failure.get('attempts', '?')} attempt(s): "
                f"{failure.get('message', '')}")
    return sorted(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.check",
        description="Check a run-all JSON artifact against a baseline.")
    parser.add_argument("results", help="artifact from run-all --json")
    parser.add_argument("expected", help="committed baseline artifact")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="relative tolerance per metric (default 0.15)")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="append the gate verdict to this telemetry "
                             "JSONL (same file run-all --telemetry wrote)")
    args = parser.parse_args(argv)

    try:
        results = load_document(args.results)
        expected = load_document(args.expected)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = failed_cells(results, expected)
    failed_keys = {f.get("key") for f in results.get("failures", []) or []}
    problems = compare(results, expected, args.tolerance)
    # A quarantined cell is necessarily missing from the results array;
    # report it once, as a failure, not again as drift.
    problems = [p for p in problems
                if not (p.startswith("missing cell: ")
                        and p[len("missing cell: "):] in failed_keys)]
    new = extra_cells(results, expected)
    if new:
        print(f"note: {len(new)} cell(s) not in baseline "
              "(regenerate the baseline to track them):")
        for key in new[:10]:
            print(f"  + {key}")
        if len(new) > 10:
            print(f"  ... and {len(new) - 10} more")

    checked = len(expected["cells"])
    if failures:
        print(f"FAIL: {len(failures)} baseline cell(s) quarantined by the "
              "supervised runner (exit 3; reproduce with "
              "`run-all --only <key> --no-timeout`):")
        for line in failures:
            print(f"  {line}")
    if problems:
        print(f"FAIL: {len(problems)} problem(s) across {checked} "
              "baseline cell(s):")
        for problem in problems:
            print(f"  {problem}")
    code = 3 if failures else (1 if problems else 0)
    if args.telemetry is not None:
        from repro.obs.events import TelemetrySink

        with TelemetrySink(args.telemetry, run_id="gate") as sink:
            sink.emit("gate", exit_code=code, checked=checked,
                      drift=len(problems), quarantined=len(failures),
                      tolerance=args.tolerance)
    if code == 0:
        print(f"OK: {checked} cell(s) within tolerance {args.tolerance:g}")
    return code


if __name__ == "__main__":
    sys.exit(main())
