"""Parallel experiment harness.

The paper's evaluation is a grid: every table and figure is a mean
over independent simulation runs — ``(experiment, protocol, buffers,
delay, seed, ...)`` combinations that share nothing but code.  This
package decomposes each experiment into those **cells** and runs them
through one pipeline:

- :mod:`repro.harness.registry` — the scenario registry: every
  experiment's quick/full grids as :class:`~repro.harness.registry.Cell`
  objects with stable string keys.
- :mod:`repro.harness.runner` — executes cells serially or on a
  ``multiprocessing`` pool; results are bit-identical either way
  because each cell builds its own :class:`~repro.sim.engine.Simulator`
  from its own seed.
- :mod:`repro.harness.supervisor` — supervised execution: per-cell
  wall-clock deadlines, crash quarantine, deterministic retries, and
  the failure manifest that lets a sweep survive pathological cells.
- :mod:`repro.harness.cache` — an on-disk result cache under
  ``.repro-cache/`` keyed by cell key plus a content hash of
  ``src/repro``, so unchanged code never re-simulates.
- :mod:`repro.harness.artifacts` — schema-versioned JSON documents of
  every cell's metrics.
- :mod:`repro.harness.dist` — the fault-tolerant distributed backend:
  lease-based work assignment over worker processes, heartbeats,
  journal + resume, graceful degradation to the local pool.
- :mod:`repro.harness.check` — the regression gate CI runs against
  ``baselines/expected.json``.
- :mod:`repro.harness.aggregate` — re-assembles cells into the
  paper-style tables the individual CLI subcommands print.

The CLI front end is ``python -m repro.cli run-all``.
"""

from repro.harness.artifacts import (
    SCHEMA_VERSION,
    build_document,
    cells_fingerprint,
    load_document,
    write_document,
)
from repro.harness.cache import ResultCache, compute_src_hash
from repro.harness.registry import (
    Cell,
    all_cells,
    cell_budget,
    cells_for,
    register_experiment,
    register_timeout_hint,
    run_cell,
    timeout_hint,
    unregister_experiment,
)
from repro.harness.runner import CellResult, RunReport, run_cells
from repro.harness.supervisor import (
    FAILURE_KINDS,
    FailureRecord,
    SuccessRecord,
    retry_backoff,
    run_supervised,
)

__all__ = [
    "FAILURE_KINDS",
    "SCHEMA_VERSION",
    "Cell",
    "CellResult",
    "FailureRecord",
    "ResultCache",
    "RunReport",
    "SuccessRecord",
    "all_cells",
    "build_document",
    "cell_budget",
    "cells_fingerprint",
    "cells_for",
    "compute_src_hash",
    "load_document",
    "register_experiment",
    "register_timeout_hint",
    "retry_backoff",
    "run_cell",
    "run_cells",
    "run_supervised",
    "timeout_hint",
    "unregister_experiment",
    "write_document",
]
