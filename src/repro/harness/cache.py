"""On-disk result cache for harness cells.

Cells are deterministic functions of (cell key, simulator source), so
their results can be memoised on disk: a cache entry is valid exactly
as long as nothing under ``src/repro`` changed.  The cache directory
is laid out as::

    .repro-cache/<src_hash prefix>/<sha256(cell key) prefix>.json

One subdirectory per source-tree hash means a source edit simply
starts a fresh namespace — stale entries are never consulted and can
be garbage-collected wholesale by deleting old subdirectories.

Entries store the cell key alongside the metrics so a (truncated-)hash
collision is detected rather than silently served.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def compute_src_hash(root: Optional[Union[str, Path]] = None,
                     extra_files: Optional[Iterable[Union[str, Path]]] = None,
                     ) -> str:
    """Content hash of every ``*.py`` file under *root*.

    Defaults to the installed ``repro`` package directory, so any
    source edit — simulator, experiments, harness itself — invalidates
    the cache.  Files are folded in sorted-relative-path order for a
    stable digest.

    *extra_files* are support files folded in after the tree (missing
    ones are skipped).  When *root* defaults, the project's
    ``pyproject.toml`` is folded in automatically: tool configuration
    (pinned options, pytest/ruff settings, dependency pins) can change
    behaviour without touching any ``*.py`` file, and a stale cache
    must not survive that.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
        if extra_files is None:
            # src/repro/__init__.py -> repo root / pyproject.toml
            extra_files = [root.parents[1] / "pyproject.toml"]
    root = Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    for extra in sorted(Path(p) for p in (extra_files or ())):
        if not extra.is_file():
            continue
        digest.update(extra.name.encode())
        digest.update(b"\0")
        digest.update(extra.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Cell-result store keyed by (source hash, cell key)."""

    def __init__(self, root: Union[str, Path], src_hash: str):
        self.root = Path(root)
        self.src_hash = src_hash
        self._dir = self.root / src_hash[:16]

    def _path(self, key: str) -> Path:
        name = hashlib.sha256(key.encode()).hexdigest()[:32]
        return self._dir / f"{name}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload for *key*, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if payload.get("key") != key:  # truncated-hash collision
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store *payload* (must be JSON-serialisable) under *key*.

        Writes via a temporary file + rename so concurrent runs never
        observe a torn entry.
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        record = dict(payload)
        record["key"] = key
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(tmp, path)
