"""Lightweight counters and timers for the event engine.

A :class:`PerfProbe` is attached to simulators through
:mod:`repro.perf.runtime` (activation at construction, one ``is not
None`` test per event when off).  While attached it records:

* ``events`` — events dispatched across all registered simulators;
* ``peak_heap`` — the largest event-heap length observed at dispatch;
* ``component_counts`` — events per callback ``__qualname__``, i.e.
  which component (link transmit, timer tick, TCP delivery, ...) the
  engine spent its dispatches on;
* ``phases`` — named wall-clock spans measured with :meth:`phase`;
* ``cpu_phases`` — the same spans in process CPU seconds, the noise-
  immune basis the bench comparator gates on;
* ``tracer_records`` — record counts of any tracer handed to
  :meth:`note_tracer`.

Everything except the clock phases is a pure function of the
simulation, so probe counters can participate in determinism gates.

``on_event`` sits on the engine's per-event dispatch path, so it keys
the raw histogram by the callback object itself (bound methods hash
and compare by ``(__self__, __func__)`` at C speed, so per-schedule
method objects aggregate correctly) and defers the ``__qualname__``
resolution to :attr:`component_counts`, off the hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List


def _component_key(fn) -> str:
    """The stable reporting key for a callback: qualname or repr."""
    return getattr(fn, "__qualname__", None) or repr(fn)


class PerfProbe:
    """Counters for one profiled run; see the module docstring."""

    __slots__ = ("events", "peak_heap", "_raw_counts", "phases",
                 "cpu_phases", "tracer_records", "_sims")

    def __init__(self) -> None:
        self.events = 0
        self.peak_heap = 0
        # Callback object -> count.  Keys are kept alive until the
        # probe is dropped; resolved to qualnames lazily.
        self._raw_counts: Dict[Any, int] = {}
        self.phases: Dict[str, float] = {}
        self.cpu_phases: Dict[str, float] = {}
        self.tracer_records: Dict[str, int] = {}
        self._sims: List[Any] = []

    # -- engine hooks ---------------------------------------------------
    def register_simulator(self, sim) -> None:
        self._sims.append(sim)

    def on_event(self, fn, heap_len: int) -> None:
        """Called by the engine for every dispatched event."""
        self.events += 1
        if heap_len > self.peak_heap:
            self.peak_heap = heap_len
        counts = self._raw_counts
        try:
            counts[fn] += 1
        except KeyError:
            counts[fn] = 1
        except TypeError:
            # Unhashable callable: fall back to its reporting key.
            key = _component_key(fn)
            counts[key] = counts.get(key, 0) + 1

    @property
    def component_counts(self) -> Dict[str, int]:
        """Events per callback ``__qualname__`` (or ``repr``)."""
        merged: Dict[str, int] = {}
        for fn, n in self._raw_counts.items():
            key = fn if isinstance(fn, str) else _component_key(fn)
            merged[key] = merged.get(key, 0) + n
        return merged

    # -- manual instrumentation ----------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Accumulate the wall-clock and CPU time of a ``with`` block."""
        start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield self
        finally:
            self.phases[name] = (self.phases.get(name, 0.0)
                                 + time.perf_counter() - start)
            self.cpu_phases[name] = (self.cpu_phases.get(name, 0.0)
                                     + time.process_time() - cpu_start)

    def note_tracer(self, tracer) -> None:
        """Record the current size of *tracer* under its name."""
        self.tracer_records[tracer.name] = len(tracer)

    # -- reporting ------------------------------------------------------
    def events_per_sec(self, phase: str = "run") -> float:
        """Events per wall-clock second of the named phase (0 if unknown)."""
        wall = self.phases.get(phase, 0.0)
        return self.events / wall if wall > 0 else 0.0

    def top_components(self, n: int = 10) -> List[tuple]:
        """The *n* busiest callbacks as ``(qualname, count)`` pairs."""
        ranked = sorted(self.component_counts.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable dump of every counter."""
        return {
            "events": self.events,
            "peak_heap": self.peak_heap,
            "component_counts": dict(sorted(self.component_counts.items())),
            "phases": {k: round(v, 6) for k, v in sorted(self.phases.items())},
            "cpu_phases": {k: round(v, 6)
                           for k, v in sorted(self.cpu_phases.items())},
            "tracer_records": dict(sorted(self.tracer_records.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PerfProbe(events={self.events}, "
                f"peak_heap={self.peak_heap}, "
                f"components={len(self._raw_counts)})")
