"""Lightweight counters and timers for the event engine.

A :class:`PerfProbe` is attached to simulators through
:mod:`repro.perf.runtime` (activation at construction, one ``is not
None`` test per event when off).  While attached it records:

* ``events`` — events dispatched across all registered simulators;
* ``peak_heap`` — the largest event-heap length observed at dispatch;
* ``component_counts`` — events per callback ``__qualname__``, i.e.
  which component (link transmit, timer tick, TCP delivery, ...) the
  engine spent its dispatches on;
* ``phases`` — named wall-clock spans measured with :meth:`phase`;
* ``tracer_records`` — record counts of any tracer handed to
  :meth:`note_tracer`.

Everything except the wall-clock phases is a pure function of the
simulation, so probe counters can participate in determinism gates.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List


class PerfProbe:
    """Counters for one profiled run; see the module docstring."""

    __slots__ = ("events", "peak_heap", "component_counts", "phases",
                 "tracer_records", "_sims")

    def __init__(self) -> None:
        self.events = 0
        self.peak_heap = 0
        self.component_counts: Dict[str, int] = {}
        self.phases: Dict[str, float] = {}
        self.tracer_records: Dict[str, int] = {}
        self._sims: List[Any] = []

    # -- engine hooks ---------------------------------------------------
    def register_simulator(self, sim) -> None:
        self._sims.append(sim)

    def on_event(self, fn, heap_len: int) -> None:
        """Called by the engine for every dispatched event."""
        self.events += 1
        if heap_len > self.peak_heap:
            self.peak_heap = heap_len
        key = getattr(fn, "__qualname__", None) or repr(fn)
        counts = self.component_counts
        counts[key] = counts.get(key, 0) + 1

    # -- manual instrumentation ----------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Accumulate the wall-clock time of a ``with`` block."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.phases[name] = (self.phases.get(name, 0.0)
                                 + time.perf_counter() - start)

    def note_tracer(self, tracer) -> None:
        """Record the current size of *tracer* under its name."""
        self.tracer_records[tracer.name] = len(tracer)

    # -- reporting ------------------------------------------------------
    def events_per_sec(self, phase: str = "run") -> float:
        """Events per wall-clock second of the named phase (0 if unknown)."""
        wall = self.phases.get(phase, 0.0)
        return self.events / wall if wall > 0 else 0.0

    def top_components(self, n: int = 10) -> List[tuple]:
        """The *n* busiest callbacks as ``(qualname, count)`` pairs."""
        ranked = sorted(self.component_counts.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable dump of every counter."""
        return {
            "events": self.events,
            "peak_heap": self.peak_heap,
            "component_counts": dict(sorted(self.component_counts.items())),
            "phases": {k: round(v, 6) for k, v in sorted(self.phases.items())},
            "tracer_records": dict(sorted(self.tracer_records.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PerfProbe(events={self.events}, "
                f"peak_heap={self.peak_heap}, "
                f"components={len(self.component_counts)})")
