"""Performance instrumentation for the event engine.

Attach counters to a run with::

    from repro.perf import profiling

    with profiling() as probe:
        run_experiment()          # simulators self-register
    print(probe.events, probe.events_per_sec())

or run the curated benchmark suite from the command line::

    python -m repro bench

which writes ``BENCH_engine.json`` and gates it against
``baselines/bench_baseline.json`` (see :mod:`repro.perf.bench`).
"""

from repro.perf.counters import PerfProbe
from repro.perf.runtime import activate, active, deactivate, profiling

__all__ = [
    "PerfProbe",
    "activate",
    "active",
    "deactivate",
    "profiling",
]
