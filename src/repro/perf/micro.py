"""§3.2 footnote 3 as a machine-readable micro-benchmark.

The paper measured Vegas' CPU bookkeeping penalty "to be less than 5%"
on SparcStations.  The analogous question here is how much more
per-event work :class:`~repro.core.vegas.VegasCC` does than Reno, so
this module runs identical solo transfers under both controllers with
a :class:`~repro.perf.counters.PerfProbe` attached and reports the
comparison as a flat dict — consumed both by ``python -m repro bench``
(the ``micro`` section of ``BENCH_engine.json``) and by the
``bench_overhead_micro`` pytest benchmark.
"""

from __future__ import annotations

from typing import Dict

from repro.perf import runtime as perf_runtime
from repro.perf.counters import PerfProbe


def _probe_solo(cc: str, rounds: int, size_kb: int, buffers: int) -> PerfProbe:
    from repro.experiments.transfers import run_solo_transfer
    from repro.units import kb

    probe = PerfProbe()
    perf_runtime.activate(probe)
    try:
        for _ in range(rounds):
            with probe.phase("run"):
                result = run_solo_transfer(cc, size=kb(size_kb),
                                           buffers=buffers, seed=0)
            if not result.done:
                raise RuntimeError(f"{cc}: solo transfer did not complete")
    finally:
        perf_runtime.deactivate()
    return probe


def vegas_overhead(rounds: int = 3, size_kb: int = 512,
                   buffers: int = 30) -> Dict[str, float]:
    """Compare Reno and Vegas solo-transfer simulation cost.

    Returns per-controller wall time (mean of *rounds*), deterministic
    event counts, events/sec, and the relative Vegas overhead in
    percent.  The Vegas run also *transfers faster* (fewer simulated
    events), so the overhead can legitimately be negative.
    """
    reno = _probe_solo("reno", rounds, size_kb, buffers)
    vegas = _probe_solo("vegas", rounds, size_kb, buffers)
    reno_wall = reno.phases["run"] / rounds
    vegas_wall = vegas.phases["run"] / rounds
    return {
        "rounds": rounds,
        "reno_wall_s": reno_wall,
        "vegas_wall_s": vegas_wall,
        "overhead_pct": ((vegas_wall - reno_wall) / reno_wall * 100.0
                         if reno_wall > 0 else 0.0),
        "reno_events": reno.events // rounds,
        "vegas_events": vegas.events // rounds,
        "reno_events_per_sec": reno.events_per_sec(),
        "vegas_events_per_sec": vegas.events_per_sec(),
        "reno_peak_heap": reno.peak_heap,
        "vegas_peak_heap": vegas.peak_heap,
    }
