"""Process-wide activation of the performance probe.

Mirrors :mod:`repro.checks.runtime`: the probe is wired into the
engine at *construction* time — while a probe is active, every newly
built :class:`~repro.sim.engine.Simulator` registers itself and keeps
a direct reference, so the dispatch loop pays a single ``is not
None`` test when profiling is off.

This module deliberately imports nothing from the rest of the package
(beyond the standard library) so that ``sim.engine`` can consult it
without creating import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

_active = None


def active():
    """The currently active probe, or ``None``."""
    return _active


def activate(probe) -> None:
    """Install *probe* as the process-wide active probe."""
    global _active
    if _active is not None:
        raise RuntimeError("a perf probe is already active")
    _active = probe


def deactivate() -> None:
    """Remove the active probe (idempotent)."""
    global _active
    _active = None


@contextmanager
def profiling(probe: Optional[object] = None):
    """Context manager: run a block with an active probe.

    ::

        with profiling() as probe:
            run_experiment()      # simulators self-register
        print(probe.snapshot())

    A fresh :class:`~repro.perf.counters.PerfProbe` is built unless
    one is passed in.
    """
    if probe is None:
        from repro.perf.counters import PerfProbe

        probe = PerfProbe()
    activate(probe)
    try:
        yield probe
    finally:
        deactivate()
