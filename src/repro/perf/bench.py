"""The ``python -m repro bench`` suite and its regression comparator.

Runs a curated set of representative harness cells — solo traced runs
(figure6/figure7), a tcplib-background cell (the table2 workload that
dominates sweep time), a faulted cell, and a checks-on cell — each
*rounds* times with a :class:`~repro.perf.counters.PerfProbe`
attached, and writes ``BENCH_engine.json`` at the repo root::

    {
      "schema_version": "repro-bench/v1",
      "rounds": 3,
      "cells": {
        "figure6": {"events_per_sec": ..., "wall_s": ..., "events": ...,
                    "peak_heap": ...},
        ...
      },
      "micro": { ...Vegas-vs-Reno overhead (see repro.perf.micro)... }
    }

``events`` and ``peak_heap`` are pure functions of the simulation, so
the comparator gates them **exactly** against
``baselines/bench_baseline.json`` (the bit-identical determinism
check, suitable for noisy CI runners); ``events_per_sec`` is gated
with a relative tolerance (default: fail on >25% regression) and can
be disabled with ``--no-timing-gate`` where runners are too noisy.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError

#: Bump on any change to the BENCH document layout.
SCHEMA_VERSION = "repro-bench/v1"

#: Default artifact and baseline locations (repo-root relative).
DEFAULT_ARTIFACT = "BENCH_engine.json"
DEFAULT_BASELINE = "baselines/bench_baseline.json"

#: Fail the timing gate when events/sec drops by more than this.
DEFAULT_MAX_REGRESSION = 0.25


def bench_suite() -> List[Dict[str, Any]]:
    """The curated cells: (name, cell, checks, faults) descriptors."""
    from repro.harness.registry import Cell

    return [
        {"name": "figure6",
         "cell": Cell.make("figure6", seed=0)},
        {"name": "figure7",
         "cell": Cell.make("figure7", seed=0)},
        {"name": "table2_background",
         "cell": Cell.make("table2", proto="vegas-1,3", buffers=10, seed=0)},
        {"name": "table2_faulted",
         "cell": Cell.make("table2", proto="reno", buffers=10, seed=0),
         "faults": "light"},
        {"name": "figure6_checked",
         "cell": Cell.make("figure6", seed=0),
         "checks": "raise"},
        # Engine-scaling family: hundreds of concurrent tcplib
        # conversations (see repro.experiments.many_flows).  The 500
        # and 1000-flow points exercise the far-horizon calendar
        # scheduler; 100 stays below its threshold and covers the
        # plain-heap fallback.
        {"name": "many_flows_100",
         "cell": Cell.make("many_flows", flows=100, seed=0)},
        {"name": "many_flows_500",
         "cell": Cell.make("many_flows", flows=500, seed=0)},
        {"name": "many_flows_1000",
         "cell": Cell.make("many_flows", flows=1000, seed=0)},
    ]


def run_bench_cell(descriptor: Dict[str, Any],
                   rounds: int = 3) -> Dict[str, Any]:
    """Run one suite cell *rounds* times and aggregate its counters.

    One probed warmup round records the deterministic counters
    (events, peak heap) and primes caches; the timed rounds then run
    the *production* dispatch loop — no probe attached, so the numbers
    measure the engine users get, not the instrumented one.  Raises
    :class:`ReproError` if any timed round's event count disagrees
    with the warmup — a bug in the engine's optimizations would
    surface here first.
    """
    from repro.harness.registry import run_cell
    from repro.perf import runtime as perf_runtime
    from repro.perf.counters import PerfProbe
    from repro.sim.engine import last_simulator

    kwargs = dict(checks=descriptor.get("checks", False),
                  faults=descriptor.get("faults"))
    probe = PerfProbe()
    perf_runtime.activate(probe)
    try:
        run_cell(descriptor["cell"], **kwargs)
    finally:
        perf_runtime.deactivate()
    ref_events = last_simulator().events_processed

    walls: List[float] = []
    cpus: List[float] = []
    for _ in range(rounds):
        cpu0 = time.process_time()
        t0 = time.perf_counter()
        run_cell(descriptor["cell"], **kwargs)
        cpus.append(time.process_time() - cpu0)
        walls.append(time.perf_counter() - t0)
        got = last_simulator().events_processed
        if got != ref_events:
            raise ReproError(
                f"{descriptor['name']}: nondeterministic event count "
                f"across rounds ({got} != {ref_events})")
    wall = statistics.median(walls)
    cpu = statistics.median(cpus)
    return {
        "events_per_sec": round(ref_events / wall, 1) if wall > 0 else 0.0,
        # CPU-time twin of the wall gate: process_time is immune to
        # scheduler noise on shared runners, so A/B comparisons should
        # prefer it (the comparator does when both sides carry it).
        "events_per_sec_cpu": round(ref_events / cpu, 1) if cpu > 0 else 0.0,
        "wall_s": round(wall, 6),
        "wall_s_min": round(min(walls), 6),
        "cpu_s": round(cpu, 6),
        "cpu_s_min": round(min(cpus), 6),
        "events": ref_events,
        "peak_heap": probe.peak_heap,
    }


def select_cells(names: Optional[Sequence[str]]) -> List[Dict[str, Any]]:
    """Suite descriptors restricted to *names* (``None`` = all).

    Order follows the suite, not the selection, so artifacts stay
    stable however the CLI spells the subset.  Unknown names raise —
    a typo in a CI slice must fail loudly, not silently shrink the
    gate.
    """
    suite = bench_suite()
    if names is None:
        return suite
    known = {descriptor["name"] for descriptor in suite}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ReproError(
            f"unknown bench cell(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}")
    wanted = set(names)
    return [d for d in suite if d["name"] in wanted]


def run_suite(rounds: int = 3,
              progress=None,
              cells_filter: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """Run every suite cell plus the micro section; build the document."""
    from repro.perf.micro import vegas_overhead
    from repro.sim.engine import slow_path_requested

    cells: Dict[str, Any] = {}
    for descriptor in select_cells(cells_filter):
        cells[descriptor["name"]] = run_bench_cell(descriptor, rounds=rounds)
        if progress is not None:
            result = cells[descriptor["name"]]
            progress(f"{descriptor['name']}: "
                     f"{result['events_per_sec']:,.0f} events/s "
                     f"({result['events']} events, "
                     f"{result['wall_s'] * 1000:.0f} ms)")
    micro = vegas_overhead(rounds=rounds)
    if progress is not None:
        progress(f"micro: vegas overhead {micro['overhead_pct']:+.1f}% "
                 f"vs reno")
    return {
        "schema_version": SCHEMA_VERSION,
        "rounds": rounds,
        "slow_path": slow_path_requested(),
        "cells": cells,
        "micro": micro,
    }


def write_document(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_document(path: str) -> Dict[str, Any]:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read bench artifact {path!r}: {exc}") from exc
    version = doc.get("schema_version") if isinstance(doc, dict) else None
    if version != SCHEMA_VERSION:
        raise ReproError(f"{path!r}: unsupported schema {version!r} "
                         f"(expected {SCHEMA_VERSION!r})")
    if not isinstance(doc.get("cells"), dict):
        raise ReproError(f"{path!r}: artifact has no cells mapping")
    return doc


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            max_regression: float = DEFAULT_MAX_REGRESSION,
            timing: bool = True) -> List[str]:
    """All gate violations of *current* against *baseline*.

    Determinism (``events``, ``peak_heap``) is compared exactly for
    every baseline cell; ``events_per_sec`` only when *timing* is true,
    failing on a drop of more than *max_regression*.  Cells only in
    *current* are new and never fail the gate.
    """
    problems: List[str] = []
    for name in sorted(baseline["cells"]):
        want = baseline["cells"][name]
        got = current["cells"].get(name)
        if got is None:
            problems.append(f"missing bench cell: {name}")
            continue
        for metric in ("events", "peak_heap"):
            if got.get(metric) != want.get(metric):
                problems.append(
                    f"{name}: {metric} = {got.get(metric)}, baseline "
                    f"{want.get(metric)} (must match exactly)")
        if timing:
            # Prefer the CPU-time A/B when both documents carry it:
            # process_time ignores co-tenant noise, so the gate
            # measures the engine, not the runner.  Wall-clock is the
            # fallback for baselines predating the cpu fields.
            metric = "events_per_sec_cpu"
            want_rate = want.get(metric, 0.0)
            got_rate = got.get(metric, 0.0)
            if not (want_rate > 0 and got_rate > 0):
                metric = "events_per_sec"
                want_rate = want.get(metric, 0.0)
                got_rate = got.get(metric, 0.0)
            if want_rate > 0 and got_rate < want_rate * (1.0 - max_regression):
                problems.append(
                    f"{name}: {metric} {got_rate:,.0f} is "
                    f"{(1 - got_rate / want_rate) * 100:.0f}% below "
                    f"baseline {want_rate:,.0f} "
                    f"(gate: {max_regression * 100:.0f}%)")
    return problems


def dirty_tracked_files() -> Optional[List[str]]:
    """Tracked files with uncommitted changes, or ``None`` outside git.

    The baseline must describe *committed* engine code — a baseline
    captured from a dirty tree pins numbers nobody can reproduce from
    the repository.  Untracked files are ignored: scratch artifacts
    (including a fresh ``BENCH_engine.json``) don't change what the
    suite measured.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            capture_output=True, text=True, timeout=30, check=True)
    except (OSError, subprocess.SubprocessError):
        return None
    return [line[3:] for line in out.stdout.splitlines() if line.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the engine benchmark suite and write "
                    "BENCH_engine.json.")
    parser.add_argument("--rounds", type=int, default=3,
                        help="runs per cell; median wall time is reported "
                             "(default 3)")
    parser.add_argument("--json", metavar="PATH", default=DEFAULT_ARTIFACT,
                        help=f"artifact path (default {DEFAULT_ARTIFACT})")
    parser.add_argument("--baseline", metavar="PATH", default=DEFAULT_BASELINE,
                        help=f"committed baseline (default {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the baseline comparison entirely")
    parser.add_argument("--no-timing-gate", action="store_true",
                        help="gate only on the bit-identical determinism "
                             "check (events, peak_heap), not events/sec — "
                             "for noisy CI runners")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="events/sec drop that fails the timing gate "
                             "(default 0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the run to the baseline path instead of "
                             "comparing against it (refused from a dirty "
                             "working tree unless --force is given)")
    parser.add_argument("--force", action="store_true",
                        help="allow --update-baseline despite uncommitted "
                             "changes to tracked files")
    parser.add_argument("--cells", metavar="A,B,...", default=None,
                        help="run only these suite cells (comma-separated); "
                             "the baseline gate then covers just the "
                             "selection — used by CI to keep the heavy "
                             "many-flows points out of the PR loop")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        print(f"error: --rounds must be >= 1, got {args.rounds}",
              file=sys.stderr)
        return 2
    cells_filter = None
    if args.cells:
        cells_filter = [name.strip() for name in args.cells.split(",")
                        if name.strip()]
    if args.update_baseline and cells_filter is not None:
        print("error: --update-baseline needs the full suite; drop --cells",
              file=sys.stderr)
        return 2
    if args.update_baseline and not args.force:
        dirty = dirty_tracked_files()
        if dirty:
            print("error: refusing --update-baseline: working tree has "
                  "uncommitted changes to tracked files:", file=sys.stderr)
            for path in dirty[:10]:
                print(f"  {path}", file=sys.stderr)
            if len(dirty) > 10:
                print(f"  ... and {len(dirty) - 10} more", file=sys.stderr)
            print("hint: commit first, or pass --force to pin a baseline "
                  "from uncommitted code", file=sys.stderr)
            return 2

    try:
        doc = run_suite(rounds=args.rounds,
                        progress=lambda line: print(line, file=sys.stderr),
                        cells_filter=cells_filter)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    write_document(args.json, doc)
    print(f"BENCH artifact: {args.json}")
    if args.update_baseline:
        write_document(args.baseline, doc)
        print(f"baseline updated: {args.baseline}")
        return 0
    if args.no_baseline:
        return 0

    try:
        baseline = load_document(args.baseline)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: create one with `python -m repro bench "
              "--update-baseline`", file=sys.stderr)
        return 2
    if cells_filter is not None:
        # A sliced run gates only the cells it measured; the cells it
        # skipped would otherwise all fail as "missing".
        baseline = dict(baseline)
        baseline["cells"] = {name: value
                             for name, value in baseline["cells"].items()
                             if name in set(cells_filter)}
    problems = compare(doc, baseline,
                       max_regression=args.max_regression,
                       timing=not args.no_timing_gate)
    if problems:
        print(f"FAIL: {len(problems)} problem(s) vs {args.baseline}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    gate = ("determinism only" if args.no_timing_gate
            else f"determinism + timing ({args.max_regression * 100:.0f}%)")
    print(f"OK: {len(baseline['cells'])} bench cell(s) within gate ({gate})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
