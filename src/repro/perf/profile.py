"""``python -m repro profile``: cProfile one harness cell.

The bench suite answers *whether* the engine got slower; this command
answers *where the time goes*.  It runs a single cell under
:mod:`cProfile` with a :class:`~repro.perf.counters.PerfProbe`
attached and prints the hottest functions alongside the probe's
per-component event counts, so a scheduler hotspot can be told apart
from a protocol one at a glance::

    python -m repro profile table2_background
    python -m repro profile many_flows_1000 --sort cumulative --limit 40
    python -m repro profile "table2/proto=reno/buffers=20/seed=3"
    python -m repro profile figure6 --out /tmp/fig6.pstats

Cells are named either by their bench-suite alias (``figure6``,
``table2_background``, ``many_flows_500``, ...) or by a full harness
cell key (``experiment/k=v/...`` as printed by ``run-all``).  Profiled
numbers are for *relative* attribution only — the tracer overhead of
cProfile itself easily halves events/sec, so never compare them
against bench gates.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from typing import Any, Dict, Optional, Sequence

from repro.errors import ReproError

#: Sort keys accepted by ``--sort`` (pstats spellings).
SORT_KEYS = ("tottime", "cumulative", "ncalls")


def _coerce(raw: str) -> Any:
    """Cell-key value coercion: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    if raw in ("True", "False"):
        return raw == "True"
    return raw


def resolve_cell(spec: str):
    """A bench-suite alias or ``experiment/k=v/...`` key -> Cell."""
    from repro.perf.bench import bench_suite

    for descriptor in bench_suite():
        if descriptor["name"] == spec:
            return descriptor["cell"]
    from repro.harness.registry import Cell

    parts = spec.split("/")
    experiment = parts[0]
    params: Dict[str, Any] = {}
    for part in parts[1:]:
        if "=" not in part:
            raise ReproError(
                f"bad cell key segment {part!r} in {spec!r} "
                "(want experiment/k=v/... or a bench cell name)")
        key, _, raw = part.partition("=")
        params[key] = _coerce(raw)
    if not params:
        raise ReproError(
            f"unknown bench cell {spec!r} and no k=v params given; "
            "known bench cells: "
            + ", ".join(d["name"] for d in bench_suite()))
    return Cell.make(experiment, **params)


def profile_cell(cell, sort: str = "tottime", limit: int = 25,
                 out: Optional[str] = None, stream=sys.stdout) -> None:
    """Run *cell* under cProfile; print stats and probe counters."""
    from repro.harness.registry import run_cell
    from repro.perf import runtime as perf_runtime
    from repro.perf.counters import PerfProbe

    probe = PerfProbe()
    profiler = cProfile.Profile()
    perf_runtime.activate(probe)
    try:
        with probe.phase("run"):
            profiler.enable()
            run_cell(cell)
            profiler.disable()
    finally:
        perf_runtime.deactivate()

    stats = pstats.Stats(profiler, stream=stream)
    if out:
        stats.dump_stats(out)
        print(f"pstats dump: {out}", file=stream)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)

    cpu = probe.cpu_phases.get("run", 0.0)
    print(f"probe: {probe.events} events, peak_heap {probe.peak_heap}, "
          f"cpu {cpu:.3f}s"
          + (f" ({probe.events / cpu:,.0f} events/s under the profiler"
             " — attribution only, not comparable to bench)" if cpu > 0
             else ""),
          file=stream)
    print("top components:", file=stream)
    for qualname, count in probe.top_components(10):
        print(f"  {count:>10}  {qualname}", file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="cProfile one harness cell and print the hottest "
                    "functions plus per-component event counts.")
    parser.add_argument("cell",
                        help="bench cell name (e.g. table2_background) or "
                             "full cell key (experiment/k=v/...)")
    parser.add_argument("--sort", choices=SORT_KEYS, default="tottime",
                        help="pstats sort key (default tottime)")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows of profile output (default 25)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="also dump raw pstats data for snakeviz/pstats")
    args = parser.parse_args(argv)
    try:
        cell = resolve_cell(args.cell)
        profile_cell(cell, sort=args.sort, limit=args.limit, out=args.out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
